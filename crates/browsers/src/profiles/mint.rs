//! Mint 3.9.3 (Xiaomi) — WebView-based; 8% of its idle natives go to
//! Facebook's Graph API (§3.5); Table 2: timezone, resolution, locale,
//! country.

use panoptes_instrument::tap::Instrumentation;

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};

/// The Mint pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("Mint", "3.9.3", "com.mi.globalbrowser.mini")
        .instrument(Instrumentation::FridaWebView)
        .leaks(&[PiiField::Timezone, PiiField::Resolution, PiiField::Locale, PiiField::Country])
        .startup(vec![
            NativeCall::ping("update.mintbrowser.mi.com", "/check"),
            NativeCall::ping("news.mintbrowser.mi.com", "/v1/feed"),
            NativeCall::ping("cdn.mintbrowser.mi.com", "/assets"),
            NativeCall::ping("suggest.mintbrowser.mi.com", "/v1/suggest"),
            NativeCall::ping("data.mistat.mi.com", "/v2/launch"),
            NativeCall::ping("static.mintbrowser.mi.com", "/speeddial"),
            NativeCall::ping("graph.facebook.com", "/v12.0/app_events"),
        ])
        .per_visit(vec![
            NativeCall::ping("api.mintbrowser.mi.com", "/v1/track")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(80)
                .times(2),
            NativeCall::ping("news.mintbrowser.mi.com", "/v1/feed"),
        ])
        .idle_burst(vec![
            NativeCall::ping("news.mintbrowser.mi.com", "/v1/feed"),
            NativeCall::ping("cdn.mintbrowser.mi.com", "/assets"),
            NativeCall::ping("static.mintbrowser.mi.com", "/speeddial"),
            NativeCall::ping("suggest.mintbrowser.mi.com", "/v1/suggest"),
            NativeCall::ping("update.mintbrowser.mi.com", "/check"),
        ])
        .idle_periodic(vec![
            (60, NativeCall::ping("api.mintbrowser.mi.com", "/v1/heartbeat")),
            (120, NativeCall::ping("news.mintbrowser.mi.com", "/v1/feed")),
            // 8% of Mint's idle natives (§3.5).
            (300, NativeCall::ping("graph.facebook.com", "/v12.0/app_events")),
            (290, NativeCall::ping("update.mintbrowser.mi.com", "/check")),
        ])
}
