//! A Frida-like dynamic instrumentation engine.
//!
//! For browsers without CDP support, Panoptes "hooks into the WebView's
//! functions using a custom Frida script and instruments them
//! accordingly" (§2.1); for UC International it "uses Frida to hook into
//! an internal API" (§2.3). The session records which functions are
//! hooked and exposes the same [`RequestTap`] contract CDP does, so the
//! engine code upstream is mechanism-agnostic.

use std::sync::Arc;

use crate::tap::RequestTap;

/// A function hook installed by a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FridaHook {
    /// Class or module the hooked symbol lives in.
    pub target: String,
    /// Hooked function name.
    pub function: String,
}

/// A Frida session attached to one app process.
pub struct FridaSession {
    package: String,
    hooks: Vec<FridaHook>,
    tap: Arc<dyn RequestTap>,
}

impl FridaSession {
    /// Attaches to `package` (spawn-gated, as the harness launches every
    /// browser under Frida, §2.1).
    pub fn attach(package: &str, tap: Arc<dyn RequestTap>) -> FridaSession {
        FridaSession { package: package.to_string(), hooks: Vec::new(), tap }
    }

    /// Installs the standard WebView request hooks (the non-CDP path).
    pub fn hook_webview(&mut self) {
        self.hook("android.webkit.WebView", "loadUrl");
        self.hook("android.webkit.WebViewClient", "shouldInterceptRequest");
    }

    /// Installs the UC International internal-API hook (§2.3).
    pub fn hook_internal_api(&mut self) {
        self.hook("com.uc.browser.core.loader", "sendRequest");
    }

    /// Installs an arbitrary hook.
    pub fn hook(&mut self, target: &str, function: &str) {
        let hook = FridaHook { target: target.to_string(), function: function.to_string() };
        if !self.hooks.contains(&hook) {
            self.hooks.push(hook);
        }
    }

    /// The attached package.
    pub fn package(&self) -> &str {
        &self.package
    }

    /// Installed hooks.
    pub fn hooks(&self) -> &[FridaHook] {
        &self.hooks
    }

    /// True when a hook on `function` exists.
    pub fn is_hooked(&self, function: &str) -> bool {
        self.hooks.iter().any(|h| h.function == function)
    }

    /// The tap the hooked functions run engine requests through.
    pub fn tap(&self) -> Arc<dyn RequestTap> {
        self.tap.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::TaintInjector;
    use panoptes_http::url::Url;

    fn session(package: &str) -> FridaSession {
        FridaSession::attach(package, Arc::new(TaintInjector::new("x-panoptes-taint", "t")))
    }

    #[test]
    fn webview_hooks() {
        let mut s = session("com.dolphin.browser");
        s.hook_webview();
        assert!(s.is_hooked("loadUrl"));
        assert!(s.is_hooked("shouldInterceptRequest"));
        assert_eq!(s.hooks().len(), 2);
        assert_eq!(s.package(), "com.dolphin.browser");
    }

    #[test]
    fn internal_api_hook_for_uc() {
        let mut s = session("com.UCMobile.intl");
        s.hook_internal_api();
        assert!(s.is_hooked("sendRequest"));
    }

    #[test]
    fn hooks_are_deduplicated() {
        let mut s = session("p");
        s.hook_webview();
        s.hook_webview();
        assert_eq!(s.hooks().len(), 2);
    }

    #[test]
    fn tap_taints_requests() {
        let s = session("p");
        let mut req = panoptes_http::Request::get(Url::parse("https://e.com/").unwrap());
        s.tap().on_engine_request(&mut req);
        assert!(req.headers.contains("x-panoptes-taint"));
    }
}
