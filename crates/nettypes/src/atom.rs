//! Interned strings for the capture hot path.
//!
//! The capture pipeline repeats the same few hundred strings millions of
//! times: hostnames, registrable domains, package names, header names.
//! An [`Atom`] is a reference-counted interned string — `Arc<str>` backed
//! by a sharded global intern table — so every occurrence of
//! `"sba.yandex.net"` in a study shares one allocation, cloning a flow
//! context is a reference-count bump, and equality between interned
//! copies is a pointer comparison.
//!
//! Interning is keyed on content: two [`Atom::from`] calls with equal
//! strings return pointer-identical atoms regardless of which thread or
//! shard performed the intern (the shard is chosen by a content hash, so
//! equal strings always meet in the same shard). The table only ever
//! grows; the string population of a study (hosts, packages, header
//! names) is bounded, so this is a cache, not a leak.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of intern-table shards (power of two; the shard index is the
/// low bits of the content hash).
const SHARDS: usize = 16;

fn table() -> &'static [Mutex<HashSet<Arc<str>>>; SHARDS] {
    static TABLE: OnceLock<[Mutex<HashSet<Arc<str>>>; SHARDS]> = OnceLock::new();
    TABLE.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashSet::new())))
}

/// Per-shard hit/miss counters, resolved once. Runtime-class: the
/// intern table lives for the whole process, so a shard's hit/miss
/// balance depends on everything that ran before this snapshot, not on
/// the workload alone.
fn shard_stats() -> &'static [(
    &'static panoptes_obs::metrics::Counter,
    &'static panoptes_obs::metrics::Counter,
); SHARDS] {
    use panoptes_obs::metrics::{counter, MetricClass};
    static STATS: OnceLock<
        [(&'static panoptes_obs::metrics::Counter, &'static panoptes_obs::metrics::Counter); SHARDS],
    > = OnceLock::new();
    STATS.get_or_init(|| {
        std::array::from_fn(|i| {
            (
                counter(&format!("atom.intern.shard{i:02}.hits"), MetricClass::Runtime),
                counter(&format!("atom.intern.shard{i:02}.misses"), MetricClass::Runtime),
            )
        })
    })
}

/// FNV-1a — the deterministic hash the workspace standardises on.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// An interned, immutable, cheaply clonable string.
#[derive(Clone)]
pub struct Atom(Arc<str>);

impl Atom {
    /// Interns `s`, returning the canonical atom for its content. Equal
    /// inputs yield pointer-identical atoms.
    pub fn intern(s: &str) -> Atom {
        let shard_index = (fnv1a(s) as usize) & (SHARDS - 1);
        let shard = &table()[shard_index];
        let mut set = shard.lock().expect("intern shard poisoned");
        if let Some(existing) = set.get(s) {
            if panoptes_obs::metrics_enabled() {
                shard_stats()[shard_index].0.incr();
            }
            return Atom(existing.clone());
        }
        if panoptes_obs::metrics_enabled() {
            shard_stats()[shard_index].1.incr();
        }
        let arc: Arc<str> = Arc::from(s);
        set.insert(arc.clone());
        Atom(arc)
    }

    /// The string content.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True when both atoms share the same allocation. Interned atoms
    /// with equal content always do; this is the O(1) fast path behind
    /// [`PartialEq`].
    pub fn ptr_eq(a: &Atom, b: &Atom) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Default for Atom {
    fn default() -> Atom {
        Atom::intern("")
    }
}

impl Deref for Atom {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Atom {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Atom {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Atom {
        Atom::intern(s)
    }
}

impl From<&String> for Atom {
    fn from(s: &String) -> Atom {
        Atom::intern(s)
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Atom {
        Atom::intern(&s)
    }
}

impl From<&Atom> for String {
    fn from(a: &Atom) -> String {
        a.as_str().to_string()
    }
}

impl From<Atom> for String {
    fn from(a: Atom) -> String {
        a.as_str().to_string()
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Atom) -> bool {
        // Interned equal content shares a pointer; the content fallback
        // keeps equality correct for atoms from different processes of
        // interning history (e.g. after deserialisation).
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Atom {}

impl PartialEq<str> for Atom {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Atom {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Atom {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<Atom> for str {
    fn eq(&self, other: &Atom) -> bool {
        self == &*other.0
    }
}

impl PartialEq<Atom> for &str {
    fn eq(&self, other: &Atom) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<Atom> for String {
    fn eq(&self, other: &Atom) -> bool {
        self.as_str() == &*other.0
    }
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Atom) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Atom) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(&other.0)
        }
    }
}

// Content hash, matching `Borrow<str>`: a `HashMap<Atom, _>` can be
// probed with a plain `&str` key without interning or allocating.
impl Hash for Atom {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (*self.0).hash(state)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equal_content_is_pointer_equal() {
        let a = Atom::intern("www.example.com");
        let b = Atom::intern("www.example.com");
        assert!(Atom::ptr_eq(&a, &b));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_content_differs() {
        let a = Atom::intern("a.example");
        let b = Atom::intern("b.example");
        assert!(!Atom::ptr_eq(&a, &b));
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn str_interop() {
        let a = Atom::from("host.example");
        assert_eq!(a, "host.example");
        assert_eq!("host.example", a);
        assert_eq!(a.as_str(), "host.example");
        assert_eq!(a.len(), 12);
        assert!(a.ends_with(".example"));
        assert_eq!(a.to_string(), "host.example");
        assert_eq!(format!("{a:?}"), "\"host.example\"");
    }

    #[test]
    fn map_lookup_by_str_key() {
        let mut map: HashMap<Atom, u32> = HashMap::new();
        map.insert(Atom::intern("pkg.one"), 1);
        assert_eq!(map.get("pkg.one"), Some(&1));
        assert_eq!(map.get("pkg.two"), None);
    }

    #[test]
    fn clones_share_the_allocation() {
        let a = Atom::intern("clone.me");
        let b = a.clone();
        assert!(Atom::ptr_eq(&a, &b));
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(Atom::default(), "");
        assert!(Atom::default().is_empty());
    }

    #[test]
    fn cross_thread_interning_converges() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Atom::intern("converge.example")))
            .collect();
        let atoms: Vec<Atom> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for pair in atoms.windows(2) {
            assert!(Atom::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
