//! Property tests for the trace JSONL codec: any well-formed event
//! sequence must survive emit → parse → re-emit **byte-identically**,
//! including names and details containing quotes, backslashes, control
//! characters, and non-ASCII text.

use proptest::prelude::*;

use panoptes_obs::trace::{parse_jsonl, to_jsonl, EventKind, TraceEvent};

/// Strings that stress the escaper: JSON metacharacters, control
/// characters (escaped as `\u00xx`), and multi-byte code points.
fn tricky_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop::sample::select(vec![
            'a', 'Z', '0', '.', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}',
            'é', '→', '眼',
        ]),
        0..16,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn event() -> impl Strategy<Value = TraceEvent> {
    (
        prop::sample::select(vec![EventKind::Start, EventKind::End, EventKind::Point]),
        tricky_string(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::option::of(tricky_string()),
    )
        .prop_map(|(kind, name, span, thread, seq, wall_ns, sim_us, req, parent, detail)| {
            TraceEvent {
                kind,
                name,
                span: span as u64,
                thread: thread as u64,
                seq: seq as u64,
                wall_ns: wall_ns as u64,
                sim_us: sim_us.map(u64::from),
                req: req.map(u64::from),
                parent: parent.map(u64::from),
                detail,
            }
        })
}

proptest! {
    #[test]
    fn jsonl_roundtrip_is_byte_identical(events in proptest::collection::vec(event(), 0..24)) {
        let jsonl = to_jsonl(&events);
        let parsed = parse_jsonl(&jsonl)
            .unwrap_or_else(|e| panic!("emitted JSONL failed to parse: {e}\n{jsonl}"));
        prop_assert_eq!(&parsed, &events, "parse must invert emit");
        prop_assert_eq!(to_jsonl(&parsed), jsonl, "re-emit must be byte-identical");
    }

    #[test]
    fn parse_rejects_truncated_lines(events in proptest::collection::vec(event(), 1..8)) {
        let jsonl = to_jsonl(&events);
        // Chop the closing brace (and newline) off the last line: the
        // parser must reject rather than silently accept.
        let truncated = &jsonl[..jsonl.len().saturating_sub(2)];
        prop_assert!(parse_jsonl(truncated).is_err());
    }
}
