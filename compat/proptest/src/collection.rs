//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(0u32..5, 2..6);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.iter().all(|&x| x < 5));
            lens.insert(v.len());
        }
        assert!(lens.iter().all(|&l| (2..6).contains(&l)));
        assert!(lens.len() >= 3, "{lens:?}");
    }
}
