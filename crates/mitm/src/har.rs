//! HAR (HTTP Archive 1.2) export of captured flows.
//!
//! Analysts live in HAR-aware tooling (browser devtools, mitmproxy's
//! exporters, HAR viewers); this module renders a capture as a standard
//! HAR log so the reproduction's flow databases can be inspected with
//! off-the-shelf tools. Panoptes-specific metadata (classification, UID,
//! package) rides in `_`-prefixed custom fields, as the HAR spec allows.

use panoptes_http::json::{self, Value};
use panoptes_http::url::Url;

use crate::flow::Flow;
use crate::store::FlowStore;

/// Virtual-epoch anchor: the paper's crawls ran in May 2023; virtual
/// microsecond 0 maps to this wall-clock instant in the export.
const EPOCH_ISO_DATE: (u64, u64, u64) = (2023, 5, 12);

/// Renders `flows` as a HAR `log` document.
pub fn to_har(flows: &[Flow]) -> Value {
    har_log(flows.iter().map(entry).collect())
}

fn har_log(entries: Vec<Value>) -> Value {
    Value::object(vec![(
        "log",
        Value::object(vec![
            ("version", Value::str("1.2")),
            (
                "creator",
                Value::object(vec![
                    ("name", Value::str("panoptes-rs")),
                    ("version", Value::str(env!("CARGO_PKG_VERSION"))),
                ]),
            ),
            ("entries", Value::Array(entries)),
        ]),
    )])
}

/// Convenience: exports a whole store (zero-copy: renders straight off
/// the sealed snapshot, no per-flow clone).
pub fn store_to_har(store: &FlowStore) -> String {
    let snap = store.snapshot();
    json::to_string_pretty(&har_log(snap.iter().map(entry).collect()))
}

fn entry(flow: &Flow) -> Value {
    let query: Vec<Value> = Url::parse(&flow.url)
        .map(|u| {
            u.query_pairs()
                .iter()
                .map(|(k, v)| {
                    Value::object(vec![("name", Value::str(k)), ("value", Value::str(v))])
                })
                .collect()
        })
        .unwrap_or_default();
    let headers: Vec<Value> = flow
        .request_headers
        .iter()
        .map(|(n, v)| Value::object(vec![("name", Value::str(n)), ("value", Value::str(v))]))
        .collect();

    let mut request = vec![
        ("method", Value::str(flow.method.as_str())),
        ("url", Value::str(&flow.url)),
        ("httpVersion", Value::str(format!("HTTP/{}", http_version_label(flow)))),
        ("headers", Value::Array(headers)),
        ("queryString", Value::Array(query)),
        ("headersSize", Value::from(-1i64)),
        ("bodySize", Value::from(flow.request_body.len() as u64)),
    ];
    if !flow.request_body.is_empty() {
        request.push((
            "postData",
            Value::object(vec![
                ("mimeType", Value::str("application/octet-stream")),
                ("text", Value::str(&flow.request_body)),
            ]),
        ));
    }

    Value::object(vec![
        ("startedDateTime", Value::str(iso_time(flow.time_us))),
        ("time", Value::from(0u32)),
        ("request", Value::Object(request.into_iter().map(|(k, v)| (k.to_string(), v)).collect())),
        (
            "response",
            Value::object(vec![
                ("status", Value::from(flow.status as u32)),
                ("statusText", Value::str("")),
                ("httpVersion", Value::str(format!("HTTP/{}", http_version_label(flow)))),
                ("headers", Value::Array(vec![])),
                ("content", Value::object(vec![("size", Value::from(flow.bytes_in))])),
                ("headersSize", Value::from(-1i64)),
                ("bodySize", Value::from(flow.bytes_in)),
            ]),
        ),
        ("cache", Value::Object(vec![])),
        (
            "timings",
            Value::object(vec![
                ("send", Value::from(0u32)),
                ("wait", Value::from(0u32)),
                ("receive", Value::from(0u32)),
            ]),
        ),
        ("serverIPAddress", Value::str(flow.dst_ip.to_string())),
        // Panoptes extensions.
        ("_class", Value::str(flow.class.as_str())),
        ("_uid", Value::from(flow.uid)),
        ("_package", Value::str(&flow.package)),
    ])
}

fn http_version_label(flow: &Flow) -> &'static str {
    match flow.version {
        panoptes_http::request::HttpVersion::H1 => "1.1",
        panoptes_http::request::HttpVersion::H2 => "2",
        panoptes_http::request::HttpVersion::H3 => "3",
    }
}

/// Maps a virtual-time microsecond offset onto an ISO-8601 timestamp in
/// the anchored day (offsets beyond 24h spill into subsequent days).
fn iso_time(time_us: u64) -> String {
    let total_secs = time_us / 1_000_000;
    let millis = (time_us % 1_000_000) / 1_000;
    let days = total_secs / 86_400;
    let secs_of_day = total_secs % 86_400;
    let (h, m, s) = (secs_of_day / 3600, (secs_of_day % 3600) / 60, secs_of_day % 60);
    let (year, month, day) = EPOCH_ISO_DATE;
    format!(
        "{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z",
        day = day + days
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_http::netaddr::IpAddr;
    use crate::flow::FlowClass;
    use panoptes_http::method::Method;
    use panoptes_http::request::HttpVersion;

    fn flow() -> Flow {
        Flow {
            id: 1,
            time_us: 65_500_000, // t+65.5s
            uid: 10050,
            package: "ru.yandex.browser".into(),
            host: "sba.yandex.net".into(),
            dst_ip: IpAddr::new(77, 88, 0, 11),
            dst_port: 443,
            method: Method::Post,
            url: "https://sba.yandex.net/safety/check?url=abc".into(),
            request_headers: vec![("user-agent".into(), "YaBrowser".into())],
            request_body: "{\"x\":1}".into(),
            status: 204,
            bytes_out: 400,
            bytes_in: 90,
            version: HttpVersion::H2,
            class: FlowClass::Native,
        }
    }

    #[test]
    fn har_structure_is_valid_json_with_entries() {
        let har = to_har(&[flow()]);
        let text = json::to_string(&har);
        let parsed = json::parse(&text).unwrap();
        let log = parsed.get("log").unwrap();
        assert_eq!(log.get("version").unwrap().as_str(), Some("1.2"));
        let entries = log.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("_class").unwrap().as_str(), Some("native"));
        assert_eq!(e.get("serverIPAddress").unwrap().as_str(), Some("77.88.0.11"));
        let req = e.get("request").unwrap();
        assert_eq!(req.get("method").unwrap().as_str(), Some("POST"));
        let qs = req.get("queryString").unwrap().as_array().unwrap();
        assert_eq!(qs[0].get("name").unwrap().as_str(), Some("url"));
        assert_eq!(qs[0].get("value").unwrap().as_str(), Some("abc"));
        assert_eq!(
            e.get("response").unwrap().get("status").unwrap().as_i64(),
            Some(204)
        );
    }

    #[test]
    fn timestamps_map_virtual_time() {
        let har = to_har(&[flow()]);
        let text = json::to_string(&har);
        assert!(text.contains("2023-05-12T00:01:05.500Z"), "{text}");
    }

    #[test]
    fn store_export_is_pretty_and_parseable() {
        let store = FlowStore::new();
        store.push(flow());
        let text = store_to_har(&store);
        assert!(text.contains('\n'));
        assert!(json::parse(&text).is_ok());
    }

    #[test]
    fn empty_capture_yields_empty_entries() {
        let har = to_har(&[]);
        let entries = har.get("log").unwrap().get("entries").unwrap().as_array().unwrap();
        assert!(entries.is_empty());
    }
}
