//! Property-based tests for the codec / URL / JSON substrates.

use proptest::prelude::*;

use panoptes_http::codec::{
    b64_decode, b64_decode_url, b64_encode, b64_encode_url, hex_decode, hex_encode,
    percent_decode, percent_encode_component,
};
use panoptes_http::json::{self, Value};
use panoptes_http::netaddr::{Cidr, IpAddr};
use panoptes_http::h1;
use panoptes_http::url::{registrable_domain, Url};
use panoptes_http::{Atom, Request};

proptest! {
    #[test]
    fn base64_std_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(b64_decode(&b64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn base64_url_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = b64_encode_url(&data);
        prop_assert!(!enc.contains('=') && !enc.contains('+') && !enc.contains('/'));
        prop_assert_eq!(b64_decode_url(&enc).unwrap(), data);
    }

    #[test]
    fn base64_encoding_length_bound(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Padded output is exactly ceil(n/3)*4 characters.
        prop_assert_eq!(b64_encode(&data).len(), data.len().div_ceil(3) * 4);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn percent_component_roundtrip(s in "\\PC{0,64}") {
        prop_assert_eq!(percent_decode(&percent_encode_component(&s)), s);
    }

    #[test]
    fn percent_decode_never_panics(s in "\\PC{0,64}") {
        let _ = percent_decode(&s);
    }

    #[test]
    fn url_roundtrip_structured(
        host_label in "[a-z][a-z0-9-]{0,10}",
        tld in prop::sample::select(vec!["com", "net", "org", "ru", "example"]),
        path_seg in "[a-z0-9]{0,12}",
        key in "[a-z]{1,8}",
        value in "[a-zA-Z0-9 /+=&?#%]{0,24}",
    ) {
        let url = Url::parse(&format!("https://{host_label}.{tld}/{path_seg}"))
            .unwrap()
            .with_query_param(&key, &value);
        let reparsed = Url::parse(&url.to_string_full()).unwrap();
        prop_assert_eq!(reparsed.host(), url.host());
        prop_assert_eq!(reparsed.path(), url.path());
        prop_assert_eq!(reparsed.query_param(&key), Some(value.as_str()));
    }

    #[test]
    fn url_parse_never_panics(s in "\\PC{0,100}") {
        let _ = Url::parse(&s);
    }

    #[test]
    fn registrable_domain_is_suffix(
        labels in proptest::collection::vec("[a-z]{1,6}", 1..5),
    ) {
        let host = labels.join(".");
        let reg = registrable_domain(&host);
        let dotted = format!(".{reg}");
        prop_assert!(host == reg || host.ends_with(&dotted));
    }

    #[test]
    fn ip_roundtrip(raw in any::<u32>()) {
        let ip = IpAddr(raw);
        prop_assert_eq!(IpAddr::parse(&ip.to_string()), Some(ip));
    }

    #[test]
    fn cidr_contains_all_its_hosts(raw in any::<u32>(), prefix in 8u8..=32, idx in any::<u32>()) {
        let cidr = Cidr::new(IpAddr(raw), prefix);
        let span = if prefix == 32 { 1 } else { 1u64 << (32 - prefix as u32) };
        let host = cidr.host((idx as u64 % span) as u32);
        prop_assert!(cidr.contains(host));
    }

    #[test]
    fn h1_request_roundtrip(
        host in "[a-z]{1,10}\\.(com|org|net)",
        path_seg in "[a-z0-9]{0,10}",
        key in "[a-z]{1,6}",
        value in "[a-zA-Z0-9 ]{0,16}",
        header_val in "[a-zA-Z0-9/.;= -]{0,24}",
        body in proptest::collection::vec(any::<u8>(), 0..128),
        https in proptest::bool::ANY,
    ) {
        let scheme = if https { "https" } else { "http" };
        let url = Url::parse(&format!("{scheme}://{host}/{path_seg}"))
            .unwrap()
            .with_query_param(&key, &value);
        let req = Request::post(url, body.clone())
            .with_header("user-agent", header_val.trim())
            .with_header("accept", "*/*");
        let wire = h1::render_request(&req);
        let parsed = h1::parse_request(&wire, https).unwrap();
        prop_assert_eq!(parsed.url.host(), host.as_str());
        prop_assert_eq!(parsed.url.query_param(&key), Some(value.as_str()));
        prop_assert_eq!(&parsed.body[..], &body[..]);
        prop_assert_eq!(parsed.headers.get("accept"), Some("*/*"));
    }

    #[test]
    fn h1_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = h1::parse_request(&bytes, true);
        let _ = h1::parse_response(&bytes);
    }

    #[test]
    fn json_roundtrip_arbitrary(value in arb_json(3)) {
        let compact = json::to_string(&value);
        prop_assert_eq!(json::parse(&compact).unwrap(), value.clone());
        let pretty = json::to_string_pretty(&value);
        prop_assert_eq!(json::parse(&pretty).unwrap(), value);
    }

    #[test]
    fn json_parse_never_panics(s in "\\PC{0,200}") {
        let _ = json::parse(&s);
    }
}

/// Strategy for arbitrary JSON values with integral numbers (floats would
/// make equality after roundtrip flaky only through NaN, which `Value`
/// cannot hold anyway — we keep integers for exactness).
fn arb_json(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(|n| Value::Number(n as f64)),
        "\\PC{0,16}".prop_map(Value::String),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|pairs| {
                Value::Object(pairs.into_iter().collect())
            }),
        ]
    })
}

proptest! {
    /// Interning round-trips arbitrary strings and is idempotent: the
    /// same text always resolves to the same shared allocation.
    #[test]
    fn atom_intern_roundtrip(s in "\\PC{0,64}") {
        let a = Atom::intern(&s);
        prop_assert_eq!(a.as_str(), s.as_str());
        let b = Atom::intern(&s);
        prop_assert!(Atom::ptr_eq(&a, &b));
        prop_assert!(Atom::ptr_eq(&a, &a.clone()));
    }

    /// Atom equality and ordering agree with the underlying strings, so
    /// swapping `String` fields for atoms cannot reorder any report.
    #[test]
    fn atom_order_matches_str(a in "\\PC{0,32}", b in "\\PC{0,32}") {
        let (x, y) = (Atom::intern(&a), Atom::intern(&b));
        prop_assert_eq!(x == y, a == b);
        prop_assert_eq!(x.cmp(&y), a.cmp(&b));
    }

    /// Interning from another thread still converges on the one shared
    /// allocation per distinct string (the shard table is global).
    #[test]
    fn atom_intern_cross_thread(s in "\\PC{1,32}") {
        let s2 = s.clone();
        let remote = std::thread::spawn(move || Atom::intern(&s2)).join().unwrap();
        prop_assert!(Atom::ptr_eq(&Atom::intern(&s), &remote));
    }
}
