//! Hosts-file blocklist parsing and matching (Steven Black style).
//!
//! Format: `0.0.0.0 domain` (or `127.0.0.1 domain`), `#` comments,
//! blank lines. Matching treats an entry as covering the exact host and
//! every subdomain, which is how the paper's Figure 3 classification
//! treats e.g. `doubleclick.net` covering `stats.g.doubleclick.net`.

use std::collections::HashSet;

/// A parsed hosts-style blocklist.
#[derive(Debug, Clone, Default)]
pub struct HostsList {
    entries: HashSet<String>,
}

impl HostsList {
    /// An empty list.
    pub fn new() -> HostsList {
        HostsList::default()
    }

    /// Parses hosts-file text, ignoring comments, blanks and the
    /// localhost boilerplate every distribution of these lists carries.
    pub fn parse(text: &str) -> HostsList {
        let mut list = HostsList::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (Some(addr), Some(host)) = (fields.next(), fields.next()) else {
                continue;
            };
            if !matches!(addr, "0.0.0.0" | "127.0.0.1" | "::" | "::1") {
                continue;
            }
            if matches!(host, "localhost" | "localhost.localdomain" | "broadcasthost" | "local") {
                continue;
            }
            list.add(host);
        }
        list
    }

    /// Adds a single entry.
    pub fn add(&mut self, host: &str) {
        self.entries.insert(host.to_ascii_lowercase()); // alloc-ok: list build time
    }

    /// Merges another list into this one.
    pub fn extend(&mut self, other: &HostsList) {
        self.entries.extend(other.entries.iter().cloned());
    }

    /// True when `host` or any of its parent domains is listed.
    pub fn contains(&self, host: &str) -> bool {
        // Hosts arrive lowercased from the URL layer; only an
        // upper-case caller pays for a folded copy.
        if host.bytes().any(|b| b.is_ascii_uppercase()) {
            return self.contains(&host.to_ascii_lowercase()); // alloc-ok: uppercase slow path
        }
        let mut suffix: &str = host;
        loop {
            if self.entries.contains(suffix) {
                return true;
            }
            match suffix.split_once('.') {
                Some((_, rest)) if !rest.is_empty() => suffix = rest,
                _ => return false,
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hosts_format() {
        let list = HostsList::parse(
            "# Steven Black excerpt\n\
             127.0.0.1 localhost\n\
             0.0.0.0 doubleclick.net # ad giant\n\
             0.0.0.0 adnxs.com\n\
             \n\
             not-a-valid-line\n\
             0.0.0.0\n",
        );
        assert_eq!(list.len(), 2);
        assert!(list.contains("doubleclick.net"));
        assert!(list.contains("adnxs.com"));
        assert!(!list.contains("localhost"));
    }

    #[test]
    fn subdomain_matching() {
        let mut list = HostsList::new();
        list.add("doubleclick.net");
        assert!(list.contains("stats.g.doubleclick.net"));
        assert!(list.contains("DOUBLECLICK.NET"));
        assert!(!list.contains("notdoubleclick.net"));
        assert!(!list.contains("net"));
    }

    #[test]
    fn specific_subdomain_entry_does_not_cover_parent() {
        let mut list = HostsList::new();
        list.add("ads.example.com");
        assert!(list.contains("ads.example.com"));
        assert!(list.contains("x.ads.example.com"));
        assert!(!list.contains("example.com"));
        assert!(!list.contains("www.example.com"));
    }

    #[test]
    fn extend_merges() {
        let mut a = HostsList::new();
        a.add("a.com");
        let mut b = HostsList::new();
        b.add("b.com");
        a.extend(&b);
        assert!(a.contains("a.com") && a.contains("b.com"));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
