//! Dolphin 12.2.9 — a WebView browser whose idle traffic is dominated by
//! Facebook's Graph API: 46% of its idle-time native requests go there
//! (§3.5). No Table 2 PII.

use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::ResolverKind;

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("api.dolphin-browser.com", "/v1/config"),
    NativeCall::ping("en.dolphin-browser.com", "/speeddial"),
    NativeCall::ping("push.dolphin-browser.com", "/v1/register"),
    NativeCall::ping("opsen.dolphin-browser.com", "/v1/ops"),
    NativeCall::ping("tuna.dolphin-browser.com", "/v1/stat"),
    NativeCall::ping("update.dolphin-browser.com", "/check"),
    // Facebook SDK init at app start.
    NativeCall::ping("graph.facebook.com", "/v12.0/app_events"),
];

const PER_VISIT: &[NativeCall] = &[
    NativeCall::ping("api.dolphin-browser.com", "/v1/event"),
    NativeCall::ping("tuna.dolphin-browser.com", "/v1/stat"),
];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("en.dolphin-browser.com", "/speeddial"),
    NativeCall::ping("api.dolphin-browser.com", "/v1/config"),
    NativeCall::ping("en.dolphin-browser.com", "/speeddial/icons"),
    NativeCall::ping("update.dolphin-browser.com", "/check"),
    NativeCall::ping("en.dolphin-browser.com", "/speeddial/news"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    // The Graph API heartbeat: 46% of Dolphin's idle natives.
    (30, NativeCall::ping("graph.facebook.com", "/v12.0/app_events")),
    (60, NativeCall::ping("api.dolphin-browser.com", "/v1/heartbeat")),
    (120, NativeCall::ping("push.dolphin-browser.com", "/v1/poll")),
    (200, NativeCall::ping("opsen.dolphin-browser.com", "/v1/ops")),
];

const PII: &[PiiField] = &[];

/// Builds the Dolphin profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "Dolphin",
        version: "12.2.9",
        package: "mobi.mgeek.TunnyBrowser",
        instrumentation: Instrumentation::FridaWebView,
        supports_incognito: true,
        resolver: ResolverKind::LocalStub,
        adblock: false,
        attempts_h3: false,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: None,
        injects_js_collector: None,
        honors_telemetry_consent: false,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
