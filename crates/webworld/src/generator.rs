//! The seeded site-population generator.
//!
//! Replaces the paper's crawl list — "the top 500 most popular websites
//! based on the Tranco list" plus "500 websites associated with sensitive
//! information based on the Curlie directory" (§3) — with a deterministic
//! synthetic population of the same shape: a handful of globally
//! recognizable head sites, a long tail of themed filler sites, and four
//! sensitive categories (society / religion / sexuality / health) with
//! topical landing paths so that *full-URL* leaks reveal strictly more
//! than *hostname* leaks, the distinction §4 of the paper emphasizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::site::{
    PageSpec, ResourceKind, ResourceSpec, SensitiveCategory, SiteCategory, SiteSpec,
};
use crate::thirdparty::{AD_NETWORKS, CDNS, TRACKERS};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Master seed; the same seed reproduces the identical web.
    pub seed: u64,
    /// Number of popularity-ranked sites (paper: 500).
    pub popular: u32,
    /// Number of sensitive-directory sites (paper: 500).
    pub sensitive: u32,
    /// Number of deep-tail sites appended after the head set (Tranco-100k
    /// scaling; 0 reproduces the paper's 1,000-site web exactly).
    ///
    /// Prefix-stability contract: for any `tail`, the first
    /// `popular + sensitive` generated sites are byte-identical to a
    /// `tail: 0` run — the tail only ever *appends*.
    pub tail: u32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { seed: 0x50_41_4e_4f, popular: 500, sensitive: 500, tail: 0 }
    }
}

/// Recognizable head-of-ranking domains (stand-ins for Tranco's top).
const HEAD_SITES: &[&str] = &[
    "youtube.com",
    "wikipedia.org",
    "reddit.com",
    "amazon.com",
    "netflix.com",
    "twitch.tv",
    "nytimes.com",
    "bbc.co.uk",
    "stackoverflow.com",
    "github.com",
    "imdb.com",
    "spotify.com",
    "ebay.com",
    "cnn.com",
    "weather.com",
    "espn.com",
    "booking.com",
    "yelp.com",
    "etsy.com",
    "quora.com",
];

const THEMES: &[&str] =
    &["news", "shop", "video", "sports", "games", "weather", "travel", "music", "tech", "food"];
const TLDS: &[&str] = &["com", "net", "org", "io"];

const SOCIETY_TOPICS: &[&str] =
    &["war-crimes-tribunal", "conflict-refugees", "protest-rights", "conscription-debate"];
const RELIGION_TOPICS: &[&str] =
    &["conversion-stories", "interfaith-marriage", "leaving-the-faith", "scripture-study"];
const SEXUALITY_TOPICS: &[&str] =
    &["coming-out-support", "lgbtq-rights", "gender-identity", "relationship-advice"];
const HEALTH_TOPICS: &[&str] =
    &["depression-support", "hiv-treatment", "addiction-recovery", "anxiety-therapy"];

/// Generates the crawl population: `popular` ranked sites, then
/// `sensitive` directory sites, then the deep tail. The head set
/// (`popular + sensitive`) is byte-identical for every `tail` value —
/// the prefix-stability contract `repro_output.md` depends on.
pub fn generate(config: &GeneratorConfig) -> Vec<SiteSpec> {
    let mut sites =
        Vec::with_capacity((config.popular + config.sensitive + config.tail) as usize);
    for rank in 1..=config.popular {
        sites.push(popular_site(config.seed, rank));
    }
    for index in 1..=config.sensitive {
        sites.push(sensitive_site(config.seed, index));
    }
    let head = config.popular + config.sensitive;
    for index in 1..=config.tail {
        sites.push(tail_site(config.seed, head, index));
    }
    sites
}

fn site_rng(seed: u64, domain: &str) -> StdRng {
    StdRng::seed_from_u64(seed ^ fnv1a(domain))
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn popular_site(seed: u64, rank: u32) -> SiteSpec {
    let domain = if (rank as usize) <= HEAD_SITES.len() {
        HEAD_SITES[rank as usize - 1].to_string()
    } else {
        let theme = THEMES[(rank as usize) % THEMES.len()];
        let tld = TLDS[(rank as usize / THEMES.len()) % TLDS.len()];
        format!("{theme}{rank:03}.{tld}")
    };
    let host = format!("www.{domain}");
    let mut rng = site_rng(seed, &domain);

    // Head sites are heavier; the tail thins out (Zipf-flavoured).
    let weight = 1.0 / (1.0 + (rank as f64).ln());
    let n_static = 6 + (rng.gen_range(8..26) as f64 * (0.6 + weight)) as u32;
    let n_ads = rng.gen_range(3..=10);
    let n_trackers = rng.gen_range(1..=4);
    let landing_path = "/".to_string();
    let page = build_page(&mut rng, &domain, &host, n_static, n_ads, n_trackers, rank);

    // Most real top sites answer on the apex with a redirect to www;
    // every 9th site models that dance so the engine's redirect-following
    // is exercised at scale.
    let apex_redirect = rank.is_multiple_of(9);
    SiteSpec {
        rank,
        domain,
        host,
        landing_path,
        category: SiteCategory::Popular,
        page,
        apex_redirect,
        tail: false,
    }
}

/// SplitMix64 finalizer: the tail generator's whole entropy source.
/// Cheaper than seeding a `StdRng` per site and — unlike `StdRng` — a
/// pure function the origin server can re-derive at request time, so a
/// 100k-site world needs no per-resource state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The `stream`-th draw for a tail site, in `lo..hi`.
fn tail_draw(site_key: u64, stream: u64, lo: u32, hi: u32) -> u32 {
    lo + (mix(site_key ^ stream.wrapping_mul(0x2545_f491_4f6c_dd1d)) % (hi - lo) as u64) as u32
}

/// One deep-tail site: a light, self-hosted page (`www.` host only — no
/// per-site CDN subdomains, which would double the world's host count)
/// whose static resources carry their byte size in the path
/// (`/s/{size}/...`), letting the origin answer them formulaically.
/// Third-party ads/trackers still come from the shared networks so
/// blocklist and tracking analyses see realistic tail traffic.
fn tail_site(seed: u64, head: u32, index: u32) -> SiteSpec {
    let rank = head + index;
    let theme = THEMES[(index as usize) % THEMES.len()];
    let tld = TLDS[(index as usize / THEMES.len()) % TLDS.len()];
    // 6-digit slot keeps tail domains disjoint from the 3-digit head
    // naming (`news042.com` vs `news100042.com`) for any head < 100_000.
    let domain = format!("{theme}{}.{tld}", 100_000 + index);
    let host = format!("www.{domain}");
    let key = seed ^ fnv1a(&domain);

    // Zipf-flavoured thinning: deeper ranks carry fewer resources.
    let depth = 1 + (64 - (rank as u64).leading_zeros()) / 4; // ~1..9
    let n_static = 3 + tail_draw(key, 1, 0, 5).saturating_sub(depth.min(2)); // 3..=7
    let n_ads = tail_draw(key, 2, 0, 4);
    let n_trackers = tail_draw(key, 3, 0, 3);
    let document_size = tail_draw(key, 4, 8_000, 48_000);

    let mut resources = Vec::with_capacity((n_static + n_ads + n_trackers) as usize);
    for i in 0..n_static {
        let size = tail_draw(key, 16 + i as u64, 500, 60_000);
        let (kind, path) = match i % 4 {
            0 => (ResourceKind::Script, format!("/s/{size}/app{i}.js")),
            1 => (ResourceKind::Style, format!("/s/{size}/style{i}.css")),
            2 => (ResourceKind::Image, format!("/s/{size}/media{i}.jpg")),
            _ => (ResourceKind::Xhr, format!("/s/{size}/feed{i}")),
        };
        resources.push(ResourceSpec { host: host.clone(), path, size, kind });
    }
    for i in 0..n_ads {
        let network = AD_NETWORKS[tail_draw(key, 64 + i as u64, 0, AD_NETWORKS.len() as u32) as usize];
        resources.push(ResourceSpec {
            host: network.to_string(),
            path: format!("/bid?slot={i}&site={domain}"),
            size: tail_draw(key, 96 + i as u64, 800, 6_000),
            kind: ResourceKind::Ad,
        });
    }
    for i in 0..n_trackers {
        let tracker = TRACKERS[tail_draw(key, 128 + i as u64, 0, TRACKERS.len() as u32) as usize];
        resources.push(ResourceSpec {
            host: tracker.to_string(),
            path: format!("/collect?v=1&cid={i}&dl=https%3A%2F%2F{host}%2F"),
            size: tail_draw(key, 160 + i as u64, 35, 600),
            kind: ResourceKind::Tracker,
        });
    }

    let dom_content_loaded_ms =
        if rank.is_multiple_of(167) { 70_000 } else { tail_draw(key, 5, 300, 2_500) };

    SiteSpec {
        rank,
        domain,
        host,
        landing_path: "/".to_string(),
        category: SiteCategory::Popular,
        page: PageSpec { document_size, resources, dom_content_loaded_ms },
        apex_redirect: false,
        tail: true,
    }
}

fn sensitive_site(seed: u64, index: u32) -> SiteSpec {
    let category = SensitiveCategory::ALL[(index as usize - 1) % 4];
    let (label, topics) = match category {
        SensitiveCategory::Society => ("society-watch", SOCIETY_TOPICS),
        SensitiveCategory::Religion => ("faith-community", RELIGION_TOPICS),
        SensitiveCategory::Sexuality => ("identity-forum", SEXUALITY_TOPICS),
        SensitiveCategory::Health => ("health-support", HEALTH_TOPICS),
    };
    let domain = format!("{label}{index:03}.org");
    let host = format!("www.{domain}");
    let mut rng = site_rng(seed, &domain);
    let topic = topics[rng.gen_range(0..topics.len())];
    let landing_path = format!("/{}/{}", category.as_str(), topic);

    // Sensitive community sites are lighter and carry fewer ads.
    let n_static = rng.gen_range(5..16);
    let n_ads = rng.gen_range(0..=3);
    let n_trackers = rng.gen_range(0..=2);
    let page = build_page(&mut rng, &domain, &host, n_static, n_ads, n_trackers, 500 + index);

    SiteSpec {
        rank: index,
        domain,
        host,
        landing_path,
        category: SiteCategory::Sensitive(category),
        page,
        apex_redirect: false,
        tail: false,
    }
}

fn build_page(
    rng: &mut StdRng,
    domain: &str,
    host: &str,
    n_static: u32,
    n_ads: u32,
    n_trackers: u32,
    rank: u32,
) -> PageSpec {
    let document_size = rng.gen_range(20_000..150_000);
    let mut resources = Vec::new();

    for i in 0..n_static {
        let (kind, path, size) = match i % 4 {
            0 => (ResourceKind::Script, format!("/assets/app{i}.js"), rng.gen_range(4_000..80_000)),
            1 => (ResourceKind::Style, format!("/assets/style{i}.css"), rng.gen_range(1_000..30_000)),
            2 => (ResourceKind::Image, format!("/img/media{i}.jpg"), rng.gen_range(5_000..120_000)),
            _ => (ResourceKind::Xhr, format!("/api/feed?page={i}"), rng.gen_range(500..8_000)),
        };
        // Static assets split between the site host, its CDN subdomain
        // and shared CDNs.
        let res_host = match i % 5 {
            0 | 1 => host.to_string(),
            2 => format!("cdn.{domain}"),
            3 => format!("static.{domain}"),
            _ => CDNS[(i as usize) % CDNS.len()].to_string(),
        };
        resources.push(ResourceSpec { host: res_host, path, size, kind });
    }

    for i in 0..n_ads {
        let network = AD_NETWORKS[rng.gen_range(0..AD_NETWORKS.len())];
        resources.push(ResourceSpec {
            host: network.to_string(),
            path: format!("/bid?slot={i}&site={domain}"),
            size: rng.gen_range(800..6_000),
            kind: ResourceKind::Ad,
        });
    }

    for i in 0..n_trackers {
        let tracker = TRACKERS[rng.gen_range(0..TRACKERS.len())];
        resources.push(ResourceSpec {
            host: tracker.to_string(),
            path: format!("/collect?v=1&cid={i}&dl=https%3A%2F%2F{host}%2F"),
            size: rng.gen_range(35..600),
            kind: ResourceKind::Tracker,
        });
    }

    // A sprinkle of slow sites exercises the crawler's 60-second budget
    // (§2.1): every 167th site never fires DOMContentLoaded in time.
    let dom_content_loaded_ms =
        if rank.is_multiple_of(167) { 70_000 } else { rng.gen_range(300..2_500) };

    PageSpec { document_size, resources, dom_content_loaded_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_size_and_split() {
        let sites = generate(&GeneratorConfig::default());
        assert_eq!(sites.len(), 1000);
        assert_eq!(sites.iter().filter(|s| !s.category.is_sensitive()).count(), 500);
        assert_eq!(sites.iter().filter(|s| s.category.is_sensitive()).count(), 500);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GeneratorConfig::default());
        let b = generate(&GeneratorConfig::default());
        assert_eq!(a, b);
        let c = generate(&GeneratorConfig { seed: 99, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn head_sites_are_recognizable() {
        let sites = generate(&GeneratorConfig::default());
        assert_eq!(sites[0].domain, "youtube.com");
        assert_eq!(sites[0].host, "www.youtube.com");
        assert_eq!(sites[0].rank, 1);
    }

    #[test]
    fn domains_are_unique() {
        let sites = generate(&GeneratorConfig::default());
        let mut domains: Vec<&str> = sites.iter().map(|s| s.domain.as_str()).collect();
        domains.sort_unstable();
        let n = domains.len();
        domains.dedup();
        assert_eq!(domains.len(), n);
    }

    #[test]
    fn sensitive_sites_have_topical_paths() {
        let sites = generate(&GeneratorConfig::default());
        let sensitive: Vec<&SiteSpec> =
            sites.iter().filter(|s| s.category.is_sensitive()).collect();
        for s in &sensitive {
            assert!(s.landing_path.len() > 1, "{} lacks a topical path", s.domain);
            assert!(s.landing_path.starts_with('/'));
        }
        // All four categories present in equal measure.
        for cat in SensitiveCategory::ALL {
            let count = sensitive
                .iter()
                .filter(|s| s.category == SiteCategory::Sensitive(cat))
                .count();
            assert_eq!(count, 125, "{cat:?}");
        }
    }

    #[test]
    fn pages_have_realistic_structure() {
        let sites = generate(&GeneratorConfig::default());
        for s in &sites {
            assert!(s.page.request_count() >= 6, "{} too thin", s.domain);
            assert!(s.page.total_bytes() > 20_000);
        }
        // Popular sites carry ads; a typical page has several.
        let with_ads = sites
            .iter()
            .filter(|s| !s.category.is_sensitive())
            .filter(|s| s.page.resources.iter().any(|r| r.kind == ResourceKind::Ad))
            .count();
        assert!(with_ads == 500, "all popular sites embed ads, got {with_ads}");
    }

    #[test]
    fn tail_appends_without_touching_the_head() {
        let head = generate(&GeneratorConfig::default());
        let grown = generate(&GeneratorConfig { tail: 2_000, ..Default::default() });
        assert_eq!(grown.len(), 3_000);
        // Prefix-stability contract: the paper's 1,000 sites are a
        // byte-identical prefix of every larger world.
        assert_eq!(&grown[..1_000], &head[..]);
        for (i, s) in grown[1_000..].iter().enumerate() {
            assert!(s.tail, "{} not marked tail", s.domain);
            assert_eq!(s.rank, 1_001 + i as u32);
            assert!(!s.category.is_sensitive());
            assert!(!s.apex_redirect);
        }
    }

    #[test]
    fn tail_domains_do_not_collide() {
        let sites = generate(&GeneratorConfig { tail: 5_000, ..Default::default() });
        let mut domains: Vec<&str> = sites.iter().map(|s| s.domain.as_str()).collect();
        domains.sort_unstable();
        let n = domains.len();
        domains.dedup();
        assert_eq!(domains.len(), n);
    }

    #[test]
    fn tail_resources_are_self_hosted_or_shared() {
        let sites = generate(&GeneratorConfig { tail: 300, ..Default::default() });
        for s in sites.iter().filter(|s| s.tail) {
            for r in &s.page.resources {
                let own = r.host == s.host;
                let shared = AD_NETWORKS.contains(&r.host.as_str())
                    || TRACKERS.contains(&r.host.as_str());
                assert!(own || shared, "{} serves from {}", s.domain, r.host);
                if own {
                    // Size-addressed path: the origin re-derives the
                    // response size from the path alone.
                    let encoded: u32 = r
                        .path
                        .strip_prefix("/s/")
                        .and_then(|rest| rest.split('/').next())
                        .and_then(|n| n.parse().ok())
                        .expect("size-addressed path");
                    assert_eq!(encoded, r.size, "{}{}", s.domain, r.path);
                }
            }
            assert!(s.page.request_count() >= 4);
        }
    }

    #[test]
    fn some_sites_are_slow() {
        let sites = generate(&GeneratorConfig::default());
        let slow = sites.iter().filter(|s| s.page.dom_content_loaded_ms > 60_000).count();
        assert!(slow >= 2, "expected slow sites for the timeout path, got {slow}");
    }
}
