//! # panoptes-http
//!
//! HTTP substrate for the Panoptes reproduction: the wire-level value types
//! every other crate speaks.
//!
//! The paper's measurement pipeline (IMC '23, "Not only E.T. Phones Home")
//! lives entirely at the HTTP layer: it taints requests with a custom `x-`
//! header, inspects URLs and query parameters for leaked browsing history,
//! Base64-decodes suspicious parameter values, and parses JSON ad-SDK bodies
//! (Listing 1 of the paper). This crate provides all of that from scratch:
//!
//! * [`url::Url`] — a parser for absolute `http`/`https` URLs with query
//!   parameter access and registrable-domain extraction,
//! * [`headers::Headers`] — an ordered, case-insensitive header multimap,
//! * [`request::Request`] / [`response::Response`] — HTTP messages with
//!   wire-size estimation (needed for the paper's Figure 4 volume analysis),
//! * [`cookie`] — cookie parsing and a per-origin jar,
//! * [`h1`] — HTTP/1.1 wire rendering and parsing,
//! * [`codec`] — Base64 (standard and URL-safe), percent and hex codecs,
//! * [`json`] — a small, strict JSON parser and writer used for flow-store
//!   persistence and for decoding ad-SDK request bodies,
//! * [`netaddr`] — IPv4/CIDR helpers shared by the simulator and the
//!   geolocation database.
//!
//! ```
//! use panoptes_http::{Url, codec};
//!
//! // The Yandex leak shape: a full URL, Base64-wrapped in a query param.
//! let visited = "https://www.youtube.com/watch?v=abc";
//! let phone_home = Url::parse("https://sba.yandex.net/safety/check")
//!     .unwrap()
//!     .with_query_param("url", &codec::b64_encode_url(visited.as_bytes()));
//!
//! // ... and the analysis side recovers it.
//! let param = phone_home.query_param("url").unwrap();
//! let recovered = String::from_utf8(codec::b64_decode_url(param).unwrap()).unwrap();
//! assert_eq!(recovered, visited);
//! assert_eq!(phone_home.registrable_domain(), "yandex.net");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod codec;
pub mod cookie;
pub mod h1;
pub mod headers;
pub mod json;
pub mod method;
pub mod netaddr;
pub mod request;
pub mod response;
pub mod status;
pub mod url;
pub mod useragent;

pub use atom::Atom;
pub use cookie::{Cookie, CookieJar};
pub use headers::Headers;
pub use method::Method;
pub use netaddr::{Cidr, IpAddr};
pub use request::Request;
pub use response::Response;
pub use status::StatusCode;
pub use url::Url;
