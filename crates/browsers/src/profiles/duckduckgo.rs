//! DuckDuckGo 5.158.0 — a WebView app (no CDP; Frida hooks instead,
//! §2.1) with a minimal native footprint and no Table 2 PII.

use panoptes_instrument::tap::Instrumentation;

use crate::model::BehaviorModel;
use crate::profile::NativeCall;

/// The DuckDuckGo pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("DuckDuckGo", "5.158.0", "com.duckduckgo.mobile.android")
        .instrument(Instrumentation::FridaWebView)
        .honors_consent()
        .startup(vec![
            NativeCall::ping("staticcdn.duckduckgo.com", "/trackerblocking/tds.json"),
            NativeCall::ping("improving.duckduckgo.com", "/t/app_launch"),
        ])
        .per_visit(vec![NativeCall::ping("improving.duckduckgo.com", "/t/page_visit_anon")])
        .idle_burst(vec![
            NativeCall::ping("staticcdn.duckduckgo.com", "/trackerblocking/tds.json"),
        ])
        .idle_periodic(vec![
            (240, NativeCall::ping("improving.duckduckgo.com", "/t/heartbeat")),
            (300, NativeCall::ping("staticcdn.duckduckgo.com", "/trackerblocking/tds.json")),
        ])
}
