//! CocCoc 117.0.177 — the paper's irony case (§3.1): an *ad-blocking*
//! browser that enforces easylist in its web engine, yet keeps more than
//! 1/3 of its traffic native (the blocking shrinks the engine share) and
//! ships telemetry to `adjust.com`. Table 2: device type, manufacturer,
//! resolution, locale, country. Vietnamese vendor.

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::{DohProvider, ResolverKind};

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, Payload, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("update.coccoc.com", "/check"),
    NativeCall::ping("static.coccoc.com", "/newtab/assets"),
    NativeCall::ping("suggest.coccoc.com", "/v1/suggest"),
    NativeCall::ping("spell.coccoc.com", "/v1/dict"),
    NativeCall::ping("app.adjust.com", "/attribution"),
];

const PER_VISIT: &[NativeCall] = &[
    NativeCall {
        host: "log.coccoc.com",
        path: "/v1/log",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 100,
        count: 2,
        respects_incognito: false,
    },
    NativeCall::ping("newtab.coccoc.com", "/v1/tiles"),
];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("newtab.coccoc.com", "/v1/tiles"),
    NativeCall::ping("static.coccoc.com", "/newtab/assets"),
    NativeCall::ping("suggest.coccoc.com", "/v1/suggest"),
    NativeCall::ping("newtab.coccoc.com", "/v1/news"),
    NativeCall::ping("spell.coccoc.com", "/v1/dict"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    (60, NativeCall::ping("log.coccoc.com", "/v1/heartbeat")),
    (100, NativeCall::ping("newtab.coccoc.com", "/v1/news")),
    (120, NativeCall::ping("spell.coccoc.com", "/v1/sync")),
    // 6.7% of CocCoc's idle natives go to adjust.com (§3.5).
    (290, NativeCall::ping("app.adjust.com", "/session")),
    (300, NativeCall::ping("update.coccoc.com", "/check")),
];

const PII: &[PiiField] = &[
    PiiField::DeviceType,
    PiiField::DeviceManufacturer,
    PiiField::Resolution,
    PiiField::Locale,
    PiiField::Country,
];

/// Builds the CocCoc profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "CocCoc",
        version: "117.0.177",
        package: "com.coccoc.trinhduyet",
        instrumentation: Instrumentation::Cdp,
        supports_incognito: true,
        resolver: ResolverKind::Doh(DohProvider::Google),
        adblock: true,
        attempts_h3: true,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: None,
        injects_js_collector: None,
        honors_telemetry_consent: false,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
