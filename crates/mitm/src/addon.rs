//! The mitmproxy-style addon API.
//!
//! mitmproxy addons are Python objects whose `request`/`response` methods
//! are invoked as flows move through the proxy; Panoptes "developed a
//! custom MITM add-on to inspect all headers and separate the tainted
//! ones" (§2.3). This module is the Rust equivalent: an [`Addon`] trait
//! with request/response hooks and a chain that runs them in order.

use panoptes_http::{Request, Response};
use panoptes_simnet::net::FlowContext;

use crate::flow::FlowClass;

/// What the chain decided to do with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verdict {
    /// Forward upstream (default).
    #[default]
    Forward,
    /// Refuse to forward; the proxy answers `403 Forbidden` locally and
    /// records the flow as [`FlowClass::Blocked`]. Used by enforcement
    /// addons (`panoptes-guard`).
    Block,
}

/// A request travelling through the proxy, exposed mutably to addons.
pub struct InterceptedRequest<'a> {
    /// Immutable connection metadata.
    pub ctx: &'a FlowContext,
    /// The request; addons may rewrite headers (e.g. strip the taint) or
    /// redact query parameters / bodies.
    pub request: &'a mut Request,
    /// The working classification; starts [`FlowClass::Native`] and the
    /// taint addon flips tainted flows to [`FlowClass::Engine`].
    pub class: &'a mut FlowClass,
    /// The working verdict; an addon may set [`Verdict::Block`].
    pub verdict: &'a mut Verdict,
}

/// A proxy addon.
pub trait Addon: Send + Sync {
    /// Addon name (diagnostics).
    fn name(&self) -> &str;

    /// Runs while the request is held by the proxy, before upstream
    /// forwarding. Default: no-op.
    fn on_request(&self, _ir: &mut InterceptedRequest<'_>) {}

    /// Runs when the upstream response arrives. Default: no-op.
    fn on_response(&self, _ctx: &FlowContext, _response: &mut Response) {}

    /// Runs when a diverted client rejects the forged certificate.
    /// Default: no-op.
    fn on_tls_rejected(&self, _ctx: &FlowContext) {}
}

impl<T: Addon> Addon for std::sync::Arc<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_request(&self, ir: &mut InterceptedRequest<'_>) {
        (**self).on_request(ir)
    }
    fn on_response(&self, ctx: &FlowContext, response: &mut Response) {
        (**self).on_response(ctx, response)
    }
    fn on_tls_rejected(&self, ctx: &FlowContext) {
        (**self).on_tls_rejected(ctx)
    }
}

/// An ordered addon chain.
#[derive(Default)]
pub struct AddonChain {
    addons: Vec<Box<dyn Addon>>,
}

impl AddonChain {
    /// An empty chain.
    pub fn new() -> AddonChain {
        AddonChain::default()
    }

    /// Appends an addon.
    pub fn push(&mut self, addon: Box<dyn Addon>) {
        self.addons.push(addon);
    }

    /// Runs every addon's request hook in order.
    pub fn run_request(&self, ir: &mut InterceptedRequest<'_>) {
        for addon in &self.addons {
            addon.on_request(ir);
        }
    }

    /// Runs every addon's response hook in order.
    pub fn run_response(&self, ctx: &FlowContext, response: &mut Response) {
        for addon in &self.addons {
            addon.on_response(ctx, response);
        }
    }

    /// Runs every addon's TLS-rejection hook in order.
    pub fn run_tls_rejected(&self, ctx: &FlowContext) {
        for addon in &self.addons {
            addon.on_tls_rejected(ctx);
        }
    }

    /// Number of installed addons.
    pub fn len(&self) -> usize {
        self.addons.len()
    }

    /// True when no addons are installed.
    pub fn is_empty(&self) -> bool {
        self.addons.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_http::netaddr::IpAddr;
    use panoptes_http::request::HttpVersion;
    use panoptes_http::url::Url;
    use panoptes_simnet::clock::SimInstant;

    fn ctx() -> FlowContext {
        FlowContext {
            time: SimInstant::EPOCH,
            uid: 1,
            app_package: "a".into(),
            src_ip: IpAddr::new(10, 0, 0, 1),
            dst_ip: IpAddr::new(10, 0, 0, 2),
            dst_port: 443,
            sni: "x.com".into(),
            version: HttpVersion::H2,
            intercepted: true,
        }
    }

    struct MarkHeader(&'static str);
    impl Addon for MarkHeader {
        fn name(&self) -> &str {
            "mark"
        }
        fn on_request(&self, ir: &mut InterceptedRequest<'_>) {
            ir.request.headers.append("x-mark", self.0);
        }
    }

    #[test]
    fn chain_runs_in_order() {
        let mut chain = AddonChain::new();
        chain.push(Box::new(MarkHeader("first")));
        chain.push(Box::new(MarkHeader("second")));
        assert_eq!(chain.len(), 2);
        let ctx = ctx();
        let mut req = Request::get(Url::parse("https://x.com/").unwrap());
        let mut class = FlowClass::Native;
        let mut verdict = Verdict::Forward;
        chain.run_request(&mut InterceptedRequest {
            ctx: &ctx,
            request: &mut req,
            class: &mut class,
            verdict: &mut verdict,
        });
        assert_eq!(verdict, Verdict::Forward);
        let marks: Vec<&str> = req.headers.get_all("x-mark").collect();
        assert_eq!(marks, vec!["first", "second"]);
    }

    #[test]
    fn empty_chain_is_noop() {
        let chain = AddonChain::new();
        assert!(chain.is_empty());
        let ctx = ctx();
        let mut resp = Response::ok("");
        chain.run_response(&ctx, &mut resp);
        chain.run_tls_rejected(&ctx);
    }
}
