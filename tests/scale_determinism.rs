//! Determinism at the scaled web axis (`--sites N`).
//!
//! The generator's contract is *prefix stability*: growing the tail
//! must never perturb the head. The paper's 1,000 sites are the first
//! 1,000 sites of the 10k (and 100k) worlds, byte for byte, which is
//! what keeps `repro_output.md` identical while `bench_scale` pushes
//! the same pipeline to 100k sites. And at the grown scale, the fleet
//! must still be a pure reordering: jobs 1 and jobs 8 capture the
//! exact same flows.

use panoptes_suite::panoptes::fleet::FleetOptions;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

const SEED: u64 = 0x50414e4f;

fn head_config() -> GeneratorConfig {
    GeneratorConfig { popular: 500, sensitive: 500, seed: SEED, tail: 0 }
}

fn tailed_config(tail: u32) -> GeneratorConfig {
    GeneratorConfig { tail, ..head_config() }
}

#[test]
fn ten_k_world_keeps_the_paper_sites_as_a_byte_identical_prefix() {
    let head = World::build(&head_config());
    let tailed = World::build(&tailed_config(9_000));
    assert_eq!(head.sites.len(), 1_000);
    assert_eq!(tailed.sites.len(), 10_000);

    for (i, (h, t)) in head.sites.iter().zip(&tailed.sites).enumerate() {
        assert_eq!(h, t, "site {i} changed when the tail was added");
    }
    // The head sites' addresses are stable too: the tail allocates its
    // IPs after the head, never in between.
    for site in &head.sites {
        assert_eq!(
            head.ip_of(&site.host),
            tailed.ip_of(&site.host),
            "{} moved when the tail was added",
            site.host
        );
    }
    // And the tail is really there, serving distinct domains.
    let tail_site = &tailed.sites[5_000];
    assert!(tail_site.tail, "site 5000 should come from the deep tail");
    assert!(tailed.ip_of(&tail_site.host).is_some());
}

#[test]
fn tail_generation_is_deterministic_across_builds() {
    let a = World::build(&tailed_config(9_000));
    let b = World::build(&tailed_config(9_000));
    assert_eq!(a.sites, b.sites);
    for site in &a.sites {
        assert_eq!(a.ip_of(&site.host), b.ip_of(&site.host), "{}", site.host);
    }
}

#[test]
fn ten_k_crawl_is_byte_identical_across_fleet_widths() {
    use panoptes_suite::analysis::study::{run_crawl_jobs_with, run_crawl_with};
    use panoptes_suite::panoptes::config::CampaignConfig;

    // Two browsers with distinct instrumentation paths keep the debug
    // run affordable while still exercising the fleet merge.
    let profiles: Vec<_> = ["Chrome", "Yandex"]
        .iter()
        .map(|n| panoptes_suite::browsers::registry::profile_by_name(n).expect("known"))
        .collect();
    let world = World::shared(&tailed_config(9_000));
    let config = CampaignConfig { seed: SEED, ..Default::default() };

    let seq = run_crawl_with(&world, &world.sites, &config, &profiles);
    let par =
        run_crawl_jobs_with(&world, &world.sites, &config, &FleetOptions::with_jobs(8), &profiles)
            .expect("fleet crawl");

    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.profile.name, p.profile.name);
        assert_eq!(
            s.store.export_jsonl(),
            p.store.export_jsonl(),
            "{}: capture diverged between jobs 1 and jobs 8 at 10k sites",
            s.profile.name
        );
        assert_eq!(s.visits.len(), 10_000);
    }
}
