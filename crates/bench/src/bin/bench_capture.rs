//! Records the capture-path perf trajectory as `BENCH_capture.json`.
//!
//! Measures, with plain wall-clock timing (no Criterion machinery, so
//! the numbers are trivially reproducible):
//!
//! * **end-to-end capture throughput** — one capture run (world +
//!   install + full request sweep through filter → proxy → taint →
//!   store), pre-refactor replica vs zero-allocation path;
//! * **request path only** — the sweep over a prebuilt rig, isolating
//!   the per-request wins (no world setup in the loop);
//! * **plan cache** — `World::build` per run vs the shared cached plan.
//!
//! Before reporting anything it asserts both paths captured the exact
//! same `(host, url, status)` sequence.
//!
//! Usage: `bench_capture [--quick] [output.json]`
//! (default `BENCH_capture.json`; `--quick` is the CI smoke scale).

use std::time::Instant;

use panoptes_bench::capture::{
    capture_net, flow_signature, generator_config, run_baseline, run_zero_alloc, sweep_old_style,
    sweep_requests, sweep_zero_alloc,
};
use panoptes_bench::mem;
use panoptes_web::World;

#[global_allocator]
static ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// Best-of-`reps` wall-clock seconds of `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut out_path = "BENCH_capture.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => out_path = other.to_string(),
        }
    }
    // Full run: the study's quick scale. --quick: a CI smoke scale.
    let (config, reps) =
        if quick { (generator_config(8, 5), 2) } else { (generator_config(30, 20), 5) };

    // The dispatch workload — request templates over the world's URL
    // sweep — is identical for both paths and prepared once up front.
    let requests = sweep_requests(&World::shared(&config));

    eprintln!("validating: both paths capture the identical study…");
    let baseline_store = run_baseline(&config, &requests);
    let zero_alloc_store = run_zero_alloc(&config, &requests);
    assert_eq!(
        flow_signature(&baseline_store),
        flow_signature(&zero_alloc_store),
        "capture paths diverged"
    );
    let flow_count = baseline_store.len();

    eprintln!("end-to-end: pre-refactor replica…");
    let base_secs = time_best(reps, || {
        run_baseline(&config, &requests);
    });
    eprintln!("end-to-end: zero-allocation path…");
    let fast_secs = time_best(reps, || {
        run_zero_alloc(&config, &requests);
    });

    eprintln!("request path over a prebuilt rig…");
    let world = World::shared(&config);
    let (net_old, _store_old) = capture_net(|net| world.install(net));
    let req_base_secs = time_best(reps, || sweep_old_style(&net_old, &requests));
    let (net_new, _store_new) = capture_net(|net| world.install(net));
    let req_fast_secs = time_best(reps, || sweep_zero_alloc(&net_new, &requests));

    eprintln!("plan cache: cold build vs shared…");
    let build_secs = time_best(reps, || {
        std::hint::black_box(World::build(&config).host_count());
    });
    let shared_secs = time_best(reps, || {
        std::hint::black_box(World::shared(&config).host_count());
    });

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"capture\",\n",
            "  \"scale\": \"{scale}\",\n",
            "  \"requests_per_run\": {requests},\n",
            "  \"end_to_end\": {{\n",
            "    \"baseline_secs\": {base_secs:.6},\n",
            "    \"baseline_requests_per_sec\": {base_rate:.0},\n",
            "    \"zero_alloc_secs\": {fast_secs:.6},\n",
            "    \"zero_alloc_requests_per_sec\": {fast_rate:.0},\n",
            "    \"speedup\": {e2e_speedup:.2}\n",
            "  }},\n",
            "  \"request_path\": {{\n",
            "    \"baseline_secs\": {req_base_secs:.6},\n",
            "    \"baseline_requests_per_sec\": {req_base_rate:.0},\n",
            "    \"zero_alloc_secs\": {req_fast_secs:.6},\n",
            "    \"zero_alloc_requests_per_sec\": {req_fast_rate:.0},\n",
            "    \"speedup\": {req_speedup:.2}\n",
            "  }},\n",
            "  \"plan_cache\": {{\n",
            "    \"world_build_secs\": {build_secs:.6},\n",
            "    \"world_shared_secs\": {shared_secs:.6},\n",
            "    \"speedup\": {cache_speedup:.1}\n",
            "  }},\n",
            "{mem}\n",
            "}}\n",
        ),
        scale = if quick { "smoke" } else { "quick" },
        requests = flow_count,
        base_secs = base_secs,
        base_rate = flow_count as f64 / base_secs,
        fast_secs = fast_secs,
        fast_rate = flow_count as f64 / fast_secs,
        e2e_speedup = base_secs / fast_secs,
        req_base_secs = req_base_secs,
        req_base_rate = flow_count as f64 / req_base_secs,
        req_fast_secs = req_fast_secs,
        req_fast_rate = flow_count as f64 / req_fast_secs,
        req_speedup = req_base_secs / req_fast_secs,
        build_secs = build_secs,
        shared_secs = shared_secs,
        cache_speedup = build_secs / shared_secs,
        mem = mem::report_json(),
    );

    std::fs::write(&out_path, &json).expect("write benchmark record");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
