//! Captured flow records.

use panoptes_http::json::{self, Value};
use panoptes_http::method::Method;
use panoptes_http::netaddr::IpAddr;
use panoptes_http::request::HttpVersion;
use panoptes_http::Atom;

/// How the taint-splitting addon classified a flow (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// Tainted: generated in the web engine by the website.
    Engine,
    /// Untainted: generated natively by the browser app.
    Native,
    /// The app refused our forged certificate (pinning); only connection
    /// metadata was observable.
    PinnedOpaque,
    /// A guard addon refused to forward the request (countermeasure
    /// enforcement); the destination never received it.
    Blocked,
}

impl FlowClass {
    /// Stable label for persistence.
    pub fn as_str(self) -> &'static str {
        match self {
            FlowClass::Engine => "engine",
            FlowClass::Native => "native",
            FlowClass::PinnedOpaque => "pinned",
            FlowClass::Blocked => "blocked",
        }
    }

    /// Parses the label produced by [`Self::as_str`].
    pub fn parse(s: &str) -> Option<FlowClass> {
        Some(match s {
            "engine" => FlowClass::Engine,
            "native" => FlowClass::Native,
            "pinned" => FlowClass::PinnedOpaque,
            "blocked" => FlowClass::Blocked,
            _ => return None,
        })
    }
}

/// One captured HTTP exchange (or opaque connection).
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Sequence number within the capture.
    pub id: u64,
    /// Virtual capture time in microseconds since campaign start.
    pub time_us: u64,
    /// Kernel UID of the sending process.
    pub uid: u32,
    /// Package name of the sending app (interned — shared across the
    /// thousands of flows a campaign captures per app).
    pub package: Atom,
    /// Destination hostname (SNI), interned.
    pub host: Atom,
    /// Destination address.
    pub dst_ip: IpAddr,
    /// Destination port.
    pub dst_port: u16,
    /// Request method.
    pub method: Method,
    /// Full serialized request URL (after taint-header removal).
    pub url: String,
    /// Request headers as `name: value` lines (wire order, post-addon).
    /// Both halves interned — recording a flow's headers is one `Vec`
    /// plus reference-count bumps.
    pub request_headers: Vec<(Atom, Atom)>,
    /// Request body (lossy UTF-8; synthetic bodies are always text).
    pub request_body: String,
    /// Response status code (0 for opaque/pinned flows).
    pub status: u16,
    /// Request wire size in bytes.
    pub bytes_out: u64,
    /// Response wire size in bytes.
    pub bytes_in: u64,
    /// Protocol version.
    pub version: HttpVersion,
    /// The addon chain's classification.
    pub class: FlowClass,
}

impl Flow {
    /// Serializes to a JSON value (one JSONL line in the store).
    ///
    /// JSON numbers are IEEE-754 doubles, so `id`/`time_us` round-trip
    /// exactly only below 2^53 — far beyond any real capture (ids are
    /// per-campaign sequence numbers; 2^53 µs is ~285 years).
    pub fn to_json(&self) -> Value {
        debug_assert!(self.id < (1 << 53) && self.time_us < (1 << 53));
        Value::object(vec![
            ("id", Value::from(self.id)),
            ("time_us", Value::from(self.time_us)),
            ("uid", Value::from(self.uid)),
            ("package", Value::str(&self.package)),
            ("host", Value::str(&self.host)),
            ("dst_ip", Value::str(self.dst_ip.to_string())),
            ("dst_port", Value::from(self.dst_port as u32)),
            ("method", Value::str(self.method.as_str())),
            ("url", Value::str(&self.url)),
            (
                "request_headers",
                Value::Array(
                    self.request_headers
                        .iter()
                        .map(|(n, v)| Value::Array(vec![Value::str(n), Value::str(v)]))
                        .collect(),
                ),
            ),
            ("request_body", Value::str(&self.request_body)),
            ("status", Value::from(self.status as u32)),
            ("bytes_out", Value::from(self.bytes_out)),
            ("bytes_in", Value::from(self.bytes_in)),
            ("version", Value::str(self.version.as_str())),
            ("class", Value::str(self.class.as_str())),
        ])
    }

    /// Parses a JSON value produced by [`Self::to_json`].
    pub fn from_json(v: &Value) -> Option<Flow> {
        let headers = v
            .get("request_headers")?
            .as_array()?
            .iter()
            .map(|pair| {
                let pair = pair.as_array()?;
                Some((
                    Atom::intern(pair.first()?.as_str()?),
                    Atom::intern(pair.get(1)?.as_str()?),
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Flow {
            id: v.get("id")?.as_i64()? as u64,
            time_us: v.get("time_us")?.as_i64()? as u64,
            uid: v.get("uid")?.as_i64()? as u32,
            package: Atom::intern(v.get("package")?.as_str()?),
            host: Atom::intern(v.get("host")?.as_str()?),
            dst_ip: IpAddr::parse(v.get("dst_ip")?.as_str()?)?,
            dst_port: v.get("dst_port")?.as_i64()? as u16,
            method: Method::parse(v.get("method")?.as_str()?)?,
            url: v.get("url")?.as_str()?.to_string(),
            request_headers: headers,
            request_body: v.get("request_body")?.as_str()?.to_string(),
            status: v.get("status")?.as_i64()? as u16,
            bytes_out: v.get("bytes_out")?.as_i64()? as u64,
            bytes_in: v.get("bytes_in")?.as_i64()? as u64,
            version: HttpVersion::parse(v.get("version")?.as_str()?)?,
            class: FlowClass::parse(v.get("class")?.as_str()?)?,
        })
    }

    /// One compact JSONL line.
    pub fn to_jsonl(&self) -> String {
        json::to_string(&self.to_json())
    }

    /// Upper-bound estimate of this flow's [`Self::to_jsonl`] length
    /// (including a trailing newline), used to pre-reserve export
    /// buffers. Must never undershoot: string fields budget an extra
    /// eighth for escape expansion, and the fixed part covers key
    /// names, punctuation and the widest numeric renderings.
    pub fn jsonl_len_estimate(&self) -> usize {
        fn escaped(s: &str) -> usize {
            // JSON escaping grows a string by at most 6x ("\u00XX"),
            // but synthetic captures are ASCII-dominated; len/8 + 2
            // slack covers the realistic quote/backslash density while
            // the +2 absorbs tiny strings.
            s.len() + s.len() / 8 + 2
        }
        let strings = escaped(&self.package)
            + escaped(&self.host)
            + escaped(&self.url)
            + escaped(&self.request_body)
            + self
                .request_headers
                .iter()
                .map(|(n, v)| escaped(n) + escaped(v) + 8)
                .sum::<usize>();
        // Keys + quotes + commas + braces + six u64/u32 fields at up to
        // 20 digits each + a dotted-quad address + method/version/class
        // labels + newline.
        340 + strings
    }

    /// Registrable domain of the destination.
    pub fn registrable_domain(&self) -> String {
        panoptes_http::url::registrable_domain(&self.host)
    }

    /// A header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.request_headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Flow {
        Flow {
            id: 7,
            time_us: 1_500_000,
            uid: 10050,
            package: "ru.yandex.browser".into(),
            host: "sba.yandex.net".into(),
            dst_ip: IpAddr::new(77, 88, 0, 11),
            dst_port: 443,
            method: Method::Post,
            url: "https://sba.yandex.net/report?url=aHR0cHM6Ly9leGFtcGxlLmNvbS8".into(),
            request_headers: vec![("user-agent".into(), "YaBrowser".into())],
            request_body: "{\"t\":1}".into(),
            status: 204,
            bytes_out: 420,
            bytes_in: 90,
            version: HttpVersion::H2,
            class: FlowClass::Native,
        }
    }

    #[test]
    fn json_roundtrip() {
        let flow = sample();
        let line = flow.to_jsonl();
        let parsed = Flow::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, flow);
    }

    #[test]
    fn class_labels_roundtrip() {
        for c in [
            FlowClass::Engine,
            FlowClass::Native,
            FlowClass::PinnedOpaque,
            FlowClass::Blocked,
        ] {
            assert_eq!(FlowClass::parse(c.as_str()), Some(c));
        }
        assert_eq!(FlowClass::parse("other"), None);
    }

    #[test]
    fn helpers() {
        let flow = sample();
        assert_eq!(flow.registrable_domain(), "yandex.net");
        assert_eq!(flow.header("User-Agent"), Some("YaBrowser"));
        assert_eq!(flow.header("cookie"), None);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let mut v = sample().to_json();
        if let Value::Object(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "host");
        }
        assert!(Flow::from_json(&v).is_none());
    }
}
