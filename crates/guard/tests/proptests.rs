//! Property-based tests for guard policy semantics.

use proptest::prelude::*;

use panoptes_guard::policy::{is_url_shaped, REDACTED};
use panoptes_guard::GuardPolicy;

proptest! {
    #[test]
    fn is_url_shaped_never_panics(value in "\\PC{0,120}") {
        let _ = is_url_shaped(&value);
    }

    #[test]
    fn every_https_url_is_url_shaped(
        host in "[a-z]{1,10}\\.(com|org|net)",
        path in "[a-z0-9/]{0,20}",
    ) {
        let url = format!("https://{host}/{path}");
        prop_assert!(is_url_shaped(&url));
        // And in both common encodings.
        prop_assert!(is_url_shaped(&panoptes_http::codec::percent_encode_component(&url)));
        prop_assert!(is_url_shaped(&panoptes_http::codec::b64_encode_url(url.as_bytes())));
    }

    #[test]
    fn redaction_is_idempotent(value in "\\PC{0,60}", pii in "[a-z0-9]{4,12}") {
        let policy = GuardPolicy::strict(&[], std::slice::from_ref(&pii));
        if let Some(first) = policy.redact_value(&value) {
            prop_assert_eq!(first.as_str(), REDACTED);
            // Redacting the redaction changes nothing further.
            prop_assert_eq!(policy.redact_value(&first), None);
        }
    }

    #[test]
    fn exact_pii_values_always_redact(pii in "[A-Za-z0-9/x.]{1,24}") {
        let policy = GuardPolicy::strict(&[], std::slice::from_ref(&pii));
        let redacted = policy.redact_value(&pii);
        prop_assert_eq!(redacted.as_deref(), Some(REDACTED));
    }

    #[test]
    fn blocking_is_monotone_in_endpoints(
        hosts in proptest::collection::vec("[a-z]{1,8}\\.[a-z]{2,3}", 1..8),
        probe_idx in 0usize..8,
    ) {
        let mut policy = GuardPolicy::none();
        let probe = hosts[probe_idx % hosts.len()].clone();
        prop_assert!(!policy.should_block(&probe));
        for h in &hosts {
            policy.block_endpoint(h);
        }
        prop_assert!(policy.should_block(&probe));
    }
}
