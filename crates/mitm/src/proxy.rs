//! The transparent MITM proxy.
//!
//! Implements [`HttpHandler`] so the packet filter can divert browser
//! flows to it (§2.2). For each diverted request it:
//!
//! 1. receives the plaintext (the TLS interception already succeeded at
//!    the transport layer, or we got a [`Addon::on_tls_rejected`]
//!    callback for pinned flows),
//! 2. runs the addon chain — the taint addon classifies and strips,
//! 3. forwards the (cleaned) request to the original destination,
//! 4. records the complete exchange in the [`FlowStore`].
//!
//! Upstream failures surface as `502 Bad Gateway`, like mitmproxy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use panoptes_http::method::Method;
use panoptes_http::{Request, Response, StatusCode};
use panoptes_simnet::net::{FlowContext, HttpHandler, NetError, Network};
use panoptes_simnet::tls::{CaId, CertificateAuthority};

use crate::addon::{AddonChain, InterceptedRequest, Verdict};
use crate::flow::{Flow, FlowClass};
use crate::store::FlowStore;

/// The transparent proxy: addon chain + flow store + forging CA.
pub struct TransparentProxy {
    addons: AddonChain,
    store: Arc<FlowStore>,
    next_id: AtomicU64,
}

impl TransparentProxy {
    /// Builds a proxy writing to `store`.
    pub fn new(store: Arc<FlowStore>) -> TransparentProxy {
        TransparentProxy { addons: AddonChain::new(), store, next_id: AtomicU64::new(1) }
    }

    /// Installs an addon at the end of the chain.
    pub fn install_addon(&mut self, addon: Box<dyn crate::addon::Addon>) {
        self.addons.push(addon);
    }

    /// The CA identity/authority this proxy forges leaves with — the one
    /// whose root Panoptes installs on the device.
    pub fn certificate_authority() -> CertificateAuthority {
        CertificateAuthority::new(CaId::mitm())
    }

    /// The capture database.
    pub fn store(&self) -> &Arc<FlowStore> {
        &self.store
    }

    /// Snapshots the request half of a flow record. The response half
    /// (`status`, `bytes_in`) is filled in once the exchange completes.
    fn flow_of(&self, ctx: &FlowContext, req: &Request, class: FlowClass) -> Flow {
        panoptes_obs::count!("mitm.flows.built", Deterministic);
        match class {
            FlowClass::Blocked => {
                panoptes_obs::count!("mitm.flows.blocked", Deterministic)
            }
            FlowClass::PinnedOpaque => {
                panoptes_obs::count!("mitm.flows.pinned_opaque", Deterministic)
            }
            _ => {}
        }
        Flow {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            time_us: ctx.time.0,
            uid: ctx.uid,
            // Atoms carried through the FlowContext: cloning is a
            // reference-count bump, not a string copy.
            package: ctx.app_package.clone(),
            host: ctx.sni.clone(),
            dst_ip: ctx.dst_ip,
            dst_port: ctx.dst_port,
            method: req.method,
            url: req.url.to_string_full(),
            request_headers: req
                .headers
                .iter_interned()
                .map(|(n, v)| (n.clone(), v.clone()))
                .collect(),
            request_body: String::from_utf8_lossy(&req.body).into_owned(),
            status: 0,
            bytes_out: req.wire_size(),
            bytes_in: 0,
            version: ctx.version,
            class,
        }
    }

    fn record(
        &self,
        ctx: &FlowContext,
        req: &Request,
        class: FlowClass,
        status: u16,
        bytes_in: u64,
    ) {
        let mut flow = self.flow_of(ctx, req, class);
        flow.status = status;
        flow.bytes_in = bytes_in;
        self.store.push(flow);
    }
}

impl HttpHandler for TransparentProxy {
    fn handle(
        &self,
        net: &Network,
        ctx: &FlowContext,
        mut req: Request,
    ) -> Result<Response, NetError> {
        let mut class = FlowClass::Native;
        let mut verdict = Verdict::Forward;
        self.addons.run_request(&mut InterceptedRequest {
            ctx,
            request: &mut req,
            class: &mut class,
            verdict: &mut verdict,
        });

        if verdict == Verdict::Block {
            // Enforcement: answer locally, never contact the destination.
            let denied = Response::status(StatusCode::FORBIDDEN)
                .with_header("x-guard", "blocked");
            self.record(ctx, &req, FlowClass::Blocked, StatusCode::FORBIDDEN.0, denied.wire_size());
            return Ok(denied);
        }

        // Snapshot the flow record now, then hand `req` to the origin by
        // value — the forward no longer deep-clones the request.
        let mut flow = self.flow_of(ctx, &req, class);
        match net.origin_fetch(ctx, req) {
            Ok(mut response) => {
                self.addons.run_response(ctx, &mut response);
                flow.status = response.status.0;
                flow.bytes_in = response.wire_size();
                self.store.push(flow);
                Ok(response)
            }
            Err(err) => {
                let gateway = Response::status(StatusCode::BAD_GATEWAY)
                    .with_header("x-mitm-error", &err.to_string());
                flow.status = StatusCode::BAD_GATEWAY.0;
                flow.bytes_in = gateway.wire_size();
                self.store.push(flow);
                Ok(gateway)
            }
        }
    }

    fn on_tls_rejected(&self, _net: &Network, ctx: &FlowContext) {
        self.addons.run_tls_rejected(ctx);
        // Only connection metadata is observable for pinned flows.
        let placeholder = Request {
            method: Method::Connect,
            url: panoptes_http::url::Url::https(&ctx.sni),
            headers: panoptes_http::Headers::new(),
            body: bytes::Bytes::new(),
            version: ctx.version,
        };
        self.record(ctx, &placeholder, FlowClass::PinnedOpaque, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::{TaintAddon, TAINT_HEADER};
    use panoptes_http::netaddr::IpAddr;
    use panoptes_http::url::Url;
    use panoptes_simnet::net::ClientCtx;
    use panoptes_simnet::tls::{PinPolicy, TrustStore};
    use panoptes_simnet::SimInstant;

    /// Upstream origin that records whether it saw a taint header.
    struct Origin;
    impl HttpHandler for Origin {
        fn handle(
            &self,
            _net: &Network,
            _ctx: &FlowContext,
            req: Request,
        ) -> Result<Response, NetError> {
            if req.headers.contains(TAINT_HEADER) {
                // The taint must never reach the origin.
                return Ok(Response::status(StatusCode::BAD_REQUEST));
            }
            Ok(Response::sized(500))
        }
    }

    fn testbed() -> (Network, Arc<FlowStore>) {
        let net = Network::new(
            CertificateAuthority::new(CaId::public_web_pki()),
            IpAddr::new(192, 168, 1, 50),
        );
        net.register_host("site.com", IpAddr::new(23, 20, 0, 99));
        net.register_endpoint(IpAddr::new(23, 20, 0, 99), Arc::new(Origin));

        let store = Arc::new(FlowStore::new());
        let mut proxy = TransparentProxy::new(store.clone());
        proxy.install_addon(Box::new(TaintAddon::new("tok")));
        net.register_proxy(8080, Arc::new(proxy), TransparentProxy::certificate_authority());
        net.with_filter(|f| f.install_panoptes_rules(10001, 8080));
        (net, store)
    }

    fn client() -> ClientCtx {
        let mut trust = TrustStore::system();
        trust.install(CaId::mitm());
        ClientCtx {
            uid: 10001,
            app_package: "com.browser".into(),
            trust,
            pins: PinPolicy::none(),
            time: SimInstant(5_000_000),
        }
    }

    #[test]
    fn tainted_flow_recorded_as_engine_and_taint_stripped_upstream() {
        let (net, store) = testbed();
        let req = Request::get(Url::parse("https://site.com/page").unwrap())
            .with_header(TAINT_HEADER, "tok");
        let (resp, _) = net.send_http(&client(), req).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "origin must not see the taint");
        let snap = store.snapshot();
        let flows = snap.all();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].class, FlowClass::Engine);
        assert_eq!(flows[0].host, "site.com");
        assert_eq!(flows[0].time_us, 5_000_000);
        assert!(flows[0].request_headers.iter().all(|(n, _)| n != TAINT_HEADER));
    }

    #[test]
    fn untainted_flow_recorded_as_native() {
        let (net, store) = testbed();
        let req = Request::get(Url::parse("https://site.com/api").unwrap());
        net.send_http(&client(), req).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.native().len(), 1);
        assert_eq!(snap.engine().len(), 0);
    }

    #[test]
    fn upstream_failure_becomes_502_and_is_recorded() {
        let (net, store) = testbed();
        net.register_host("dead.com", IpAddr::new(23, 20, 0, 50)); // no endpoint
        let req = Request::get(Url::parse("https://dead.com/").unwrap());
        let (resp, _) = net.send_http(&client(), req).unwrap();
        assert_eq!(resp.status, StatusCode::BAD_GATEWAY);
        let snap = store.snapshot();
        let flows = snap.all();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].status, 502);
    }

    #[test]
    fn pinned_flow_recorded_as_opaque() {
        let (net, store) = testbed();
        let mut c = client();
        c.pins = PinPolicy::pin(&["site.com"]);
        let req = Request::get(Url::parse("https://site.com/secret").unwrap());
        assert_eq!(net.send_http(&c, req).unwrap_err(), NetError::PinnedBypass);
        let snap = store.snapshot();
        let flows = snap.all();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].class, FlowClass::PinnedOpaque);
        assert_eq!(flows[0].status, 0);
        // The URL path is NOT observable on pinned flows.
        assert_eq!(flows[0].url, "https://site.com/");
    }

    #[test]
    fn flow_ids_are_sequential() {
        let (net, store) = testbed();
        for i in 0..3 {
            let req =
                Request::get(Url::parse(&format!("https://site.com/{i}")).unwrap());
            net.send_http(&client(), req).unwrap();
        }
        let ids: Vec<u64> = store.snapshot().iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
