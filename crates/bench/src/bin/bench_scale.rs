//! Records the site-axis scale trajectory as `BENCH_scale.json`.
//!
//! This is the Tranco-100k raw-speed record: a cold 100k-site world
//! build plus a single-browser crawl over all 100k sites, measured
//! against a fixed peak-memory budget, and the compiled filterlist
//! automaton raced against the PR-2 indexed engine over a 100k-URL
//! workload (the automaton must clear 5× indexed).
//!
//! Usage: `bench_scale [--validate] [--sites N] [output.json]`
//!
//! * default: `--sites 100000`, writes `BENCH_scale.json`;
//! * `--validate`: CI mode — a 5k-site world and a 20k-URL filterlist
//!   workload, same schema and same budget assertions, small enough for
//!   every pipeline run.

use std::time::Instant;

use panoptes_analysis::study::run_crawl_with;
use panoptes_bench::experiments::Scale;
use panoptes_bench::{mem, perf};
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

#[global_allocator]
static ALLOC: mem::CountingAlloc = mem::CountingAlloc;

/// Fixed peak-RSS budget for the full 100k-site run. Documented in
/// DESIGN.md §10: the 100k world (sites + routes + interned hosts) plus
/// one browser's sealed 100k-site capture must fit in 1.5 GiB —
/// roughly 2.5× the measured ~570 MiB footprint, so regressions trip
/// the gate long before the bench machine feels it.
const PEAK_RSS_BUDGET_MIB: u64 = 1536;

/// Required automaton-vs-indexed speedup at full scale.
const REQUIRED_SPEEDUP: f64 = 5.0;

fn main() {
    let mut sites: u32 = 100_000;
    let mut validate = false;
    let mut out_path = String::from("BENCH_scale.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--validate" => validate = true,
            "--sites" => {
                sites = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sites takes a positive integer");
            }
            other => out_path = other.to_string(),
        }
    }
    if validate {
        sites = sites.min(5_000);
    }
    let urls = if validate { 20_000 } else { 100_000 };

    let scale = Scale::paper().with_sites(sites);
    let total_sites = scale.popular + scale.sensitive + scale.tail;

    // World build: cold (`World::build`, not the shared plan cache), so
    // the number is the real cost of planning the 100k-site web.
    eprintln!("building {total_sites}-site world…");
    let build_start = Instant::now();
    let world = World::build(&GeneratorConfig {
        seed: scale.seed,
        popular: scale.popular,
        sensitive: scale.sensitive,
        tail: scale.tail,
    });
    let build_secs = build_start.elapsed().as_secs_f64();
    assert_eq!(world.sites.len(), total_sites as usize);

    // Crawl: one browser over every site — the per-browser unit of the
    // full study, at 100× the paper's web.
    let profiles = panoptes_bench::experiments::population_for(&scale, 1);
    let browser = profiles[0].name.clone();
    eprintln!("crawling {total_sites} sites as {browser}…");
    let config = scale.config();
    let crawl_start = Instant::now();
    let results = run_crawl_with(&world, &world.sites, &config, &profiles);
    let crawl_secs = crawl_start.elapsed().as_secs_f64();
    let flows = results[0].store.len() as u64;
    assert!(flows >= total_sites as u64, "crawl captured fewer flows than sites");

    // Filterlist: automaton (should_block) vs the PR-2 indexed engine
    // over the deterministic mixed hit/miss workload.
    eprintln!("filterlist: {urls} URLs…");
    let list = perf::synthetic_filterlist(1200, 300);
    let workload = perf::filterlist_workload(urls);
    let time_best = |f: &mut dyn FnMut() -> usize| -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut sink = 0usize;
        for _ in 0..5 {
            let start = Instant::now();
            sink = f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        (best, sink)
    };
    let (indexed_secs, indexed_hits) = time_best(&mut || {
        workload.iter().filter(|(h, u)| list.should_block_indexed(h, u)).count()
    });
    let (auto_secs, auto_hits) =
        time_best(&mut || workload.iter().filter(|(h, u)| list.should_block(h, u)).count());
    assert_eq!(indexed_hits, auto_hits, "filterlist engines diverged");
    let speedup = indexed_secs / auto_secs;

    let peak_rss_kib = mem::peak_rss_kib().unwrap_or(0);
    let within_budget = peak_rss_kib <= PEAK_RSS_BUDGET_MIB * 1024;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"sites\": {sites},\n",
            "  \"budget\": {{\n",
            "    \"peak_rss_budget_mib\": {budget_mib},\n",
            "    \"within_budget\": {within_budget}\n",
            "  }},\n",
            "  \"world_build\": {{\n",
            "    \"secs\": {build_secs:.6},\n",
            "    \"sites_per_sec\": {build_rate:.0},\n",
            "    \"hosts\": {hosts}\n",
            "  }},\n",
            "  \"crawl\": {{\n",
            "    \"browser\": \"{browser}\",\n",
            "    \"secs\": {crawl_secs:.6},\n",
            "    \"flows\": {flows},\n",
            "    \"flows_per_sec\": {flow_rate:.0},\n",
            "    \"sites_per_sec\": {site_rate:.0}\n",
            "  }},\n",
            "  \"filterlist\": {{\n",
            "    \"rules\": {rules},\n",
            "    \"urls\": {urls},\n",
            "    \"hits\": {hits},\n",
            "    \"indexed_secs\": {indexed_secs:.6},\n",
            "    \"indexed_matches_per_sec\": {indexed_rate:.0},\n",
            "    \"automaton_secs\": {auto_secs:.6},\n",
            "    \"automaton_matches_per_sec\": {auto_rate:.0},\n",
            "    \"speedup_vs_indexed\": {speedup:.2}\n",
            "  }},\n",
            "{mem}\n",
            "}}\n",
        ),
        mode = if validate { "validate" } else { "full" },
        sites = total_sites,
        budget_mib = PEAK_RSS_BUDGET_MIB,
        within_budget = within_budget,
        build_secs = build_secs,
        build_rate = total_sites as f64 / build_secs,
        hosts = world.host_count(),
        browser = browser,
        crawl_secs = crawl_secs,
        flows = flows,
        flow_rate = flows as f64 / crawl_secs,
        site_rate = total_sites as f64 / crawl_secs,
        rules = list.len(),
        urls = workload.len(),
        hits = auto_hits,
        indexed_secs = indexed_secs,
        indexed_rate = workload.len() as f64 / indexed_secs,
        auto_secs = auto_secs,
        auto_rate = workload.len() as f64 / auto_secs,
        speedup = speedup,
        mem = mem::report_json(),
    );

    std::fs::write(&out_path, &json).expect("write benchmark record");
    print!("{json}");
    eprintln!("wrote {out_path}");

    assert!(
        within_budget,
        "peak RSS {peak_rss_kib} KiB exceeds the {PEAK_RSS_BUDGET_MIB} MiB budget"
    );
    // The ≥5× bar is the full-scale acceptance number; the validate run
    // still requires a clear win so CI catches automaton regressions.
    let bar = if validate { 2.0 } else { REQUIRED_SPEEDUP };
    assert!(
        speedup >= bar,
        "automaton speedup {speedup:.2}× below the required {bar:.0}× over indexed"
    );
}
