//! Quickstart: crawl one browser through Panoptes and see the split
//! capture plus the headline finding.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use panoptes_suite::analysis::history::detect_history_leaks;
use panoptes_suite::analysis::volume::volume_row;
use panoptes_suite::browsers::registry::profile_by_name;
use panoptes_suite::panoptes::campaign::run_crawl;
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

fn main() {
    // 1. Build a (small) simulated Web: 25 popular + 15 sensitive sites.
    let world = World::build(&GeneratorConfig { popular: 25, sensitive: 15, ..Default::default() });
    println!("world: {} sites, {} hosts", world.sites.len(), world.host_count());

    // 2. Crawl Yandex through the full Panoptes pipeline: factory reset,
    //    launch, per-UID traffic diversion, taint splitting at the MITM
    //    proxy, the 60s+5s visit rule.
    let profile = profile_by_name("Yandex").expect("in Table 1");
    let result = run_crawl(&world, &profile, &world.sites, &CampaignConfig::default());

    // 3. The split capture (Figure 2's raw material).
    let row = volume_row(&result);
    println!(
        "\n{} {}: {} engine requests, {} native requests (ratio {:.2})",
        profile.name, profile.version, row.engine_requests, row.native_requests, row.request_ratio
    );

    // 4. The headline finding: the browser reports every page you visit.
    println!("\nhistory leaks detected:");
    for leak in detect_history_leaks(&result) {
        println!(
            "  {} -> {}  [{} | {:?} | {} visits{}]",
            leak.browser,
            leak.destination,
            leak.granularity.as_str(),
            leak.encoding,
            leak.visits_leaked,
            leak.persistent_id
                .as_deref()
                .map(|id| format!(" | persistent id {}…", &id[..8]))
                .unwrap_or_default(),
        );
    }

    // 5. Show one raw phone-home flow, exactly as captured on the wire.
    let flow = result
        .store
        .native_flows()
        .into_iter()
        .find(|f| f.host == "sba.yandex.net")
        .expect("yandex phones home every visit");
    println!("\nexample phone-home flow:\n  GET {}", flow.url);
}
