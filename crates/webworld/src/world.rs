//! World assembly: generate the site population, allocate every host an
//! address from its country's block, and install hosts + servers on a
//! [`Network`].

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use panoptes_http::netaddr::{Cidr, IpAddr};
use panoptes_simnet::{Network, RouteTable};

use crate::generator::{generate, GeneratorConfig};
use crate::origin::{Directory, OriginServer};
use crate::site::SiteSpec;
use crate::thirdparty::{AD_NETWORKS, CDNS, TRACKERS};
use crate::vendors::all_endpoints;

/// Countries generic web content is hosted in (the crawl runs from an
/// EU vantage point; most of the web it reaches is EU/US-hosted).
const SITE_HOSTING: &[&str] = &["US", "DE", "NL", "IE", "GR"];

/// The assembled simulated Web.
pub struct World {
    /// The crawl population in rank order (popular then sensitive).
    pub sites: Vec<SiteSpec>,
    host_ips: BTreeMap<String, IpAddr>,
    /// Prebuilt host/endpoint routing, shared by every network this
    /// world is installed on.
    routes: Arc<RouteTable>,
}

/// Site-plan cache: one built [`World`] per (seed, popular, sensitive,
/// tail) generator configuration, shared immutably by every browser
/// session and fleet worker of a study. Generation is deterministic in
/// the config, so sharing is transparent; the handful of configurations
/// a process ever uses makes this a bounded cache, not a leak.
type PlanCache = Mutex<HashMap<(u64, u32, u32, u32), Arc<World>>>;

fn plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl World {
    /// Builds the world for the given generator configuration.
    pub fn build(config: &GeneratorConfig) -> World {
        let sites = generate(config);
        let directory = Directory::from_sites(&sites);
        let origin = Arc::new(OriginServer::new(directory));

        let mut allocator = Allocator::new();
        let mut host_ips = BTreeMap::new();

        // Vendor endpoints pin their country (that is the §3.4 finding).
        for ep in all_endpoints() {
            host_ips.insert(ep.host.to_string(), allocator.allocate(ep.country)); // clone-ok: build-time
        }
        // Ad networks / trackers / shared CDNs are US-hosted.
        for host in AD_NETWORKS.iter().chain(TRACKERS).chain(CDNS) {
            host_ips.entry(host.to_string()).or_insert_with(|| allocator.allocate("US"));
        }
        // Site hosts hash across the generic hosting countries.
        for site in &sites {
            let country = SITE_HOSTING[(fnv1a(&site.domain) % SITE_HOSTING.len() as u64) as usize];
            for host in site_hosts(site) {
                host_ips.entry(host).or_insert_with(|| allocator.allocate(country));
            }
        }

        let mut routes = RouteTable::new();
        for (host, ip) in &host_ips {
            routes.add_host(host, *ip);
            routes.add_endpoint(*ip, origin.clone());
        }

        World { sites, host_ips, routes: Arc::new(routes) }
    }

    /// The cached, shared world for `config`: built on first request,
    /// then returned as the same `Arc` for every later caller (browser
    /// sessions, fleet workers, benches). Use this instead of
    /// [`World::build`] whenever the world is read-only.
    pub fn shared(config: &GeneratorConfig) -> Arc<World> {
        let key = (config.seed, config.popular, config.sensitive, config.tail);
        let mut cache = plan_cache().lock().expect("plan cache poisoned");
        cache.entry(key).or_insert_with(|| Arc::new(World::build(config))).clone()
    }

    /// Registers every host and server endpoint on `net` — a single
    /// `Arc` install of the prebuilt route table, not O(hosts) map
    /// inserts.
    pub fn install(&self, net: &Network) {
        net.install_routes(self.routes.clone());
    }

    /// Address of `host`, if it exists in this world.
    pub fn ip_of(&self, host: &str) -> Option<IpAddr> {
        self.host_ips.get(host).copied()
    }

    /// Number of distinct hosts in the world.
    pub fn host_count(&self) -> usize {
        self.host_ips.len()
    }

    /// The site serving `domain`, if any.
    pub fn site_by_domain(&self, domain: &str) -> Option<&SiteSpec> {
        self.sites.iter().find(|s| s.domain == domain)
    }

    /// Iterates `(host, ip)` pairs.
    pub fn hosts(&self) -> impl Iterator<Item = (&str, IpAddr)> {
        self.host_ips.iter().map(|(h, ip)| (h.as_str(), *ip))
    }
}

/// Every hostname a site's page load can touch that belongs to the site
/// itself.
fn site_hosts(site: &SiteSpec) -> Vec<String> {
    let mut hosts = vec![site.host.clone()];
    if site.apex_redirect {
        hosts.push(site.domain.clone());
    }
    for r in &site.page.resources {
        if r.host.ends_with(&site.domain) {
            hosts.push(r.host.clone());
        }
    }
    hosts.sort_unstable();
    hosts.dedup();
    hosts
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Allocates sequential host addresses within each country's plan block.
struct Allocator {
    counters: HashMap<&'static str, u32>,
    blocks: HashMap<&'static str, Cidr>,
}

impl Allocator {
    fn new() -> Allocator {
        let mut blocks = HashMap::new();
        for (block, country) in panoptes_geo::db::ADDRESS_PLAN {
            // First plan block per country wins (one hosting range each).
            blocks.entry(*country).or_insert_with(|| Cidr::parse(block).expect("plan"));
        }
        Allocator { counters: HashMap::new(), blocks }
    }

    fn allocate(&mut self, country: &'static str) -> IpAddr {
        let block = *self
            .blocks
            .get(country)
            .unwrap_or_else(|| panic!("no plan block for {country}"));
        let counter = self.counters.entry(country).or_insert(10);
        *counter += 1;
        block.host(*counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_geo::{Country, GeoDb};

    fn small_world() -> World {
        World::build(&GeneratorConfig { popular: 10, sensitive: 8, ..Default::default() })
    }

    #[test]
    fn vendor_hosts_land_in_their_country() {
        let world = small_world();
        let geo = GeoDb::standard();
        let cases = [
            ("sba.yandex.net", "RU"),
            ("wup.browser.qq.com", "CN"),
            ("collect.ucweb.com", "CA"),
            ("sitecheck2.opera.com", "NO"),
            ("app.adjust.com", "DE"),
            ("graph.facebook.com", "US"),
        ];
        for (host, country) in cases {
            let ip = world.ip_of(host).unwrap_or_else(|| panic!("{host} missing"));
            assert_eq!(geo.country_of(ip), Some(Country::new(country)), "{host}");
        }
    }

    #[test]
    fn site_hosts_resolve_and_are_distinct() {
        let world = small_world();
        let site = &world.sites[0];
        let ip = world.ip_of(&site.host).expect("landing host allocated");
        let geo = GeoDb::standard();
        assert!(geo.country_of(ip).is_some());
        // Distinct hosts get distinct addresses.
        let mut ips: Vec<IpAddr> = world.hosts().map(|(_, ip)| ip).collect();
        let n = ips.len();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), n, "address collision");
    }

    #[test]
    fn install_registers_everything() {
        use panoptes_simnet::tls::{CaId, CertificateAuthority};
        let world = small_world();
        let net = Network::new(
            CertificateAuthority::new(CaId::public_web_pki()),
            IpAddr::new(192, 168, 1, 50),
        );
        world.install(&net);
        for (host, ip) in world.hosts() {
            assert_eq!(net.resolve_silent(host), Some(ip));
        }
    }

    #[test]
    fn shared_worlds_are_cached_per_config() {
        let config = GeneratorConfig { popular: 7, sensitive: 3, ..Default::default() };
        let a = World::shared(&config);
        let b = World::shared(&config);
        assert!(Arc::ptr_eq(&a, &b), "same config reuses the cached world");
        let other = World::shared(&GeneratorConfig { popular: 7, sensitive: 4, ..Default::default() });
        assert!(!Arc::ptr_eq(&a, &other), "different config builds a different world");
        // The cached world equals a cold build.
        let cold = World::build(&config);
        assert_eq!(a.sites, cold.sites);
        assert_eq!(a.hosts().collect::<Vec<_>>(), cold.hosts().collect::<Vec<_>>());
    }

    #[test]
    fn world_is_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.sites, b.sites);
        let a_ips: Vec<_> = a.hosts().collect();
        let b_ips: Vec<_> = b.hosts().collect();
        assert_eq!(a_ips, b_ips);
    }

    #[test]
    fn cdn_subdomains_belong_to_site() {
        let world = small_world();
        for site in &world.sites {
            for r in &site.page.resources {
                if r.host.ends_with(&site.domain) {
                    assert!(world.ip_of(&r.host).is_some(), "{} unallocated", r.host);
                }
            }
        }
    }
}
