//! The fused, sharded, overlapped study engine.
//!
//! The legacy analysis path walks each capture once **per detector** —
//! ~10 independent passes over the same snapshot. This module turns the
//! whole report into a map-reduce over the capture instead:
//!
//! * **fused** — every detector exposes a mergeable `Partial`
//!   accumulator (`observe`/`merge`/`finish`); [`CrawlPartials`]
//!   bundles them so one iteration over the snapshot feeds all
//!   detectors at once ([`analyze_crawl`]);
//! * **sharded** — the fused pass splits the capture into contiguous
//!   [`shard_ranges`](fleet::shard_ranges) executed across the fleet
//!   worker pool, then merges the per-shard partials **in shard order**
//!   ([`analyze_crawl_sharded`]). Because every partial's merge is
//!   either order-insensitive (sums, set unions) or explicitly ordered
//!   (first-occurrence fields), the merged report is byte-identical to
//!   the sequential one for any shard count;
//! * **overlapped** — [`run_full_study_analyzed`] removes the
//!   capture→analysis barrier: fleet units hand their sealed captures
//!   to analysis workers over a bounded channel the moment each unit
//!   finishes, so detectors run while other browsers are still
//!   crawling. The per-unit analyses land in submission-order slots, so
//!   the global aggregation is byte-identical to the sequential study.
//!
//! `tests/study_engine_determinism.rs` (workspace root) enforces the
//! byte-identity across all three paths end-to-end.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;

use panoptes::campaign::CampaignResult;
use panoptes::config::CampaignConfig;
use panoptes::fleet::{
    self, FleetError, FleetFailure, FleetOptions, FleetUnit, StudyOutput, UnitOutput,
};
use panoptes::idle::IdleResult;
use panoptes_blocklist::data::steven_black_excerpt;
use panoptes_blocklist::HostsList;
use panoptes_browsers::registry::all_profiles;
use panoptes_device::DeviceProperties;
use panoptes_geo::GeoDb;
use panoptes_http::url::Url;
use panoptes_mitm::FlowClass;
use panoptes_simnet::clock::SimDuration;
use panoptes_web::site::SiteSpec;
use panoptes_web::World;

use crate::addomains::{AdDomainPartial, AdDomainRow};
use crate::cost::{CostPartial, CostRow, EnergyModel};
use crate::dns::{DnsPartial, DnsRow};
use crate::facts::capture_facts;
use crate::history::{summarize_from, BrowserLeakSummary, HistoryLeak, HistoryPartial};
use crate::identifiers::{IdentifierPartial, IdentifierSighting};
use crate::idle::{DestinationShare, IdlePartial, IdleTimeline};
use crate::pii::{PiiMatcher, PiiPartial, PiiRow};
use crate::sensitive::{SensitivePartial, SensitiveRow};
use crate::transfers::{TransferPartial, TransferRow};
use crate::volume::{VolumePartial, VolumeRow};

/// Stable identifiers are reported when they recur in at least this
/// many flows to one destination (the §3.3 threshold).
pub const IDENTIFIER_MIN_FLOWS: usize = 2;

/// The per-campaign ground truth every context-dependent detector joins
/// against — visited URLs/hosts/domains and the sensitive subset —
/// built once per campaign and shared by all shards.
pub struct CrawlContext<'a> {
    /// URLs the harness navigated to.
    pub visited_urls: HashSet<&'a str>,
    /// Hostnames of the visited URLs.
    pub visited_hosts: HashSet<String>,
    /// Registrable domains of the visited sites.
    pub visited_domains: HashSet<&'a str>,
    /// URLs of the visits flagged sensitive in the ground truth.
    pub sensitive_urls: HashSet<&'a str>,
    /// Total visits in the campaign.
    pub total_visits: usize,
}

impl<'a> CrawlContext<'a> {
    /// Builds the context from a campaign's ground-truth visit log.
    pub fn of(result: &'a CampaignResult) -> CrawlContext<'a> {
        let visited_urls: HashSet<&str> = result.visits.iter().map(|v| v.url.as_str()).collect();
        let visited_hosts: HashSet<String> = result
            .visits
            .iter()
            .filter_map(|v| Url::parse(&v.url).ok())
            .map(|u| u.host().to_string())
            .collect();
        let visited_domains: HashSet<&str> =
            result.visits.iter().map(|v| v.domain.as_str()).collect();
        let sensitive_urls: HashSet<&str> = result
            .visits
            .iter()
            .filter(|v| v.sensitive)
            .map(|v| v.url.as_str())
            .collect();
        CrawlContext {
            visited_urls,
            visited_hosts,
            visited_domains,
            sensitive_urls,
            total_visits: result.visits.len(),
        }
    }
}

/// The shared lookup tables the detectors finalise against: device
/// ground truth for PII matching, the geolocation database, the
/// ad/tracker hosts list, and the radio energy model. Built once per
/// study, shared by every campaign's analysis.
pub struct AnalysisResources {
    /// The testbed device's ground-truth properties (Table 2 matching).
    pub props: DeviceProperties,
    /// IP → country database (§3.4 transfers).
    pub geo: GeoDb,
    /// Ad/tracker hosts list (Figure 3, §3.3 ad-related flags).
    pub ad_list: HostsList,
    /// Radio energy model for the §3.1 cost rows.
    pub energy: EnergyModel,
}

impl AnalysisResources {
    /// The paper's standard resources: the testbed tablet, the bundled
    /// geo database and hosts list, and the LTE energy model.
    pub fn standard() -> AnalysisResources {
        AnalysisResources {
            props: DeviceProperties::testbed_tablet(),
            geo: GeoDb::standard(),
            ad_list: steven_black_excerpt(),
            energy: EnergyModel::lte(),
        }
    }
}

/// Every crawl detector's accumulator, bundled so one fused iteration
/// over the capture feeds them all. `merge` is **ordered**: `other`
/// must cover flows strictly after `self`'s shard (shard order), which
/// is what lets the first-occurrence detectors (PII, transfers)
/// reproduce the sequential result exactly.
#[derive(Debug, Default, PartialEq)]
pub struct CrawlPartials {
    /// Figure 2/4 sums.
    pub volume: VolumePartial,
    /// Figure 3 native-host set.
    pub addomains: AdDomainPartial,
    /// §3.2 history-leak buckets.
    pub history: HistoryPartial,
    /// Table 2 first-match fields.
    pub pii: PiiPartial,
    /// §3.3 identifier counts.
    pub identifiers: IdentifierPartial,
    /// §3.4 destination-IP map.
    pub transfers: TransferPartial,
    /// §3.2 sensitive-leak set.
    pub sensitive: SensitivePartial,
    /// §3.1 cost sums.
    pub cost: CostPartial,
}

impl CrawlPartials {
    /// Folds one captured flow into every detector — the fused pass.
    ///
    /// Fusion shares more than the snapshot iteration: the first-party
    /// test runs once for history *and* sensitive, one decoded-values
    /// sweep feeds both, and one raw-observations sweep feeds pii *and*
    /// identifiers — work each standalone detector repeats for itself.
    pub fn observe(
        &mut self,
        view: &crate::facts::FlowView<'_>,
        ctx: &CrawlContext<'_>,
        pii: &PiiMatcher<'_>,
    ) {
        let flow = view.flow();
        self.volume.observe(flow);
        self.addomains.observe(flow);
        self.cost.observe(flow);
        self.transfers.observe(flow);

        if !ctx.visited_domains.contains(view.registrable_domain()) {
            let channel = if crate::history::is_doh_flow(flow) {
                None
            } else {
                HistoryPartial::channel_of(flow.class)
            };
            let mut flow_leaked = false;
            for (obs, decoded_values) in view.decoded_observations() {
                if let Some(channel) = channel {
                    flow_leaked |= self.history.scan_observation(
                        &flow.host,
                        channel,
                        obs,
                        decoded_values,
                        ctx,
                    );
                }
                self.sensitive.scan_values(decoded_values, ctx);
            }
            if flow_leaked {
                self.history.record_leak_flow(view);
            }
        }

        if flow.class == FlowClass::Native {
            let mut seen_in_flow: HashMap<(&str, &str), ()> = HashMap::new();
            for obs in view.observations() {
                self.pii.scan_observation(pii, &flow.host, obs);
                self.identifiers
                    .scan_observation(&flow.host, obs, &mut seen_in_flow);
            }
        }
    }

    /// Absorbs a later shard's accumulators, detector by detector.
    pub fn merge(&mut self, other: CrawlPartials) {
        self.volume.merge(other.volume);
        self.addomains.merge(other.addomains);
        self.history.merge(other.history);
        self.pii.merge(other.pii);
        self.identifiers.merge(other.identifiers);
        self.transfers.merge(other.transfers);
        self.sensitive.merge(other.sensitive);
        self.cost.merge(other.cost);
    }
}

/// Every §3 result of one crawl campaign, computed by the fused pass.
/// Self-contained: rendering a report needs no further access to the
/// capture.
pub struct CampaignAnalysis {
    /// Browser name.
    pub browser: String,
    /// Browser version (Table 1).
    pub version: String,
    /// Pages visited.
    pub visits: usize,
    /// Figure 2/4 row.
    pub volume: VolumeRow,
    /// Figure 3 row.
    pub addomains: AdDomainRow,
    /// §3.2 history leaks.
    pub history_leaks: Vec<HistoryLeak>,
    /// Table 2 row.
    pub pii: PiiRow,
    /// §3.3 stable identifiers (at [`IDENTIFIER_MIN_FLOWS`]).
    pub identifiers: Vec<IdentifierSighting>,
    /// §3.4 transfer row (None when the browser leaks nothing).
    pub transfers: Option<TransferRow>,
    /// §3.2 sensitive-category row.
    pub sensitive: SensitiveRow,
    /// §3.2 DNS row.
    pub dns: DnsRow,
    /// §3.1 cost row.
    pub cost: CostRow,
}

impl CampaignAnalysis {
    /// The §3.2 per-browser leak roll-up.
    pub fn leak_summary(&self) -> BrowserLeakSummary {
        summarize_from(&self.browser, &self.history_leaks)
    }
}

/// Finalises a campaign's merged partials into the full analysis.
fn finish_crawl(
    result: &CampaignResult,
    partials: CrawlPartials,
    dns: DnsPartial,
    ctx: &CrawlContext<'_>,
    res: &AnalysisResources,
) -> CampaignAnalysis {
    let browser = result.profile.name.as_str();
    let history_leaks = partials.history.finish(browser, ctx.total_visits);
    let transfers = partials.transfers.finish(browser, &history_leaks, &res.geo);
    CampaignAnalysis {
        browser: browser.to_string(),
        version: result.profile.version.to_string(),
        visits: result.visits.len(),
        volume: partials.volume.finish(browser),
        addomains: partials.addomains.finish(browser, &res.ad_list),
        history_leaks,
        pii: partials.pii.finish(browser),
        identifiers: partials
            .identifiers
            .finish(browser, IDENTIFIER_MIN_FLOWS, &res.ad_list),
        transfers,
        sensitive: partials.sensitive.finish(browser, ctx.sensitive_urls.len()),
        dns: dns.finish(browser),
        cost: partials
            .cost
            .finish(browser, result.visits.len(), &res.energy),
    }
}

/// The campaign's resolver-log accumulator (one pass over the DNS log).
fn dns_partial(result: &CampaignResult) -> DnsPartial {
    let mut dns = DnsPartial::default();
    for entry in result.dns_log.iter() {
        dns.observe(entry);
    }
    dns
}

/// Analyses one crawl campaign with the fused single-pass engine: one
/// iteration over the snapshot feeds every detector.
pub fn analyze_crawl(result: &CampaignResult, res: &AnalysisResources) -> CampaignAnalysis {
    let _span = panoptes_obs::trace::span_with("study.analyze_crawl", None, || {
        result.profile.name.to_string()
    });
    let ctx = CrawlContext::of(result);
    let matcher = PiiMatcher::new(&res.props);
    let snap = result.store.snapshot();
    let facts = capture_facts(&snap);
    panoptes_obs::count!(
        "study.flows.observed",
        Deterministic,
        snap.all().len() as u64
    );
    let mut partials = CrawlPartials::default();
    for view in facts.views(snap.all()) {
        partials.observe(&view, &ctx, &matcher);
    }
    finish_crawl(result, partials, dns_partial(result), &ctx, res)
}

/// Analyses one crawl campaign with the fused pass **sharded** across
/// the fleet worker pool: the capture splits into contiguous near-equal
/// ranges, each shard folds its range into its own [`CrawlPartials`],
/// and the shards merge in order. Byte-identical to [`analyze_crawl`]
/// for any worker count.
pub fn analyze_crawl_sharded(
    result: &CampaignResult,
    res: &AnalysisResources,
    options: &FleetOptions,
) -> CampaignAnalysis {
    let _span = panoptes_obs::trace::span_with("study.analyze_crawl_sharded", None, || {
        result.profile.name.to_string()
    });
    let ctx = CrawlContext::of(result);
    let matcher = PiiMatcher::new(&res.props);
    let snap = result.store.snapshot();
    let facts = capture_facts(&snap);
    let flows = snap.all();
    panoptes_obs::count!("study.flows.observed", Deterministic, flows.len() as u64);
    let ranges = fleet::shard_ranges(flows.len(), options.effective_jobs(flows.len()));
    for range in &ranges {
        // Runtime-class: the shard topology changes with `--jobs` by
        // construction, so the skew histogram is excluded from the
        // byte-identity guarantee.
        panoptes_obs::record!("study.shard.flows", Runtime, range.len() as u64);
    }
    let labels: Vec<String> = ranges
        .iter()
        .enumerate()
        .map(|(i, r)| {
            format!(
                "{} analysis shard {i} ({} flows)",
                result.profile.name,
                r.len()
            )
        })
        .collect();
    let shards = fleet::execute(&labels, options, |i| {
        let mut partials = CrawlPartials::default();
        for view in facts.views(flows.slice(ranges[i].clone())) {
            partials.observe(&view, &ctx, &matcher);
        }
        partials
    })
    .unwrap_or_else(|e| panic!("sharded analysis failed: {e}"));
    let merge_start = std::time::Instant::now();
    let mut merged = CrawlPartials::default();
    for shard in shards {
        merged.merge(shard);
    }
    panoptes_obs::record!(
        "study.merge.wall_us",
        Runtime,
        merge_start.elapsed().as_micros() as u64
    );
    finish_crawl(result, merged, dns_partial(result), &ctx, res)
}

/// Every §3.5 result of one idle campaign. The offset/domain histograms
/// stay in accumulator form so any bucket width can be rendered without
/// touching the capture again.
pub struct IdleAnalysis {
    /// Browser name.
    pub browser: String,
    /// Native requests the browser model reports sending while idle.
    pub idle_sent: u32,
    /// The idle window's length.
    pub duration: SimDuration,
    partial: IdlePartial,
}

impl IdleAnalysis {
    /// The Figure 5 cumulative timeline at `bucket` width.
    pub fn timeline(&self, bucket: SimDuration) -> IdleTimeline {
        self.partial.timeline(&self.browser, bucket, self.duration)
    }

    /// The §3.5 destination shares, largest first.
    pub fn destination_shares(&self) -> Vec<DestinationShare> {
        self.partial.destination_shares()
    }
}

/// Analyses one idle campaign (one fused pass over the capture).
pub fn analyze_idle(result: &IdleResult) -> IdleAnalysis {
    let _span = panoptes_obs::trace::span_with("study.analyze_idle", None, || {
        result.profile.name.to_string()
    });
    let mut partial = IdlePartial::default();
    let start = result.idle_start.0;
    panoptes_obs::count!(
        "study.idle_flows.observed",
        Deterministic,
        result.store.snapshot().len() as u64
    );
    for flow in result.store.snapshot().iter() {
        partial.observe(flow, start);
    }
    IdleAnalysis {
        browser: result.profile.name.to_string(),
        idle_sent: result.idle_sent,
        duration: result.duration,
        partial,
    }
}

/// Like [`analyze_idle`], sharded across the worker pool with in-order
/// merge — byte-identical for any worker count.
pub fn analyze_idle_sharded(result: &IdleResult, options: &FleetOptions) -> IdleAnalysis {
    let _span = panoptes_obs::trace::span_with("study.analyze_idle_sharded", None, || {
        result.profile.name.to_string()
    });
    let snap = result.store.snapshot();
    let flows = snap.all();
    let start = result.idle_start.0;
    panoptes_obs::count!(
        "study.idle_flows.observed",
        Deterministic,
        flows.len() as u64
    );
    let ranges = fleet::shard_ranges(flows.len(), options.effective_jobs(flows.len()));
    for range in &ranges {
        panoptes_obs::record!("study.shard.flows", Runtime, range.len() as u64);
    }
    let labels: Vec<String> = ranges
        .iter()
        .enumerate()
        .map(|(i, r)| format!("{} idle shard {i} ({} flows)", result.profile.name, r.len()))
        .collect();
    let shards = fleet::execute(&labels, options, |i| {
        let mut partial = IdlePartial::default();
        for flow in flows.slice(ranges[i].clone()) {
            partial.observe(flow, start);
        }
        partial
    })
    .unwrap_or_else(|e| panic!("sharded idle analysis failed: {e}"));
    let mut merged = IdlePartial::default();
    for shard in shards {
        merged.merge(shard);
    }
    IdleAnalysis {
        browser: result.profile.name.to_string(),
        idle_sent: result.idle_sent,
        duration: result.duration,
        partial: merged,
    }
}

/// The full study's analyses: one [`CampaignAnalysis`] per crawl and
/// one [`IdleAnalysis`] per idle run, both in input (profile) order.
pub struct StudyAnalyses {
    /// Crawl analyses, in input order.
    pub crawls: Vec<CampaignAnalysis>,
    /// Idle analyses, in input order.
    pub idles: Vec<IdleAnalysis>,
}

/// Analyses a completed study sequentially (fused single-pass per
/// campaign).
pub fn analyze_study(
    results: &[CampaignResult],
    idles: &[IdleResult],
    res: &AnalysisResources,
) -> StudyAnalyses {
    StudyAnalyses {
        crawls: results.iter().map(|r| analyze_crawl(r, res)).collect(),
        idles: idles.iter().map(analyze_idle).collect(),
    }
}

/// Analyses a completed study across the fleet worker pool — one unit
/// per campaign, results in input order. Byte-identical to
/// [`analyze_study`] for any worker count.
pub fn analyze_study_jobs(
    results: &[CampaignResult],
    idles: &[IdleResult],
    res: &AnalysisResources,
    options: &FleetOptions,
) -> Result<StudyAnalyses, FleetError<()>> {
    let labels: Vec<String> = results
        .iter()
        .map(|r| format!("{} crawl analysis", r.profile.name))
        .chain(
            idles
                .iter()
                .map(|r| format!("{} idle analysis", r.profile.name)),
        )
        .collect();
    let crawl_slots: Mutex<Vec<Option<CampaignAnalysis>>> =
        Mutex::new((0..results.len()).map(|_| None).collect());
    let idle_slots: Mutex<Vec<Option<IdleAnalysis>>> =
        Mutex::new((0..idles.len()).map(|_| None).collect());
    fleet::execute(&labels, options, |index| {
        if index < results.len() {
            let analysis = analyze_crawl(&results[index], res);
            crawl_slots.lock().unwrap()[index] = Some(analysis);
        } else {
            let idle_index = index - results.len();
            let analysis = analyze_idle(&idles[idle_index]);
            idle_slots.lock().unwrap()[idle_index] = Some(analysis);
        }
    })?;
    Ok(StudyAnalyses {
        crawls: crawl_slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("fleet reported success"))
            .collect(),
        idles: idle_slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("fleet reported success"))
            .collect(),
    })
}

/// One unit's analysis, crawl or idle — the overlapped pipeline's
/// per-unit product. The crawl side is boxed: a `CampaignAnalysis`
/// carries every §3 table row and the variants would otherwise differ
/// by ~400 bytes.
enum UnitAnalysis {
    Crawl(Box<CampaignAnalysis>),
    Idle(IdleAnalysis),
}

/// A fully captured **and** analysed study: the raw campaign results
/// (for exports that need flows, e.g. HAR or Listing 1) plus every
/// per-campaign analysis.
pub struct AnalyzedStudy {
    /// The raw captures, in profile order.
    pub results: StudyOutput,
    /// The per-campaign analyses, in profile order.
    pub analyses: StudyAnalyses,
}

/// Runs the full study (crawl + idle per browser) with the
/// capture→analysis barrier removed: fleet units stream their sealed
/// captures to analysis workers over a bounded channel as soon as each
/// unit finishes, so detectors run while other browsers are still
/// crawling. Per-unit analyses land in submission-order slots and the
/// cross-browser aggregation merges them in that order, making the
/// output byte-identical to capture-everything-then-analyse.
///
/// Panic isolation matches the fleet's: a panicking capture unit or
/// analysis worker fails only its own unit, and the error reports every
/// failure with its unit label.
pub fn run_full_study_analyzed(
    world: &World,
    sites: &[SiteSpec],
    config: &CampaignConfig,
    idle: SimDuration,
    options: &FleetOptions,
    res: &AnalysisResources,
) -> Result<AnalyzedStudy, FleetError<()>> {
    run_study_analyzed_with(world, sites, config, idle, options, res, &all_profiles())
}

/// [`run_full_study_analyzed`] over an explicit browser population —
/// the paper's 15 pinned browsers, a Table 1 prefix, or a sampled
/// population from [`panoptes_browsers::registry::population`]. The
/// overlap machinery is population-agnostic: determinism across worker
/// counts holds for any profile list (see
/// `tests/population_determinism.rs`).
pub fn run_study_analyzed_with(
    world: &World,
    sites: &[SiteSpec],
    config: &CampaignConfig,
    idle: SimDuration,
    options: &FleetOptions,
    res: &AnalysisResources,
    profiles: &[panoptes_browsers::BrowserProfile],
) -> Result<AnalyzedStudy, FleetError<()>> {
    let _span = panoptes_obs::trace::span("study.overlapped");
    let mut units = Vec::with_capacity(profiles.len() * 2);
    for profile in profiles {
        units.push(FleetUnit::crawl(profile.clone()));
    }
    for profile in profiles {
        units.push(FleetUnit::idle(profile.clone(), idle));
    }
    let labels: Vec<String> = units.iter().map(FleetUnit::label).collect();
    let n = units.len();
    let jobs = options.effective_jobs(n);

    // The hand-off queue: capture workers block (backpressure) once
    // `jobs` sealed captures are waiting for analysis.
    let (tx, rx) = sync_channel::<(usize, UnitOutput)>(jobs);
    let rx = Mutex::new(rx);

    let output_slots: Mutex<Vec<Option<UnitOutput>>> = Mutex::new((0..n).map(|_| None).collect());
    let analysis_slots: Mutex<Vec<Option<UnitAnalysis>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let analysis_failures: Mutex<Vec<FleetFailure>> = Mutex::new(Vec::new());

    // One analysis worker per fleet worker: with an idle pool the
    // analyses of early-finishing units overlap the remaining captures.
    let analysis_workers = jobs;

    // Hand the caller's request context across the analysis-worker
    // boundary: overlapped analyses of a served study keep its id.
    let ctx = panoptes_obs::ctx::current();
    let capture_outcome = std::thread::scope(|scope| {
        for _ in 0..analysis_workers {
            scope.spawn(|| {
                let _ctx = ctx.map(panoptes_obs::ctx::enter);
                loop {
                    let message = rx.lock().unwrap().recv();
                    let Ok((index, output)) = message else {
                        break; // channel closed: capture side is done
                    };
                    panoptes_obs::gauge_add!("study.overlap.occupancy", -1);
                    let outcome = catch_unwind(AssertUnwindSafe(|| match &output {
                        UnitOutput::Crawl(result) => {
                            UnitAnalysis::Crawl(Box::new(analyze_crawl(result, res)))
                        }
                        UnitOutput::Idle(result) => UnitAnalysis::Idle(analyze_idle(result)),
                    }));
                    match outcome {
                        Ok(analysis) => analysis_slots.lock().unwrap()[index] = Some(analysis),
                        Err(payload) => analysis_failures.lock().unwrap().push(FleetFailure {
                            unit: format!("{} analysis", labels[index]),
                            index,
                            message: fleet::panic_message(payload.as_ref()),
                        }),
                    }
                    output_slots.lock().unwrap()[index] = Some(output);
                }
            });
        }

        let runner = |index: usize| {
            let output = fleet::run_unit(world, sites, config, &units[index]);
            // The occupancy gauge tracks sealed captures sitting in the
            // hand-off queue; its high-water mark shows how often the
            // analysis side was the bottleneck.
            panoptes_obs::gauge_add!("study.overlap.occupancy", 1);
            tx.send((index, output))
                .expect("analysis workers outlive the capture fleet");
        };
        let outcome = fleet::execute(&labels, options, runner);
        drop(tx); // close the queue so analysis workers drain and exit
        outcome
    });

    let mut failures = match capture_outcome {
        Ok(_) => Vec::new(),
        Err(e) => e.failures,
    };
    failures.extend(analysis_failures.into_inner().unwrap());
    if !failures.is_empty() {
        failures.sort_by_key(|f| f.index);
        return Err(FleetError {
            failures,
            completed: (0..n).map(|_| None).collect(),
        });
    }

    let mut crawls = Vec::with_capacity(profiles.len());
    let mut idle_results = Vec::with_capacity(profiles.len());
    for output in output_slots.into_inner().unwrap() {
        match output.expect("no failure recorded") {
            UnitOutput::Crawl(result) => crawls.push(result),
            UnitOutput::Idle(result) => idle_results.push(result),
        }
    }
    let mut crawl_analyses = Vec::with_capacity(profiles.len());
    let mut idle_analyses = Vec::with_capacity(profiles.len());
    for analysis in analysis_slots.into_inner().unwrap() {
        match analysis.expect("no failure recorded") {
            UnitAnalysis::Crawl(a) => crawl_analyses.push(*a),
            UnitAnalysis::Idle(a) => idle_analyses.push(a),
        }
    }
    Ok(AnalyzedStudy {
        results: StudyOutput {
            crawls,
            idles: idle_results,
        },
        analyses: StudyAnalyses {
            crawls: crawl_analyses,
            idles: idle_analyses,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::idle::run_idle;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;

    use crate::addomains::ad_domain_row;
    use crate::cost::cost_row;
    use crate::dns::dns_row;
    use crate::history::detect_history_leaks;
    use crate::identifiers::find_identifiers;
    use crate::idle::{destination_shares, timeline};
    use crate::pii::pii_row;
    use crate::sensitive::sensitive_row;
    use crate::transfers::transfer_row;
    use crate::volume::volume_row;

    fn small_world() -> World {
        World::build(&GeneratorConfig {
            popular: 6,
            sensitive: 4,
            ..Default::default()
        })
    }

    #[test]
    fn fused_analysis_matches_every_legacy_detector() {
        let world = small_world();
        let config = CampaignConfig::default();
        let res = AnalysisResources::standard();
        for name in ["Yandex", "Opera", "Chrome", "UC International"] {
            let result = run_crawl(
                &world,
                &profile_by_name(name).unwrap(),
                &world.sites,
                &config,
            );
            let a = analyze_crawl(&result, &res);
            assert_eq!(a.volume, volume_row(&result), "{name}");
            assert_eq!(a.addomains, ad_domain_row(&result), "{name}");
            assert_eq!(a.history_leaks, detect_history_leaks(&result), "{name}");
            assert_eq!(a.pii, pii_row(&result, &res.props), "{name}");
            assert_eq!(
                a.identifiers,
                find_identifiers(&result, IDENTIFIER_MIN_FLOWS),
                "{name}"
            );
            assert_eq!(a.transfers, transfer_row(&result, &res.geo), "{name}");
            assert_eq!(a.sensitive, sensitive_row(&result), "{name}");
            assert_eq!(a.dns, dns_row(&result), "{name}");
            assert_eq!(a.cost, cost_row(&result, &res.energy), "{name}");
        }
    }

    #[test]
    fn sharded_analysis_matches_sequential_for_any_worker_count() {
        let world = small_world();
        let config = CampaignConfig::default();
        let res = AnalysisResources::standard();
        let result = run_crawl(
            &world,
            &profile_by_name("Yandex").unwrap(),
            &world.sites,
            &config,
        );
        let sequential = analyze_crawl(&result, &res);
        for jobs in [1usize, 2, 3, 8] {
            let sharded = analyze_crawl_sharded(&result, &res, &FleetOptions::with_jobs(jobs));
            assert_eq!(sharded.volume, sequential.volume, "jobs={jobs}");
            assert_eq!(
                sharded.history_leaks, sequential.history_leaks,
                "jobs={jobs}"
            );
            assert_eq!(sharded.pii, sequential.pii, "jobs={jobs}");
            assert_eq!(sharded.identifiers, sequential.identifiers, "jobs={jobs}");
            assert_eq!(sharded.transfers, sequential.transfers, "jobs={jobs}");
            assert_eq!(sharded.sensitive, sequential.sensitive, "jobs={jobs}");
            assert_eq!(sharded.addomains, sequential.addomains, "jobs={jobs}");
            assert_eq!(sharded.cost, sequential.cost, "jobs={jobs}");
            assert_eq!(sharded.dns, sequential.dns, "jobs={jobs}");
        }
    }

    #[test]
    fn sharded_idle_matches_sequential() {
        let world = small_world();
        let config = CampaignConfig::default();
        let result = run_idle(
            &world,
            &profile_by_name("Opera").unwrap(),
            SimDuration::from_secs(300),
            &config,
        );
        let bucket = SimDuration::from_secs(10);
        let sequential = analyze_idle(&result);
        assert_eq!(sequential.timeline(bucket), timeline(&result, bucket));
        assert_eq!(sequential.destination_shares(), destination_shares(&result));
        for jobs in [2usize, 5] {
            let sharded = analyze_idle_sharded(&result, &FleetOptions::with_jobs(jobs));
            assert_eq!(
                sharded.timeline(bucket),
                sequential.timeline(bucket),
                "jobs={jobs}"
            );
            assert_eq!(
                sharded.destination_shares(),
                sequential.destination_shares(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn overlapped_study_matches_barrier_study() {
        let world = small_world();
        let config = CampaignConfig::default();
        let res = AnalysisResources::standard();
        let idle = SimDuration::from_secs(60);
        let overlapped = run_full_study_analyzed(
            &world,
            &world.sites,
            &config,
            idle,
            &FleetOptions::with_jobs(4),
            &res,
        )
        .expect("no failures");
        assert_eq!(overlapped.results.crawls.len(), 15);
        assert_eq!(overlapped.results.idles.len(), 15);
        let barrier = analyze_study(&overlapped.results.crawls, &overlapped.results.idles, &res);
        for (o, b) in overlapped.analyses.crawls.iter().zip(&barrier.crawls) {
            assert_eq!(o.browser, b.browser);
            assert_eq!(o.volume, b.volume, "{}", o.browser);
            assert_eq!(o.history_leaks, b.history_leaks, "{}", o.browser);
            assert_eq!(o.pii, b.pii, "{}", o.browser);
        }
        let bucket = SimDuration::from_secs(30);
        for (o, b) in overlapped.analyses.idles.iter().zip(&barrier.idles) {
            assert_eq!(o.timeline(bucket), b.timeline(bucket), "{}", o.browser);
            assert_eq!(
                o.destination_shares(),
                b.destination_shares(),
                "{}",
                o.browser
            );
        }
    }
}
