//! The §3.5 idle experiment: launch a browser, touch nothing for ten
//! minutes, and watch it phone home — with Figure 5's cumulative curve
//! rendered as ASCII.
//!
//! ```text
//! cargo run --release --example idle_phone_home -- Dolphin
//! ```

use panoptes_suite::analysis::idle::{destination_shares, timeline};
use panoptes_suite::browsers::registry::profile_by_name;
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::panoptes::idle::run_idle;
use panoptes_suite::simnet::SimDuration;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Dolphin".to_string());
    let profile = profile_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown browser {name:?}");
        std::process::exit(2);
    });

    let world = World::build(&GeneratorConfig { popular: 10, sensitive: 5, ..Default::default() });
    let result = run_idle(&world, &profile, SimDuration::from_secs(600), &CampaignConfig::default());

    println!(
        "{} idled for {}s and sent {} native requests:",
        profile.name,
        result.duration.as_secs(),
        result.idle_sent
    );

    // Figure 5, one browser: cumulative native requests in 30s buckets.
    let tl = timeline(&result, SimDuration::from_secs(30));
    let max = tl.total().max(1);
    println!("\ncumulative native requests (Fig 5 curve):");
    for (t, n) in &tl.cumulative {
        let bar = "#".repeat((n * 50 / max) as usize);
        println!("{t:>4}s |{bar:<50}| {n}");
    }
    println!(
        "first-minute share: {:.0}% ({} of {} — burst-then-plateau when high, linear when ~10%)",
        tl.first_minute_share() * 100.0,
        tl.at(60),
        tl.total()
    );

    // §3.5: who receives the chatter.
    println!("\nidle destinations:");
    for share in destination_shares(&result) {
        println!("  {:<28} {:>5.1}%  ({} requests)", share.domain, share.percent, share.count);
    }
}
