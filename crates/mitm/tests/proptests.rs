//! Property-based tests: flow persistence and HAR export hold for
//! arbitrary captures.

use proptest::prelude::*;

use panoptes_http::json;
use panoptes_http::method::Method;
use panoptes_http::netaddr::IpAddr;
use panoptes_http::request::HttpVersion;
use panoptes_mitm::har::to_har;
use panoptes_mitm::{Flow, FlowClass, FlowStore};

fn arb_flow() -> impl Strategy<Value = Flow> {
    (
        // JSON numbers are doubles: ids round-trip exactly below 2^53
        // (documented on `Flow::to_json`).
        0u64..(1 << 53),
        0u64..1_000_000_000_000,
        any::<u32>(),
        "[a-z.]{1,20}",
        "[a-z0-9.-]{1,30}",
        proptest::collection::vec(("[a-zA-Z-]{1,12}", "\\PC{0,30}"), 0..6),
        "\\PC{0,100}",
        0u16..600,
        (any::<u32>(), any::<u32>()),
        0usize..4,
    )
        .prop_map(
            |(id, time_us, uid, package, host, headers, body, status, bytes, class)| Flow {
                id,
                time_us,
                uid,
                package: package.as_str().into(),
                host: host.as_str().into(),
                dst_ip: IpAddr::new(10, 0, 0, 1),
                dst_port: 443,
                method: Method::Get,
                url: format!("https://{host}/p"),
                request_headers: headers
                    .into_iter()
                    .map(|(n, v)| (n.as_str().into(), v.as_str().into()))
                    .collect(),
                request_body: body,
                status,
                bytes_out: bytes.0 as u64,
                bytes_in: bytes.1 as u64,
                version: HttpVersion::H2,
                class: match class {
                    0 => FlowClass::Engine,
                    1 => FlowClass::Native,
                    2 => FlowClass::PinnedOpaque,
                    _ => FlowClass::Blocked,
                },
            },
        )
}

/// Triaged from a proptest-regressions seed: `flow_json_roundtrip`
/// once shrank to a flow whose id (21830573220171013 ≈ 2^54.3) exceeds
/// the 2^53 double-precision ceiling of JSON numbers, so the id came
/// back off by one after the roundtrip. The fix clamps the generator to
/// ids below 2^53 and documents the limit on `Flow::to_json`; this
/// pins the exact shrunken case as a named unit test instead of a
/// checked-in regressions file.
#[test]
fn flow_id_at_double_precision_boundary_roundtrips() {
    let flow = Flow {
        id: 21830573220171013 & ((1 << 53) - 1), // the shrunken id, clamped like the generator
        time_us: 0,
        uid: 0,
        package: "a".into(),
        host: "a".into(),
        dst_ip: IpAddr::new(10, 0, 0, 1),
        dst_port: 443,
        method: Method::Get,
        url: "https://a/p".to_string(),
        request_headers: Vec::new(),
        request_body: String::new(),
        status: 0,
        bytes_out: 0,
        bytes_in: 0,
        version: HttpVersion::H2,
        class: FlowClass::Engine,
    };
    let line = flow.to_jsonl();
    let parsed = Flow::from_json(&json::parse(&line).unwrap()).unwrap();
    assert_eq!(parsed, flow);
}

proptest! {
    #[test]
    fn flow_json_roundtrip(flow in arb_flow()) {
        let line = flow.to_jsonl();
        let parsed = Flow::from_json(&json::parse(&line).unwrap()).unwrap();
        prop_assert_eq!(parsed, flow);
    }

    #[test]
    fn store_jsonl_roundtrip(flows in proptest::collection::vec(arb_flow(), 0..20)) {
        let store = FlowStore::new();
        for f in &flows {
            store.push(f.clone());
        }
        let text = store.export_jsonl();
        let restored = FlowStore::import_jsonl(&text).expect("roundtrip");
        prop_assert_eq!(restored.all(), flows);
    }

    #[test]
    fn har_export_is_always_valid_json(flows in proptest::collection::vec(arb_flow(), 0..10)) {
        let har = to_har(&flows);
        let text = json::to_string(&har);
        let parsed = json::parse(&text).expect("valid json");
        let entries = parsed
            .get("log").unwrap()
            .get("entries").unwrap()
            .as_array().unwrap();
        prop_assert_eq!(entries.len(), flows.len());
    }

    #[test]
    fn class_partition_is_total(flows in proptest::collection::vec(arb_flow(), 0..30)) {
        let store = FlowStore::new();
        for f in &flows {
            store.push(f.clone());
        }
        let partitioned = store.engine_flows().len()
            + store.native_flows().len()
            + store.by_class(FlowClass::PinnedOpaque).len()
            + store.by_class(FlowClass::Blocked).len();
        prop_assert_eq!(partitioned, store.len());
    }
}

proptest! {
    /// Snapshot views are exactly naive filters of the capture: same
    /// flows, same order, for every class and package — and the
    /// capture-order view is the pushed sequence itself.
    #[test]
    fn snapshot_views_equal_naive_filtering(
        flows in proptest::collection::vec(arb_flow(), 0..30),
    ) {
        let store = FlowStore::new();
        for f in &flows {
            store.push(f.clone());
        }
        let snap = store.snapshot();

        let all: Vec<Flow> = snap.iter().cloned().collect();
        prop_assert_eq!(&all, &flows);

        for class in [
            FlowClass::Engine,
            FlowClass::Native,
            FlowClass::PinnedOpaque,
            FlowClass::Blocked,
        ] {
            let view: Vec<Flow> =
                snap.by_class(class).iter().cloned().collect();
            let naive: Vec<Flow> =
                flows.iter().filter(|f| f.class == class).cloned().collect();
            prop_assert_eq!(view, naive, "class {:?}", class);
        }

        let packages: std::collections::BTreeSet<&str> =
            flows.iter().map(|f| f.package.as_str()).collect();
        for pkg in packages {
            let view: Vec<Flow> =
                snap.by_package(pkg).iter().cloned().collect();
            let naive: Vec<Flow> =
                flows.iter().filter(|f| f.package == pkg).cloned().collect();
            prop_assert_eq!(view, naive, "package {}", pkg);
        }
        prop_assert!(snap.by_package("no-such-package").is_empty());
    }

    /// The streaming JSONL writer and the buffered exporter emit the
    /// same bytes, and the reserve estimate never undershoots.
    #[test]
    fn jsonl_export_variants_agree(
        flows in proptest::collection::vec(arb_flow(), 0..20),
    ) {
        let store = FlowStore::new();
        for f in &flows {
            store.push(f.clone());
        }
        let buffered = store.export_jsonl();
        let mut streamed = String::new();
        store.write_jsonl(&mut streamed).unwrap();
        prop_assert_eq!(&streamed, &buffered);
        let estimate: usize =
            store.snapshot().iter().map(Flow::jsonl_len_estimate).sum();
        prop_assert!(
            estimate >= buffered.len(),
            "estimate {} < actual {}", estimate, buffered.len()
        );
    }
}
