//! The flight recorder: an always-on bounded ring of recent annotated
//! serve events, an active-study registry, and a watchdog that dumps a
//! post-mortem when a study stops making progress.
//!
//! The trace layer answers "what happened?" *when someone asked for a
//! trace*. The flight recorder answers "what was the server doing just
//! now?" **always**: every request lifecycle transition (accepted,
//! rejected, build started, replayed, finished, errored, disconnected)
//! is appended to a fixed-capacity ring — old events are dropped, never
//! reallocated — so a dump at any moment shows the recent past at a
//! cost of one short mutex hold per event.
//!
//! Three things trigger a dump:
//!
//! * the **watchdog** thread ([`Watchdog`]): a study whose
//!   `last_progress` is older than the configured deadline is declared
//!   stalled, and the ring + active-study table + a caller-supplied
//!   lane/queue/cache snapshot go to a timestamped file in the
//!   flight-recorder directory (once per stalled study — a wedged lane
//!   does not spam a dump per tick);
//! * a **panic** anywhere in the process, via the chained hook
//!   installed by [`install_panic_hook`];
//! * an explicit [`FlightRecorder::dump_to_file`] call (tests, future
//!   admin endpoints).
//!
//! # Dump format
//!
//! JSONL, `panoptes-doctor`-readable: one `flightmeta` line (reason,
//! dump time, server snapshot), one `study` line per active study, then
//! the ring's `flight` lines oldest-first:
//!
//! ```json
//! {"ev":"flightmeta","reason":"watchdog: request 3 stalled","at_ms":9071,"active":1,"snapshot":"lanes=1 queued=4 ..."}
//! {"ev":"study","request":3,"params":"--seed 0x51 ...","started_ms":871,"last_progress_ms":1204,"done":2,"total":14,"stalled":true}
//! {"ev":"flight","t_ms":870,"request":3,"kind":"request.accepted","detail":"--seed 0x51 ..."}
//! ```

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json;

/// Ring capacity: enough for the full lifecycle of hundreds of recent
/// requests, small enough that a dump is instant.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One annotated event in the ring.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Milliseconds since the recorder was created.
    pub t_ms: u64,
    /// The request the event belongs to (0 = server-wide).
    pub request: u64,
    /// Lifecycle kind (`request.accepted`, `study.done`, …).
    pub kind: &'static str,
    /// Free-form annotation (params, error, byte counts, …).
    pub detail: String,
}

/// One registered in-flight study.
#[derive(Debug, Clone)]
struct ActiveStudy {
    params: String,
    started_ms: u64,
    last_progress_ms: u64,
    done: usize,
    total: usize,
    /// Already dumped by the watchdog: suppresses repeat dumps while
    /// the same study stays wedged.
    dumped: bool,
}

/// A stalled study the watchdog found, with what the dump needs.
#[derive(Debug, Clone)]
pub struct StalledStudy {
    /// The stalled request's id.
    pub request: u64,
    /// Its parameters, for the dump reason line.
    pub params: String,
    /// Milliseconds since the study last made progress.
    pub stalled_ms: u64,
}

struct RecInner {
    ring: VecDeque<FlightEvent>,
    active: HashMap<u64, ActiveStudy>,
    /// Events the ring has dropped (capacity overflow), for honesty in
    /// dumps.
    dropped: u64,
}

/// The always-on bounded recorder. One per server, shared by every
/// connection handler; all methods are cheap enough for the request
/// hot path (one short mutex hold, one `String`).
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    inner: Mutex<RecInner>,
    dump_seq: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            start: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(RecInner {
                ring: VecDeque::with_capacity(capacity.max(1)),
                active: HashMap::new(),
                dropped: 0,
            }),
            dump_seq: AtomicU64::new(0),
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Appends one annotated event to the ring.
    pub fn record(&self, request: u64, kind: &'static str, detail: String) {
        let t_ms = self.now_ms();
        let mut inner = self.inner.lock().expect("flightrec lock");
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(FlightEvent {
            t_ms,
            request,
            kind,
            detail,
        });
    }

    /// Registers a study as in flight (and records the event). Progress
    /// starts "now": a study is not stalled while it queues its units.
    pub fn study_started(&self, request: u64, params: String, total_units: usize) {
        let t_ms = self.now_ms();
        let mut inner = self.inner.lock().expect("flightrec lock");
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(FlightEvent {
            t_ms,
            request,
            kind: "study.start",
            detail: params.clone(),
        });
        inner.active.insert(
            request,
            ActiveStudy {
                params,
                started_ms: t_ms,
                last_progress_ms: t_ms,
                done: 0,
                total: total_units,
                dumped: false,
            },
        );
    }

    /// Bumps a study's progress clock (a unit completed, an event was
    /// streamed — any sign of life the watchdog should honour).
    pub fn study_progress(&self, request: u64, done: usize, total: usize) {
        let t_ms = self.now_ms();
        let mut inner = self.inner.lock().expect("flightrec lock");
        if let Some(study) = inner.active.get_mut(&request) {
            study.last_progress_ms = t_ms;
            study.done = done;
            study.total = total;
        }
    }

    /// Bumps only the progress clock — a successful event write proves
    /// the study is alive even when its unit counter hasn't moved.
    pub fn touch(&self, request: u64) {
        let t_ms = self.now_ms();
        let mut inner = self.inner.lock().expect("flightrec lock");
        if let Some(study) = inner.active.get_mut(&request) {
            study.last_progress_ms = t_ms;
        }
    }

    /// Deregisters a study and records how it ended
    /// (`study.done` / `study.error` / `study.disconnect`).
    pub fn study_finished(&self, request: u64, kind: &'static str, detail: String) {
        let t_ms = self.now_ms();
        let mut inner = self.inner.lock().expect("flightrec lock");
        inner.active.remove(&request);
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(FlightEvent {
            t_ms,
            request,
            kind,
            detail,
        });
    }

    /// Studies whose last progress is older than `deadline`, each
    /// marked dumped so one wedge produces one dump.
    pub fn take_stalled(&self, deadline: Duration) -> Vec<StalledStudy> {
        let now = self.now_ms();
        let deadline_ms = deadline.as_millis() as u64;
        let mut inner = self.inner.lock().expect("flightrec lock");
        let mut stalled = Vec::new();
        for (&request, study) in inner.active.iter_mut() {
            let idle_ms = now.saturating_sub(study.last_progress_ms);
            if !study.dumped && idle_ms > deadline_ms {
                study.dumped = true;
                stalled.push(StalledStudy {
                    request,
                    params: study.params.clone(),
                    stalled_ms: idle_ms,
                });
            }
        }
        stalled.sort_by_key(|s| s.request);
        stalled
    }

    /// Serialises the full post-mortem (meta + active studies + ring)
    /// in the doctor-readable JSONL format.
    pub fn dump_to_string(&self, reason: &str, snapshot: &str) -> String {
        let now = self.now_ms();
        let inner = self.inner.lock().expect("flightrec lock");
        let mut out = String::with_capacity(256 + inner.ring.len() * 96);
        let _ = writeln!(
            out,
            "{{\"ev\":\"flightmeta\",\"reason\":{},\"at_ms\":{now},\"active\":{},\"dropped\":{},\"snapshot\":{}}}",
            json::quoted(reason),
            inner.active.len(),
            inner.dropped,
            json::quoted(snapshot),
        );
        let mut requests: Vec<&u64> = inner.active.keys().collect();
        requests.sort();
        for request in requests {
            let study = &inner.active[request];
            let _ = writeln!(
                out,
                "{{\"ev\":\"study\",\"request\":{request},\"params\":{},\"started_ms\":{},\"last_progress_ms\":{},\"done\":{},\"total\":{},\"stalled\":{}}}",
                json::quoted(&study.params),
                study.started_ms,
                study.last_progress_ms,
                study.done,
                study.total,
                study.dumped,
            );
        }
        for e in &inner.ring {
            let _ = writeln!(
                out,
                "{{\"ev\":\"flight\",\"t_ms\":{},\"request\":{},\"kind\":{},\"detail\":{}}}",
                e.t_ms,
                e.request,
                json::quoted(e.kind),
                json::quoted(&e.detail),
            );
        }
        out
    }

    /// Writes the post-mortem to a uniquely named file under `dir`
    /// (`flightrec-<pid>-<seq>.jsonl`), creating the directory if
    /// needed. Returns the path written.
    pub fn dump_to_file(
        &self,
        dir: &Path,
        reason: &str,
        snapshot: &str,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flightrec-{}-{seq}.jsonl", std::process::id()));
        std::fs::write(&path, self.dump_to_string(reason, snapshot))?;
        Ok(path)
    }
}

/// The stall detector: wakes every fraction of the deadline, asks the
/// recorder for studies past it, and writes one post-mortem per newly
/// stalled study. Holds only a snapshot closure (not the engine), so
/// stopping the server never deadlocks on the watchdog.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the watchdog thread. `snapshot` is called at dump time to
    /// capture the server's lane/queue/cache state as one line.
    pub fn spawn(
        recorder: Arc<FlightRecorder>,
        deadline: Duration,
        dir: PathBuf,
        snapshot: Box<dyn Fn() -> String + Send>,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let tick = (deadline / 4).clamp(Duration::from_millis(10), Duration::from_millis(250));
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                for stalled in recorder.take_stalled(deadline) {
                    let reason = format!(
                        "watchdog: request {} made no progress for {}ms ({})",
                        stalled.request, stalled.stalled_ms, stalled.params
                    );
                    recorder.record(stalled.request, "watchdog.stalled", reason.clone());
                    panoptes_obs::count!("serve.watchdog.stalls", Runtime);
                    match recorder.dump_to_file(&dir, &reason, &snapshot()) {
                        Ok(path) => panoptes_obs::progress::emit(
                            "watchdog",
                            &format!("{reason}; post-mortem at {}", path.display()),
                        ),
                        Err(e) => panoptes_obs::progress::emit(
                            "watchdog",
                            &format!("{reason}; post-mortem write FAILED: {e}"),
                        ),
                    }
                }
            }
        });
        Watchdog {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops and joins the watchdog thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// A recorder registered for panic-time dumps (weak: the hook must not
/// keep a stopped server's state alive) and its dump directory.
type PanicEntry = (Weak<FlightRecorder>, PathBuf);

fn panic_registry() -> &'static Mutex<Vec<PanicEntry>> {
    static REGISTRY: OnceLock<Mutex<Vec<PanicEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers `recorder` for a panic-time post-mortem into `dir` and
/// installs the process-wide chained panic hook (once; subsequent calls
/// only extend the registry). On panic, every still-live registered
/// recorder dumps, then the previous hook runs (so the usual backtrace
/// still prints).
pub fn install_panic_hook(recorder: &Arc<FlightRecorder>, dir: PathBuf) {
    panic_registry()
        .lock()
        .expect("panic registry lock")
        .push((Arc::downgrade(recorder), dir));
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = format!("panic: {info}");
            if let Ok(registry) = panic_registry().lock() {
                for (recorder, dir) in registry.iter() {
                    if let Some(recorder) = recorder.upgrade() {
                        let _ = recorder.dump_to_file(dir, &reason, "panic: no snapshot");
                    }
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_reports_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(i, "request.accepted", format!("r{i}"));
        }
        let dump = rec.dump_to_string("test", "lanes=0");
        assert_eq!(dump.matches("\"ev\":\"flight\"").count(), 4, "ring keeps 4");
        assert!(dump.contains("\"dropped\":6"));
        assert!(dump.contains("\"detail\":\"r9\""), "newest survives");
        assert!(!dump.contains("\"detail\":\"r0\""), "oldest dropped");
    }

    #[test]
    fn dump_lists_active_studies_and_meta() {
        let rec = FlightRecorder::new(16);
        rec.study_started(3, "--seed 0x51".into(), 14);
        rec.study_progress(3, 2, 14);
        let dump = rec.dump_to_string("why \"quoted\"", "lanes=1 queued=4");
        let meta = dump.lines().next().expect("meta line");
        assert!(meta.contains("\"ev\":\"flightmeta\""));
        assert!(meta.contains("\"reason\":\"why \\\"quoted\\\"\""));
        assert!(meta.contains("\"snapshot\":\"lanes=1 queued=4\""));
        assert!(dump.contains("\"ev\":\"study\",\"request\":3"));
        assert!(dump.contains("\"done\":2,\"total\":14"));
        rec.study_finished(3, "study.done", "ok".into());
        let after = rec.dump_to_string("again", "lanes=0");
        assert!(
            !after.contains("\"ev\":\"study\""),
            "finished study deregisters"
        );
    }

    #[test]
    fn take_stalled_fires_once_per_study_and_spares_fresh_progress() {
        let rec = FlightRecorder::new(16);
        rec.study_started(1, "wedged".into(), 4);
        rec.study_started(2, "alive".into(), 4);
        std::thread::sleep(Duration::from_millis(30));
        rec.study_progress(2, 1, 4);
        let stalled = rec.take_stalled(Duration::from_millis(20));
        assert_eq!(stalled.len(), 1);
        assert_eq!(stalled[0].request, 1);
        assert!(stalled[0].stalled_ms >= 20);
        assert!(
            rec.take_stalled(Duration::from_millis(20)).is_empty(),
            "a wedged study dumps once, not once per tick"
        );
    }
}
