//! Percent-encoding (RFC 3986) for URL components.

/// Returns true for bytes that never need escaping in any URL component
/// (RFC 3986 "unreserved" set).
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'.' | b'_' | b'~')
}

/// Percent-encodes `input` for use in a URL *path*: unreserved bytes and a
/// few path-safe delimiters (`/`, `:`, `@`) pass through.
pub fn percent_encode(input: &str) -> String {
    encode_with(input, |b| is_unreserved(b) || matches!(b, b'/' | b':' | b'@'))
}

/// Percent-encodes `input` for use as a query *component* (a key or a
/// value): only unreserved bytes pass through, so `&`, `=`, `+` and `/`
/// are all escaped.
pub fn percent_encode_component(input: &str) -> String {
    encode_with(input, is_unreserved)
}

/// Length in bytes of [`percent_encode_component`]'s output, without
/// building the string: unreserved bytes cost 1, everything else 3
/// (`%XX`). Lets wire-size accounting skip the encode allocation.
pub fn percent_encode_component_len(input: &str) -> usize {
    input.bytes().map(|b| if is_unreserved(b) { 1 } else { 3 }).sum()
}

fn encode_with(input: &str, keep: impl Fn(u8) -> bool) -> String {
    let mut out = String::with_capacity(input.len());
    for &b in input.as_bytes() {
        if keep(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(char::from_digit((b >> 4) as u32, 16).unwrap().to_ascii_uppercase());
            out.push(char::from_digit((b & 0xf) as u32, 16).unwrap().to_ascii_uppercase());
        }
    }
    out
}

/// Decodes percent-escapes. Invalid escapes (`%` not followed by two hex
/// digits) are passed through literally — the lenient behaviour real
/// traffic analysis needs, since trackers emit malformed escapes.
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16));
            let lo = bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16));
            if let (Some(hi), Some(lo)) = (hi, lo) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_escapes_reserved() {
        assert_eq!(percent_encode_component("a=b&c"), "a%3Db%26c");
        assert_eq!(percent_encode_component("hello world"), "hello%20world");
        assert_eq!(percent_encode_component("safe-._~"), "safe-._~");
    }

    #[test]
    fn path_keeps_slashes() {
        assert_eq!(percent_encode("/watch/v 1"), "/watch/v%201");
    }

    #[test]
    fn decode_roundtrip() {
        for s in ["", "plain", "a=b&c d", "ünïcode/✓", "100%"] {
            assert_eq!(percent_decode(&percent_encode_component(s)), s);
        }
    }

    #[test]
    fn encoded_component_len_matches_encoder() {
        for s in ["", "plain", "a=b&c d", "ünïcode/✓", "100%", "safe-._~"] {
            assert_eq!(percent_encode_component_len(s), percent_encode_component(s).len());
        }
    }

    #[test]
    fn lenient_on_malformed_escape() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn decodes_mixed_case_hex() {
        assert_eq!(percent_decode("%2f%2F"), "//");
    }
}
