//! Edge 113.0.1774.38 — reports every visited domain to the Bing API
//! (§3.2), keeps doing so in incognito, sends heavy telemetry (Fig 2
//! ratio ≈ 0.38), and talks to adjust/outbrain/zemanta/scorecardresearch
//! (§3.5). Table 2: manufacturer, timezone, resolution, locale,
//! connection type, network type.

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::{DohProvider, ResolverKind};

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, Payload, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("edge.microsoft.com", "/config/v1"),
    NativeCall::ping("config.edge.skype.com", "/config/v1/Edge"),
    NativeCall::ping("www.bing.com", "/client/config"),
    NativeCall::ping("arc.msn.com", "/v3/Delivery/Placement"),
    NativeCall::ping("ntp.msn.com", "/edge/ntp"),
    NativeCall::ping("assets.msn.com", "/resolver/api"),
    NativeCall::ping("c.msn.com", "/c.gif"),
    NativeCall::ping("cdn.msn.com", "/staticsb"),
    NativeCall::ping("smartscreen.microsoft.com", "/api/browser"),
    NativeCall::ping("nav.smartscreen.microsoft.com", "/windows/browser"),
    NativeCall::ping("checkappexec.microsoft.com", "/windows/browser"),
    NativeCall::ping("msedge.api.cdp.microsoft.com", "/api/v1.1/contents"),
    NativeCall::ping("browser.events.data.msn.com", "/OneCollector/1.0"),
    NativeCall::ping("fd.api.iris.microsoft.com", "/v4/api/selection"),
    NativeCall::ping("ris.api.iris.microsoft.com", "/v1/a"),
    NativeCall::ping("mobile.events.data.microsoft.com", "/OneCollector/1.0"),
    NativeCall::ping("edgeservices.bing.com", "/edgesvc/config"),
    NativeCall::ping("static.edge.microsoft.com", "/wallpapers"),
    NativeCall::ping("app.adjust.com", "/attribution"),
    NativeCall::ping("widgets.outbrain.com", "/outbrain.js"),
    NativeCall::ping("b1h.zemanta.com", "/usersync"),
    NativeCall::ping("sb.scorecardresearch.com", "/beacon.js"),
];

const PER_VISIT: &[NativeCall] = &[
    // The §3.2 finding: every visited domain goes to the Bing API, in
    // incognito too.
    NativeCall {
        host: "api.bing.com",
        path: "/browser/report",
        method: Method::Get,
        payload: Payload::DomainOnly { param: "domain" },
        body_pad: 0,
        count: 1,
        respects_incognito: false,
    },
    NativeCall {
        host: "vortex.data.microsoft.com",
        path: "/collect/v1",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 80,
        count: 3,
        respects_incognito: false,
    },
    NativeCall::ping("www.msn.com", "/content/tile"),
];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("ntp.msn.com", "/edge/ntp"),
    NativeCall::ping("assets.msn.com", "/resolver/api"),
    NativeCall::ping("www.msn.com", "/content/tile"),
    NativeCall::ping("arc.msn.com", "/v3/Delivery/Placement"),
    NativeCall::ping("cdn.msn.com", "/staticsb"),
    NativeCall::ping("fd.api.iris.microsoft.com", "/v4/api/selection"),
    NativeCall::ping("edgeservices.bing.com", "/edgesvc/config"),
    NativeCall::ping("c.msn.com", "/c.gif"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    (60, NativeCall {
        host: "vortex.data.microsoft.com",
        path: "/collect/v1",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 80,
        count: 1,
        respects_incognito: false,
    }),
    (90, NativeCall::ping("www.msn.com", "/content/tile")),
    (120, NativeCall::ping("api.bing.com", "/suggestions")),
    (180, NativeCall::ping("app.adjust.com", "/session")),
    (200, NativeCall::ping("widgets.outbrain.com", "/outbrain.js")),
    (240, NativeCall::ping("b1h.zemanta.com", "/usersync")),
    (300, NativeCall::ping("sb.scorecardresearch.com", "/beacon.js")),
];

const PII: &[PiiField] = &[
    PiiField::DeviceManufacturer,
    PiiField::Timezone,
    PiiField::Resolution,
    PiiField::Locale,
    PiiField::ConnectionType,
    PiiField::NetworkType,
];

/// Builds the Edge profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "Edge",
        version: "113.0.1774.38",
        package: "com.microsoft.emmx",
        instrumentation: Instrumentation::Cdp,
        supports_incognito: true,
        resolver: ResolverKind::Doh(DohProvider::Cloudflare),
        adblock: false,
        attempts_h3: true,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: None,
        injects_js_collector: None,
        honors_telemetry_consent: false,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
