//! Spans and events with dual timestamps, recorded per thread.
//!
//! # Recording
//!
//! Every thread that traces owns a private ring buffer
//! ([`RING_CAPACITY`] most-recent events; older events are overwritten,
//! never reallocated). The hot path is lock-free and contention-free by
//! construction — a thread only ever touches its own ring — and when
//! the trace layer is disabled, [`point`] and [`span`] are a single
//! relaxed load and a branch.
//!
//! When a thread exits (fleet workers, analysis workers) its ring
//! drains into the global flush list, so a post-join exporter sees
//! every worker's events; the exporting thread drains its own ring
//! explicitly. [`export_jsonl`] must therefore run after the worker
//! threads have joined — which the fleet and the overlapped study
//! guarantee by scoping their pools.
//!
//! # Dual timestamps
//!
//! Every event carries `wall_ns` — wall-clock nanoseconds since the
//! first trace event of the process — and, when the caller is inside a
//! campaign, `sim_us` — the unit's virtual [`SimClock`] reading. The
//! pair is what makes a trace of this codebase legible: virtual time
//! says *where in the campaign* something happened, wall time says
//! *what it cost*.
//!
//! # Request scoping
//!
//! When a [`crate::ctx::TraceCtx`] is installed on the recording
//! thread (the serve path hands one across every thread boundary),
//! each event is stamped with the request id it served (`req`) and —
//! for events recorded after a hand-off — the parent span on the
//! spawning side (`parent`). Offline traces (`repro --trace-out`)
//! carry no context and omit both keys; the schema is backward
//! compatible in both directions.
//!
//! # JSONL schema
//!
//! One event per line, keys in fixed order (`ev`, `name`, `span`,
//! `thread`, `seq`, `wall_ns`, then optional `sim_us`, `req`,
//! `parent`, `detail`):
//!
//! ```json
//! {"ev":"start","name":"fleet.unit","span":3,"thread":1,"seq":0,"wall_ns":1200,"detail":"Chrome crawl"}
//! {"ev":"end","name":"fleet.unit","span":3,"thread":1,"seq":9,"wall_ns":91200,"sim_us":600000000}
//! {"ev":"start","name":"serve.unit","span":7,"thread":2,"seq":0,"wall_ns":2400,"req":3,"parent":5}
//! ```
//!
//! [`parse_jsonl`] inverts [`export_jsonl`] exactly; the round-trip is
//! asserted byte-identical in this module's tests and in CI against a
//! real `repro --trace-out` run.
//!
//! [`SimClock`]: https://docs.rs/panoptes-simnet

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Events kept per thread; the ring overwrites the oldest beyond this.
pub const RING_CAPACITY: usize = 65_536;

/// What a trace line records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Start,
    /// A span closed.
    End,
    /// A point event (no duration).
    Point,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::Start => "start",
            EventKind::End => "end",
            EventKind::Point => "point",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start / end / point.
    pub kind: EventKind,
    /// The span or event name (dot-separated taxonomy, e.g.
    /// `fleet.unit`, `study.analyze_crawl`).
    pub name: String,
    /// Span id linking a start to its end; 0 for point events.
    pub span: u64,
    /// The recording thread's trace id (dense, assigned on first use).
    pub thread: u64,
    /// Per-thread sequence number (monotonic even across ring
    /// overwrites, so gaps reveal dropped events).
    pub seq: u64,
    /// Wall-clock nanoseconds since the process's first trace event.
    pub wall_ns: u64,
    /// Virtual campaign time in microseconds, when known.
    pub sim_us: Option<u64>,
    /// The request this event served, from the installed
    /// [`crate::ctx::TraceCtx`]; absent outside the serve path.
    pub req: Option<u64>,
    /// The span on the spawning side of the last thread hand-off,
    /// from the installed context; absent when there was none (or when
    /// it would point at this event's own span).
    pub parent: Option<u64>,
    /// Free-form annotation (unit label, shard index, …).
    pub detail: Option<String>,
}

/// The wall-clock anchor: first use pins t=0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
fn wall_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Rings of exited threads, drained in thread-exit order.
fn flushed() -> &'static Mutex<Vec<TraceEvent>> {
    static FLUSHED: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    FLUSHED.get_or_init(|| Mutex::new(Vec::new()))
}

/// One thread's ring. Only the owning thread writes; the drop impl
/// moves the surviving events to the global flush list on thread exit.
struct ThreadRing {
    thread: u64,
    events: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    next_seq: u64,
}

impl ThreadRing {
    fn new() -> ThreadRing {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        ThreadRing {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
            head: 0,
            next_seq: 0,
        }
    }

    fn push(&mut self, kind: EventKind, name: &str, span: u64, sim_us: Option<u64>, detail: Option<String>) {
        let ctx = crate::ctx::current();
        let event = TraceEvent {
            kind,
            name: name.to_string(),
            span,
            thread: self.thread,
            seq: self.next_seq,
            wall_ns: wall_ns(),
            sim_us,
            req: ctx.map(|c| c.request),
            // A span's own id as its parent would be a self-loop (the
            // root span ends after ctx::set_parent points at it), so
            // that case is recorded as parentless.
            parent: ctx
                .map(|c| c.parent_span)
                .filter(|&p| p != 0 && p != span),
            detail,
        };
        self.next_seq += 1;
        if self.events.len() < RING_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % RING_CAPACITY;
        }
    }

    /// The surviving events in recording order.
    fn drain_in_order(&mut self) -> Vec<TraceEvent> {
        let head = std::mem::take(&mut self.head);
        let mut events = std::mem::take(&mut self.events);
        events.rotate_left(head);
        events
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            if let Ok(mut flushed) = flushed().lock() {
                flushed.append(&mut self.drain_in_order());
            }
        }
    }
}

thread_local! {
    static RING: RefCell<ThreadRing> = RefCell::new(ThreadRing::new());
}

fn with_ring(f: impl FnOnce(&mut ThreadRing)) {
    // Re-entrancy and thread-teardown both surface as a failed access;
    // dropping the event is the correct degradation for telemetry.
    let _ = RING.try_with(|ring| {
        if let Ok(mut ring) = ring.try_borrow_mut() {
            f(&mut ring);
        }
    });
}

/// Records a point event. No-op (one relaxed load) when the trace
/// layer is disabled.
#[inline]
pub fn point(name: &str, sim_us: Option<u64>, detail: Option<&str>) {
    if !crate::trace_enabled() {
        return;
    }
    with_ring(|ring| {
        ring.push(EventKind::Point, name, 0, sim_us, detail.map(str::to_string))
    });
}

/// Records a point event whose detail is built lazily: the closure
/// only runs when the trace layer is enabled, so a formatting/allocating
/// detail costs nothing on the disabled path.
#[inline]
pub fn point_with(name: &str, sim_us: Option<u64>, detail: impl FnOnce() -> String) {
    if !crate::trace_enabled() {
        return;
    }
    let detail = detail();
    with_ring(|ring| ring.push(EventKind::Point, name, 0, sim_us, Some(detail)));
}

/// An open span; dropping it records the matching end event. Inert
/// (`None` inside, nothing recorded) when the layer is disabled.
pub struct Span {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    id: u64,
    /// Sim-clock end stamp, settable while the span is open.
    end_sim_us: Option<u64>,
}

impl Span {
    /// Annotates the eventual end event with a sim-clock reading (e.g.
    /// the campaign clock after the unit finished).
    pub fn end_sim_us(&mut self, sim_us: u64) {
        if let Some(open) = &mut self.open {
            open.end_sim_us = Some(sim_us);
        }
    }

    /// The span's id (`None` when the layer was disabled at open).
    /// This is what [`crate::ctx::set_parent`] is fed so events on the
    /// far side of a thread hand-off can point back here.
    pub fn id(&self) -> Option<u64> {
        self.open.as_ref().map(|open| open.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            with_ring(|ring| {
                ring.push(EventKind::End, open.name, open.id, open.end_sim_us, None)
            });
        }
    }
}

/// Opens a span. One relaxed load and a branch when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_at(name, None, None)
}

/// Opens a span with a sim-clock start stamp and/or a detail string.
///
/// The detail is evaluated by the **caller**, enabled or not — library
/// hot paths must use [`span_with`] instead so the allocation only
/// happens when the layer is on (enforced by the `check_no_cloning.sh`
/// trace-hot-path gate).
pub fn span_at(name: &'static str, sim_us: Option<u64>, detail: Option<String>) -> Span {
    if !crate::trace_enabled() {
        return Span { open: None };
    }
    let id = next_span_id();
    with_ring(|ring| ring.push(EventKind::Start, name, id, sim_us, detail));
    Span { open: Some(OpenSpan { name, id, end_sim_us: None }) }
}

/// Opens a span whose detail is built lazily: the closure only runs
/// when the trace layer is enabled. One relaxed load and a branch when
/// disabled — no formatting, no allocation.
#[inline]
pub fn span_with(name: &'static str, sim_us: Option<u64>, detail: impl FnOnce() -> String) -> Span {
    if !crate::trace_enabled() {
        return Span { open: None };
    }
    let id = next_span_id();
    let detail = detail();
    with_ring(|ring| ring.push(EventKind::Start, name, id, sim_us, Some(detail)));
    Span { open: Some(OpenSpan { name, id, end_sim_us: None }) }
}

/// Removes and returns every recorded event: the exited threads' rings
/// (flush order) followed by the calling thread's own ring, then sorted
/// by wall time (ties by thread then seq). Call after worker threads
/// have joined; live foreign threads' rings are not visible.
pub fn drain() -> Vec<TraceEvent> {
    let mut events = {
        let mut flushed = flushed().lock().expect("trace flush list poisoned");
        std::mem::take(&mut *flushed)
    };
    with_ring(|ring| events.append(&mut ring.drain_in_order()));
    events.sort_by_key(|e| (e.wall_ns, e.thread, e.seq));
    events
}

/// Serialises events to the JSONL schema, one event per line, keys in
/// canonical order. [`parse_jsonl`] inverts this byte-exactly.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str("{\"ev\":\"");
        out.push_str(e.kind.label());
        out.push_str("\",\"name\":\"");
        escape_into(&e.name, &mut out);
        let _ = write!(
            out,
            "\",\"span\":{},\"thread\":{},\"seq\":{},\"wall_ns\":{}",
            e.span, e.thread, e.seq, e.wall_ns
        );
        if let Some(sim_us) = e.sim_us {
            let _ = write!(out, ",\"sim_us\":{sim_us}");
        }
        if let Some(req) = e.req {
            let _ = write!(out, ",\"req\":{req}");
        }
        if let Some(parent) = e.parent {
            let _ = write!(out, ",\"parent\":{parent}");
        }
        if let Some(detail) = &e.detail {
            out.push_str(",\"detail\":\"");
            escape_into(detail, &mut out);
            out.push('"');
        }
        out.push_str("}\n");
    }
    out
}

/// Drains every recorded event and serialises it — the `--trace-out`
/// export.
pub fn export_jsonl() -> String {
    to_jsonl(&drain())
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?);
            }
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

/// Parses one JSONL trace document (the inverse of [`to_jsonl`]).
/// Tolerates any key order; rejects unknown keys, missing required
/// keys, and malformed JSON, with the offending line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(
            parse_line(line).map_err(|e| format!("trace line {}: {e}", i + 1))?,
        );
    }
    Ok(events)
}

fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut ev = None;
    let mut name = None;
    let mut span = None;
    let mut thread = None;
    let mut seq = None;
    let mut wall_ns = None;
    let mut sim_us = None;
    let mut req = None;
    let mut parent = None;
    let mut detail = None;

    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',');
        let (key, after_key) = take_string(rest)?;
        let after_colon = after_key.strip_prefix(':').ok_or("expected ':'")?;
        let value_rest = match key.as_str() {
            "ev" | "name" | "detail" => {
                let (value, r) = take_string(after_colon)?;
                match key.as_str() {
                    "ev" => {
                        ev = Some(match value.as_str() {
                            "start" => EventKind::Start,
                            "end" => EventKind::End,
                            "point" => EventKind::Point,
                            other => return Err(format!("unknown ev {other:?}")),
                        })
                    }
                    "name" => name = Some(value),
                    _ => detail = Some(value),
                }
                r
            }
            "span" | "thread" | "seq" | "wall_ns" | "sim_us" | "req" | "parent" => {
                let digits_len = after_colon.bytes().take_while(u8::is_ascii_digit).count();
                if digits_len == 0 {
                    return Err(format!("expected number for {key}"));
                }
                let value: u64 = after_colon[..digits_len]
                    .parse()
                    .map_err(|_| format!("number overflow in {key}"))?;
                match key.as_str() {
                    "span" => span = Some(value),
                    "thread" => thread = Some(value),
                    "seq" => seq = Some(value),
                    "wall_ns" => wall_ns = Some(value),
                    "sim_us" => sim_us = Some(value),
                    "req" => req = Some(value),
                    _ => parent = Some(value),
                }
                &after_colon[digits_len..]
            }
            other => return Err(format!("unknown key {other:?}")),
        };
        rest = value_rest;
    }

    Ok(TraceEvent {
        kind: ev.ok_or("missing ev")?,
        name: name.ok_or("missing name")?,
        span: span.ok_or("missing span")?,
        thread: thread.ok_or("missing thread")?,
        seq: seq.ok_or("missing seq")?,
        wall_ns: wall_ns.ok_or("missing wall_ns")?,
        sim_us,
        req,
        parent,
        detail,
    })
}

/// Consumes a leading JSON string, returning (unescaped, rest).
fn take_string(s: &str) -> Result<(String, &str), String> {
    let inner = s.strip_prefix('"').ok_or("expected '\"'")?;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((unescape(&inner[..i])?, &inner[i + 1..]));
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace tests mutate the one global layer switch and drain the one
    /// global flush list, so they serialise on this lock.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = serial();
        crate::disable(crate::TRACE);
        drop(drain());
        point("test.noop", None, None);
        drop(span("test.noop.span"));
        assert!(drain().is_empty());
    }

    #[test]
    fn span_links_start_to_end_and_worker_rings_flush() {
        let _guard = serial();
        crate::enable(crate::TRACE);
        drop(drain());
        {
            let mut s = span_at("test.unit", Some(0), Some("label".into()));
            s.end_sim_us(600);
            point("test.point", Some(250), None);
        }
        std::thread::spawn(|| point("test.worker", None, Some("w")))
            .join()
            .expect("worker");
        let events = drain();
        crate::disable(crate::TRACE);
        assert_eq!(events.len(), 4);
        let start = events.iter().find(|e| e.kind == EventKind::Start).expect("start");
        let end = events.iter().find(|e| e.kind == EventKind::End).expect("end");
        assert_eq!(start.name, "test.unit");
        assert_eq!(start.detail.as_deref(), Some("label"));
        assert_eq!(start.sim_us, Some(0));
        assert_eq!(end.span, start.span);
        assert_eq!(end.sim_us, Some(600));
        assert!(end.wall_ns >= start.wall_ns);
        assert!(events.iter().any(|e| e.name == "test.worker"));
        assert!(drain().is_empty(), "drain consumes");
    }

    #[test]
    fn jsonl_roundtrip_is_byte_identical() {
        let events = vec![
            TraceEvent {
                kind: EventKind::Start,
                name: "fleet.unit".into(),
                span: 3,
                thread: 1,
                seq: 0,
                wall_ns: 1200,
                sim_us: None,
                req: None,
                parent: None,
                detail: Some("Chrome crawl \"quoted\" \\ tab\t".into()),
            },
            TraceEvent {
                kind: EventKind::End,
                name: "fleet.unit".into(),
                span: 3,
                thread: 1,
                seq: 9,
                wall_ns: 91_200,
                sim_us: Some(600_000_000),
                req: None,
                parent: None,
                detail: None,
            },
            TraceEvent {
                kind: EventKind::Point,
                name: "progress".into(),
                span: 0,
                thread: 0,
                seq: 42,
                wall_ns: 7,
                sim_us: Some(0),
                req: None,
                parent: None,
                detail: Some("newline\nand control\u{1}".into()),
            },
            TraceEvent {
                kind: EventKind::Start,
                name: "serve.unit".into(),
                span: 7,
                thread: 2,
                seq: 0,
                wall_ns: 2400,
                sim_us: None,
                req: Some(3),
                parent: Some(5),
                detail: Some("study-1 crawl".into()),
            },
        ];
        let jsonl = to_jsonl(&events);
        let parsed = parse_jsonl(&jsonl).expect("parses");
        assert_eq!(parsed, events);
        assert_eq!(to_jsonl(&parsed), jsonl, "re-emit must be byte-identical");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"ev\":\"start\"}").is_err(), "missing keys");
        assert!(
            parse_jsonl(
                "{\"ev\":\"warp\",\"name\":\"x\",\"span\":0,\"thread\":0,\"seq\":0,\"wall_ns\":0}"
            )
            .is_err(),
            "unknown kind"
        );
        assert!(
            parse_jsonl(
                "{\"ev\":\"point\",\"name\":\"x\",\"span\":0,\"thread\":0,\"seq\":0,\"wall_ns\":0,\"bogus\":1}"
            )
            .is_err(),
            "unknown key"
        );
    }

    #[test]
    fn installed_ctx_stamps_request_and_parent_across_threads() {
        let _guard = serial();
        crate::enable(crate::TRACE);
        drop(drain());

        let root_id;
        {
            let _ctx = crate::ctx::enter(crate::ctx::TraceCtx { request: 77, parent_span: 0 });
            let root = span("test.request");
            root_id = root.id().expect("enabled span has an id");
            crate::ctx::set_parent(root_id);
            point("test.annotation", None, None);

            // The explicit hand-off: capture, ship, re-enter.
            let handed = crate::ctx::current().expect("ctx installed");
            std::thread::spawn(move || {
                let _g = crate::ctx::enter(handed);
                drop(span("test.unit"));
            })
            .join()
            .expect("worker");
        }
        let events = drain();
        crate::disable(crate::TRACE);

        assert!(events.iter().all(|e| e.req == Some(77)), "every event carries the request");
        let root_start = events
            .iter()
            .find(|e| e.name == "test.request" && e.kind == EventKind::Start)
            .expect("root start");
        assert_eq!(root_start.parent, None, "root opened before set_parent");
        let root_end = events
            .iter()
            .find(|e| e.name == "test.request" && e.kind == EventKind::End)
            .expect("root end");
        assert_eq!(root_end.parent, None, "a span never parents itself");
        let annotation = events.iter().find(|e| e.name == "test.annotation").expect("point");
        assert_eq!(annotation.parent, Some(root_id));
        let unit_start = events
            .iter()
            .find(|e| e.name == "test.unit" && e.kind == EventKind::Start)
            .expect("unit start");
        assert_eq!(unit_start.parent, Some(root_id), "hand-off preserves the parent span");
    }

    #[test]
    fn ring_overwrites_oldest_but_keeps_seq() {
        let mut ring = ThreadRing::new();
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(EventKind::Point, "spin", 0, Some(i as u64), None);
        }
        let events = ring.drain_in_order();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(events.first().map(|e| e.seq), Some(10));
        assert_eq!(events.last().map(|e| e.seq), Some((RING_CAPACITY + 10 - 1) as u64));
        // In order despite the wrap.
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }
}
