//! # panoptes-mitm
//!
//! The transparent man-in-the-middle proxy at the heart of the Panoptes
//! measurement (§2.2–2.3 of the paper): a reimplementation of the
//! mitmproxy deployment the authors ran in a Debian container on the
//! tablet, in transparent mode, with a custom addon that splits tainted
//! (web-engine) traffic from untainted (native app) traffic.
//!
//! * [`flow`] — the captured-flow record and its classification
//!   (`Engine` / `Native` / `PinnedOpaque`),
//! * [`addon`] — the mitmproxy-style addon API (request/response hooks),
//! * [`taint`] — the taint-splitting addon: detect the piggybacked
//!   `x-panoptes-taint` header, verify its token, strip it, and classify,
//! * [`proxy`] — the transparent proxy itself: forge a certificate for
//!   the SNI, run the addon chain, forward upstream, record the flow,
//! * [`store`] — the flow database with JSONL persistence ("the two
//!   different categories of the requests are finally stored in different
//!   local databases", §2.3),
//! * [`har`] — HAR 1.2 export for off-the-shelf inspection tooling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addon;
pub mod flow;
pub mod har;
pub mod proxy;
pub mod store;
pub mod taint;

pub use addon::{Addon, InterceptedRequest, Verdict};
pub use flow::{Flow, FlowClass};
pub use proxy::TransparentProxy;
pub use store::{FlowSnapshot, FlowStore, Flows};
pub use taint::{TaintAddon, TAINT_HEADER};
