//! Offline shim for `rand` 0.8.
//!
//! Provides the exact surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{fill, gen_range, gen_bool}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! portable, and fully deterministic across platforms, which is all the
//! campaign-determinism guarantee needs. It is **not** stream-compatible
//! with upstream `StdRng` (ChaCha12); nothing in the workspace depends
//! on upstream's exact stream, only on shape and reproducibility.

#![forbid(unsafe_code)]

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample a `T` uniformly — the shim's
/// equivalent of `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_below(rng, span);
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = uniform_below(rng, span);
                (lo as i128 + draw as i128) as $ty
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling (span ≤ 2^64 here,
/// since every supported primitive fits in 64 bits).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64();
    }
    let span = span as u64;
    // Reject the final partial block so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let draw = rng.next_u64();
        if draw <= zone {
            return draw % span;
        }
    }
}

pub mod rngs {
    //! Named generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..=10u32);
            assert!((3..=10).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut rng2 = StdRng::seed_from_u64(42);
        let mut buf2 = [0u8; 13];
        rng2.fill(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gen_range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }
}
