//! §3.2's sensitive-content check: the history-leaking browsers
//! "continue to leak the entire URL the user visits" even for sites in
//! Google Ads' blocked sensitive categories (religion, sexuality,
//! politics, health) — no local filtering at all.

use std::collections::HashSet;

use panoptes::campaign::CampaignResult;

use crate::facts::capture_facts;

/// One browser's sensitive-leak row.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitiveRow {
    /// Browser name.
    pub browser: String,
    /// Sensitive URLs visited in the campaign.
    pub sensitive_visits: usize,
    /// How many of them were observed leaking in full (path included).
    pub sensitive_urls_leaked: usize,
    /// Example leaked URL (the smoking gun for the report).
    pub example: Option<String>,
}

/// Checks whether sensitive visits leak in full detail.
pub fn sensitive_row(result: &CampaignResult) -> SensitiveRow {
    let sensitive_urls: HashSet<&str> = result
        .visits
        .iter()
        .filter(|v| v.sensitive)
        .map(|v| v.url.as_str())
        .collect();
    let visited_domains: HashSet<&str> =
        result.visits.iter().map(|v| v.domain.as_str()).collect();

    let mut leaked: HashSet<String> = HashSet::new();
    let snap = result.store.snapshot();
    let facts = capture_facts(&snap);
    for view in facts.views(snap.all()) {
        if visited_domains.contains(view.registrable_domain()) {
            continue; // first-party traffic is not a leak
        }
        for (_, decoded_values) in view.decoded_observations() {
            for decoded in decoded_values {
                if sensitive_urls.contains(decoded.as_str()) {
                    leaked.insert(decoded.clone());
                }
            }
        }
    }
    let example = leaked.iter().min().cloned();
    SensitiveRow {
        browser: result.profile.name.to_string(),
        sensitive_visits: sensitive_urls.len(),
        sensitive_urls_leaked: leaked.len(),
        example,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn full_url_leakers_spare_nothing_sensitive() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 8, ..Default::default() });
        let config = CampaignConfig::default();
        for name in ["Yandex", "QQ", "UC International"] {
            let result =
                run_crawl(&world, &profile_by_name(name).unwrap(), &world.sites, &config);
            let row = sensitive_row(&result);
            assert_eq!(row.sensitive_visits, 8, "{name}");
            assert_eq!(
                row.sensitive_urls_leaked, 8,
                "{name}: no local filtering of sensitive categories"
            );
            let example = row.example.unwrap();
            assert!(
                example.contains("/health/")
                    || example.contains("/religion/")
                    || example.contains("/sexuality/")
                    || example.contains("/society/"),
                "{example}"
            );
        }
    }

    #[test]
    fn domain_only_leakers_do_not_leak_full_sensitive_urls() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 6, ..Default::default() });
        let result = run_crawl(
            &world,
            &profile_by_name("Edge").unwrap(),
            &world.sites,
            &CampaignConfig::default(),
        );
        let row = sensitive_row(&result);
        assert_eq!(row.sensitive_urls_leaked, 0, "Edge reports domains, not full URLs");
    }
}
