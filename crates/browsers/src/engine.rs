//! The web engine: page loading with DNS, cookies, ad blocking, HTTP/3
//! fallback and instrumentation tainting.
//!
//! Everything the engine sends is *website-initiated* traffic, so every
//! request is run through the instrumentation tap (which injects the
//! taint header, §2.3) before it leaves the device. The MITM addon will
//! therefore classify it `Engine` — in contrast to the native calls in
//! [`crate::browser`], which never touch the tap.

use std::collections::HashSet;
use std::sync::Arc;

use panoptes_blocklist::filterlist::easylist_excerpt;
use panoptes_blocklist::FilterList;
use panoptes_device::DeviceProperties;
use panoptes_http::request::HttpVersion;
use panoptes_http::url::Url;
use panoptes_http::useragent::UserAgent;
use panoptes_http::{Atom, CookieJar, Cookie, Request};
use panoptes_simnet::clock::{SimClock, SimInstant};
use panoptes_simnet::dns::ResolverKind;
use panoptes_simnet::net::{ClientCtx, NetError, Network};
use panoptes_simnet::tls::{PinPolicy, TrustStore};
use panoptes_instrument::tap::RequestTap;
use panoptes_web::site::{ResourceKind, SiteSpec};

/// Browsers fetch subresources concurrently; the virtual clock advances
/// by `latency / PARALLELISM` per subresource to approximate that.
const PARALLELISM: u64 = 8;

/// The client identity the engine sends with.
#[derive(Debug, Clone)]
pub struct ClientTemplate {
    /// Kernel UID of the browser process.
    pub uid: u32,
    /// Package name (interned — cloning into each request context is a
    /// reference-count bump).
    pub package: Atom,
    /// Trust store (system roots + the installed Panoptes MITM CA).
    pub trust: TrustStore,
    /// The app's pinning policy.
    pub pins: PinPolicy,
}

impl ClientTemplate {
    /// Builds a transport client context stamped `now`.
    pub fn ctx(&self, now: SimInstant) -> ClientCtx {
        ClientCtx {
            uid: self.uid,
            app_package: self.package.clone(),
            trust: self.trust.clone(),
            pins: self.pins.clone(),
            time: now,
        }
    }
}

/// Counters from one page load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Engine requests actually sent (including DoH? no — DoH is native).
    pub sent: u32,
    /// Requests suppressed by the engine-side filterlist (CocCoc).
    pub adblocked: u32,
    /// HTTP/3 attempts dropped by the filter, retried over h2.
    pub h3_fallbacks: u32,
    /// Requests that failed at the network layer.
    pub failures: u32,
    /// Native DoH lookups the load triggered.
    pub doh_lookups: u32,
}

/// Per-session engine state: DNS cache, QUIC memory, incognito cookies.
pub struct EngineSession {
    resolver: ResolverKind,
    filter: Option<Arc<FilterList>>,
    attempts_h3: bool,
    dns_cache: HashSet<String>,
    h3_blocked: HashSet<Atom>,
    /// Cookie jar used in incognito (discarded when the session ends).
    pub incognito_jar: CookieJar,
    user_agent: String,
}

impl EngineSession {
    /// A fresh engine session.
    pub fn new(
        resolver: ResolverKind,
        adblock: bool,
        attempts_h3: bool,
        browser: &str,
        version: &str,
    ) -> EngineSession {
        EngineSession::with_filter(
            resolver,
            adblock.then(|| Arc::new(easylist_excerpt())),
            attempts_h3,
            browser,
            version,
        )
    }

    /// A fresh engine session over an already-compiled filterlist.
    ///
    /// Compiling the easylist excerpt (rule parse + Aho–Corasick DFA
    /// build) is per-session work that the serving layer dedupes across
    /// concurrent studies: every adblocking browser in every request
    /// shares one immutable compiled list via the `Arc`. Behaviour is
    /// identical to [`EngineSession::new`] — the list is read-only after
    /// compilation, so sharing cannot change what a session observes.
    pub fn with_filter(
        resolver: ResolverKind,
        filter: Option<Arc<FilterList>>,
        attempts_h3: bool,
        browser: &str,
        version: &str,
    ) -> EngineSession {
        EngineSession {
            resolver,
            filter,
            attempts_h3,
            dns_cache: HashSet::new(),
            h3_blocked: HashSet::new(),
            incognito_jar: CookieJar::new(),
            user_agent: UserAgent::for_browser(browser, version).render(),
        }
    }

    /// The configured resolver.
    pub fn resolver(&self) -> ResolverKind {
        self.resolver
    }

    /// Resolves `host` through the browser's mechanism. A stub query is
    /// logged by the network; a DoH query is an *untainted HTTPS request*
    /// — native traffic by construction. Results are cached for the
    /// session.
    pub fn ensure_resolved(
        &mut self,
        net: &Network,
        client: &ClientTemplate,
        clock: &mut SimClock,
        host: &str,
        stats: &mut EngineStats,
    ) {
        if !self.dns_cache.insert(host.to_string()) {
            return;
        }
        match self.resolver {
            ResolverKind::LocalStub => {
                let _ = net.resolve_stub(client.uid, host);
            }
            ResolverKind::Doh(provider) => {
                let mut req = provider.query_request(host);
                req.headers.set("user-agent", self.user_agent.clone());
                match net.send_http(&client.ctx(clock.now()), req) {
                    Ok((_, report)) => {
                        clock.advance(panoptes_simnet::SimDuration(
                            report.latency.0 / PARALLELISM,
                        ));
                        stats.doh_lookups += 1;
                    }
                    Err(_) => stats.failures += 1,
                }
                net.log_doh_query(client.uid, host, provider);
            }
        }
    }

    /// Sends one engine request: resolve, apply filterlist, attempt h3
    /// once per host, taint through the tap, attach cookies, dispatch,
    /// store cookies. Returns the response when one was received.
    #[allow(clippy::too_many_arguments)]
    fn fetch(
        &mut self,
        net: &Network,
        client: &ClientTemplate,
        clock: &mut SimClock,
        tap: Option<&Arc<dyn RequestTap>>,
        jar: &mut CookieJar,
        url: Url,
        stats: &mut EngineStats,
        full_latency: bool,
    ) -> Option<panoptes_http::Response> {
        let host = url.host_atom().clone();
        let url_text = url.to_string_full();
        if let Some(filter) = &self.filter {
            if filter.should_block(&host, &url_text) {
                stats.adblocked += 1;
                return None;
            }
        }
        self.ensure_resolved(net, client, clock, &host, stats);

        let mut req = Request::get(url);
        req.headers.set("user-agent", self.user_agent.clone());
        req.headers.set("accept", "text/html,application/xhtml+xml,*/*;q=0.8");
        req.headers.set("accept-language", "en-GR,en;q=0.9,el;q=0.8");
        req.headers.set("accept-encoding", "gzip, deflate, br");
        req.headers.set("referer", format!("https://{host}/"));
        if let Some(cookie) = jar.header_for(&host) {
            req.headers.set("cookie", cookie);
        }
        if let Some(tap) = tap {
            tap.on_engine_request(&mut req);
        }

        // QUIC first where supported; the Panoptes filter drops it and
        // the engine falls back to h2 (§2.2).
        if self.attempts_h3 && !self.h3_blocked.contains(&host) {
            let h3 = req.clone().with_version(HttpVersion::H3);
            match net.send_http(&client.ctx(clock.now()), h3) {
                Err(NetError::Dropped) => {
                    self.h3_blocked.insert(host.clone());
                    stats.h3_fallbacks += 1;
                }
                Ok((resp, report)) => {
                    // No filter rule for this app: h3 went straight out.
                    self.h3_blocked.insert(host.clone());
                    return Some(self.finish(resp, report, clock, jar, &host, stats, full_latency));
                }
                Err(_) => {
                    self.h3_blocked.insert(host.clone());
                }
            }
        }

        match net.send_http(&client.ctx(clock.now()), req.with_version(HttpVersion::H2)) {
            Ok((resp, report)) => {
                Some(self.finish(resp, report, clock, jar, &host, stats, full_latency))
            }
            Err(_) => {
                stats.failures += 1;
                None
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        resp: panoptes_http::Response,
        report: panoptes_simnet::TransportReport,
        clock: &mut SimClock,
        jar: &mut CookieJar,
        host: &str,
        stats: &mut EngineStats,
        full_latency: bool,
    ) -> panoptes_http::Response {
        let advance =
            if full_latency { report.latency.0 } else { report.latency.0 / PARALLELISM };
        clock.advance(panoptes_simnet::SimDuration(advance));
        let domain = panoptes_http::url::registrable_domain(host);
        for value in resp.headers.get_all("set-cookie") {
            if let Some(cookie) = Cookie::parse_set_cookie(value, &domain) {
                jar.store(cookie);
            }
        }
        stats.sent += 1;
        resp
    }

    /// Loads a site's landing page. Returns the stats and the virtual
    /// time `DOMContentLoaded` fired (`None` if the page is slower than
    /// the simulated horizon — the crawler's 60-second rule is applied by
    /// the caller).
    #[allow(clippy::too_many_arguments)]
    pub fn load_page(
        &mut self,
        net: &Network,
        client: &ClientTemplate,
        clock: &mut SimClock,
        tap: Option<&Arc<dyn RequestTap>>,
        persistent_jar: &mut CookieJar,
        incognito: bool,
        site: &SiteSpec,
        props: &DeviceProperties,
        js_collector: Option<&str>,
    ) -> (EngineStats, Option<SimInstant>) {
        let mut stats = EngineStats::default();
        let start = clock.now();

        // Split borrows: incognito uses the session-scoped jar.
        let mut scratch;
        let jar: &mut CookieJar = if incognito {
            scratch = std::mem::take(&mut self.incognito_jar);
            &mut scratch
        } else {
            persistent_jar
        };

        // 1. Main document (full latency — everything waits for it).
        // Real top sites answer on the apex with a redirect to www; the
        // engine follows up to three hops, each a captured flow.
        let doc_url = Url::parse(&site.url_string()).expect("site urls are valid");
        let mut current = doc_url.clone();
        for _hop in 0..=3 {
            let response =
                self.fetch(net, client, clock, tap, jar, current.clone(), &mut stats, true);
            match response {
                Some(resp) if resp.status.is_redirect() => {
                    match resp.headers.get("location").and_then(|l| Url::parse(l).ok()) {
                        Some(next) => current = next,
                        None => break,
                    }
                }
                _ => break,
            }
        }

        // 2. Subresources, third parties, ads (parallel-ish).
        for r in &site.page.resources {
            let url = Url::parse(&r.url_string()).expect("resource urls are valid");
            // Engine-side ad blocking also consults the resource kind:
            // easylist's URL rules plus the element-hiding heuristics.
            if self.filter.is_some() && r.kind == ResourceKind::Ad {
                // Covered by the filterlist path inside fetch(); kept
                // explicit so blocked ads never even resolve DNS.
                let url_text = url.to_string_full();
                if self
                    .filter
                    .as_ref()
                    .is_some_and(|f| f.should_block(url.host(), &url_text))
                {
                    stats.adblocked += 1;
                    continue;
                }
            }
            self.fetch(net, client, clock, tap, jar, url, &mut stats, false);
        }

        // 3. The UC International trick (§3.2): an injected JS snippet
        // exfiltrates via the *page* — tainted engine traffic.
        if let Some(collector) = js_collector {
            let url = Url::https(collector)
                .with_path("/v1/pv")
                .with_query_param("url", &doc_url.to_string_full())
                .with_query_param("city", &props.city)
                .with_query_param("isp", &props.isp);
            self.fetch(net, client, clock, tap, jar, url, &mut stats, false);
        }

        if incognito {
            self.incognito_jar = std::mem::take(jar);
        }

        let dcl_offset = panoptes_simnet::SimDuration::from_millis(
            site.page.dom_content_loaded_ms as u64,
        );
        let dcl_at = start.plus(dcl_offset);
        let fired = site.page.dom_content_loaded_ms < 60_000;
        (stats, fired.then_some(dcl_at))
    }

    /// Drops incognito state (leaving incognito mode).
    pub fn end_incognito(&mut self) {
        self.incognito_jar.clear();
    }

    /// Number of hosts in the DNS cache (tests).
    pub fn dns_cache_size(&self) -> usize {
        self.dns_cache.len()
    }
}
