//! The shared origin-server handler: one [`HttpHandler`] implementation
//! serves every address in the simulated world (virtual hosting), with
//! behaviour selected by hostname class — site content, CDN assets, ad
//! exchanges, vendor endpoints, DoH resolvers.

use std::collections::HashMap;

use panoptes_http::json::{self, Value};
use panoptes_http::{Request, Response, StatusCode};
use panoptes_simnet::net::{FlowContext, HttpHandler, NetError, Network};

use crate::site::SiteSpec;
use crate::vendors::{endpoint, Purpose};

/// Content index: `host → path → pre-rendered response`, plus redirect
/// entries, built from the site specs. Nested maps so a request-path
/// lookup probes with borrowed `&str` keys — the former `(String,
/// String)` tuple keys forced two fresh `String`s per served request.
///
/// Responses are rendered once at build time (status line, filler body,
/// `content-length`, `content-type`, session cookie); serving a request
/// clones the template — a `Bytes` reference-count bump plus the header
/// fields — instead of re-deriving headers per request under the shared
/// filler-buffer lock.
#[derive(Debug, Default)]
pub struct Directory {
    resources: HashMap<String, HashMap<String, PreparedResource>>,
    redirects: HashMap<String, HashMap<String, String>>,
    resource_count: usize,
    /// Deep-tail landing hosts → document size. Tail sites are served
    /// formulaically — their static resources carry the byte size in the
    /// path (`/s/{size}/...`) — so a 100k-site world stores one `u32`
    /// per tail site here instead of ~10 pre-rendered templates each.
    tail_documents: HashMap<String, u32>,
}

/// One indexed resource: its declared size and the response template
/// every request for it is answered with.
#[derive(Debug)]
struct PreparedResource {
    size: u32,
    response: Response,
}

impl Directory {
    /// Builds the index from the generated site population.
    pub fn from_sites(sites: &[SiteSpec]) -> Directory {
        let mut dir = Directory::default();
        for site in sites {
            if site.tail {
                dir.tail_documents.insert(site.host.clone(), site.page.document_size);
                continue;
            }
            dir.insert_resource(&site.host, site.landing_path.clone(), site.page.document_size);
            if site.apex_redirect {
                dir.redirects
                    .entry(site.domain.clone())
                    .or_default()
                    .insert(site.landing_path.clone(), site.landing_url_string());
            }
            for r in &site.page.resources {
                dir.insert_resource(&r.host, r.path_without_query(), r.size);
            }
        }
        dir
    }

    fn insert_resource(&mut self, host: &str, path: String, size: u32) {
        let paths = self.resources.entry(host.to_string()).or_default();
        let prepared = PreparedResource { size, response: render_content(&path, size) };
        if paths.insert(path, prepared).is_none() {
            self.resource_count += 1;
        }
    }

    /// The redirect target of `path` on `host`, if one is configured.
    pub fn redirect_of(&self, host: &str, path: &str) -> Option<&str> {
        self.redirects.get(host)?.get(path).map(String::as_str)
    }

    /// Looks up the size of `path` on `host` (query string ignored, as an
    /// origin would route on the path).
    pub fn size_of(&self, host: &str, path: &str) -> Option<u32> {
        Some(self.resources.get(host)?.get(path)?.size)
    }

    /// The pre-rendered response for `path` on `host`, if indexed.
    pub fn response_for(&self, host: &str, path: &str) -> Option<&Response> {
        Some(&self.resources.get(host)?.get(path)?.response)
    }

    /// Serves `path` on `host`: a clone of the pre-rendered template for
    /// head sites, or a formulaically rendered response for deep-tail
    /// hosts (document size from the one-`u32` tail index, resource
    /// sizes decoded from their size-addressed `/s/{size}/...` paths).
    pub fn serve(&self, host: &str, path: &str) -> Option<Response> {
        if let Some(resp) = self.response_for(host, path) {
            return Some(resp.clone());
        }
        let document = *self.tail_documents.get(host)?;
        if path == "/" {
            return Some(render_content(path, document));
        }
        Some(render_content(path, tail_path_size(path)?))
    }

    /// Number of indexed resources.
    pub fn len(&self) -> usize {
        self.resource_count
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }
}

impl crate::site::ResourceSpec {
    /// The path component of the resource without its query string.
    pub fn path_without_query(&self) -> String {
        self.path.split('?').next().unwrap_or(&self.path).to_string()
    }
}

/// The world's single origin handler.
pub struct OriginServer {
    directory: Directory,
}

impl OriginServer {
    /// Builds the handler over a content index.
    pub fn new(directory: Directory) -> OriginServer {
        OriginServer { directory }
    }

    fn vendor_response(&self, purpose: Purpose, net: &Network, req: &Request) -> Response {
        match purpose {
            Purpose::Doh => {
                // Resolve for real against the zone so the client can
                // proceed — and the exchange is a genuine HTTPS flow.
                let name = req.url.query_param("name").unwrap_or_default().to_string();
                let answer = net
                    .resolve_silent(&name)
                    .map(|ip| ip.to_string())
                    .unwrap_or_else(|| "0.0.0.0".to_string());
                let body = json::to_string(&Value::object(vec![
                    ("Status", Value::Number(0.0)),
                    ("Question", Value::object(vec![("name", Value::str(name))])),
                    ("Answer", Value::Array(vec![Value::object(vec![
                        ("type", Value::Number(1.0)),
                        ("data", Value::str(answer)),
                    ])])),
                ]));
                Response::ok(body).with_header("content-type", "application/dns-json")
            }
            Purpose::History | Purpose::Telemetry => {
                Response::status(StatusCode::NO_CONTENT)
            }
            Purpose::Update => Response::sized(2_048),
            Purpose::Config => Response::ok(r#"{"features":{},"ttl":3600}"#)
                .with_header("content-type", "application/json"),
            Purpose::SiteCheck => Response::ok(r#"{"verdict":"clean"}"#)
                .with_header("content-type", "application/json"),
            Purpose::StartPage => Response::sized(15_000),
            Purpose::AdSdk => Response::ok(
                r#"{"bid":{"price":0.42,"creative":"..."},"ttl":300}"#,
            )
            .with_header("content-type", "application/json")
            .with_header("set-cookie", "aduid=sim-cookie-1; Max-Age=31536000"),
            Purpose::SocialGraph => Response::ok(r#"{"data":[],"paging":{}}"#)
                .with_header("content-type", "application/json"),
        }
    }
}

impl HttpHandler for OriginServer {
    fn handle(
        &self,
        net: &Network,
        _ctx: &FlowContext,
        req: Request,
    ) -> Result<Response, NetError> {
        let host = req.url.host();
        let path = req.url.path();

        // Vendor / third-party service endpoints.
        if let Some(ep) = endpoint(host) {
            return Ok(self.vendor_response(ep.purpose, net, &req));
        }

        // Apex → www redirects.
        if let Some(location) = self.directory.redirect_of(host, path) {
            return Ok(Response::status(StatusCode::MOVED_PERMANENTLY)
                .with_header("location", location));
        }

        // Site / CDN content: template clone for head sites, formulaic
        // rendering for deep-tail hosts.
        if let Some(resp) = self.directory.serve(host, path) {
            return Ok(resp);
        }

        // Ad exchanges and trackers accept any path (bid endpoints are
        // dynamic); recognize them by registrable domain (borrowed — no
        // per-request allocation).
        let reg = panoptes_http::url::registrable_suffix(host);
        if crate::thirdparty::AD_NETWORKS.contains(&reg) {
            return Ok(self.vendor_response(Purpose::AdSdk, net, &req));
        }
        if crate::thirdparty::TRACKERS.contains(&reg) {
            return Ok(Response::status(StatusCode::NO_CONTENT));
        }

        Ok(Response::status(StatusCode::NOT_FOUND))
    }
}

/// Renders the response template for a content path: sized filler body,
/// `content-type` by extension, first-party session cookie on document
/// loads. Exactly what the handler used to assemble per request.
fn render_content(path: &str, size: u32) -> Response {
    let mut resp = Response::sized(size as usize);
    resp.headers.set("content-type", content_type_for(path));
    if path == "/" || !path.contains('.') {
        resp.headers.append("set-cookie", "session=sim; Path=/");
    }
    resp
}

/// Decodes the byte size a tail resource path advertises
/// (`/s/18234/app3.js` → `18234`).
fn tail_path_size(path: &str) -> Option<u32> {
    path.strip_prefix("/s/")?.split('/').next()?.parse().ok()
}

fn content_type_for(path: &str) -> &'static str {
    if path.ends_with(".js") {
        "application/javascript"
    } else if path.ends_with(".css") {
        "text/css"
    } else if path.ends_with(".jpg") || path.ends_with(".png") {
        "image/jpeg"
    } else if path.starts_with("/api/") {
        "application/json"
    } else {
        "text/html"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn directory_indexes_documents_and_resources() {
        let sites = generate(&GeneratorConfig { popular: 5, sensitive: 4, ..Default::default() });
        let dir = Directory::from_sites(&sites);
        assert!(!dir.is_empty());
        let site = &sites[0];
        assert_eq!(
            dir.size_of(&site.host, &site.landing_path),
            Some(site.page.document_size)
        );
        let r = &site.page.resources[0];
        assert_eq!(dir.size_of(&r.host, &r.path_without_query()), Some(r.size));
        assert_eq!(dir.size_of("nowhere.example", "/"), None);
    }

    #[test]
    fn content_types() {
        assert_eq!(content_type_for("/a.js"), "application/javascript");
        assert_eq!(content_type_for("/a.css"), "text/css");
        assert_eq!(content_type_for("/img/a.jpg"), "image/jpeg");
        assert_eq!(content_type_for("/api/feed"), "application/json");
        assert_eq!(content_type_for("/"), "text/html");
    }
}
