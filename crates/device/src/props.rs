//! Device properties — the universe of device-specific information a
//! browser *could* leak, mirroring the columns of the paper's Table 2.

use panoptes_http::netaddr::IpAddr;

/// Whether the active connection is metered (Table 2: "Connection type
/// can be Metered or Unmetered").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectionType {
    /// Metered (cellular data plan).
    Metered,
    /// Unmetered (typically Wi-Fi).
    Unmetered,
}

impl ConnectionType {
    /// Wire label used in leaked payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnectionType::Metered => "METERED",
            ConnectionType::Unmetered => "UNMETERED",
        }
    }
}

/// The link technology (Table 2: "Network type can be WiFi or Cellular").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkType {
    /// 802.11 Wi-Fi.
    Wifi,
    /// Mobile data.
    Cellular,
}

impl NetworkType {
    /// Wire label used in leaked payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            NetworkType::Wifi => "WIFI",
            NetworkType::Cellular => "CELLULAR",
        }
    }
}

/// All device-specific information a browser can read, and potentially
/// leak, natively.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProperties {
    /// Marketing device type, e.g. `TABLET` / `PHONE`.
    pub device_type: String,
    /// Hardware manufacturer.
    pub manufacturer: String,
    /// Device model identifier.
    pub model: String,
    /// Android release.
    pub android_version: String,
    /// IANA timezone name.
    pub timezone: String,
    /// Screen resolution (width, height) in pixels.
    pub resolution: (u32, u32),
    /// Screen density in DPI.
    pub dpi: u32,
    /// LAN address on the local network.
    pub local_ip: IpAddr,
    /// Whether the device is rooted.
    pub rooted: bool,
    /// BCP-47 locale.
    pub locale: String,
    /// ISO country code of the vantage point.
    pub country: String,
    /// Geolocation fix (latitude, longitude).
    pub location: (f64, f64),
    /// Metered/unmetered connection.
    pub connection: ConnectionType,
    /// Wi-Fi or cellular link.
    pub network: NetworkType,
    /// ISP name visible to geo-IP services (leaked by UC International).
    pub isp: String,
    /// City-level location (leaked by UC International).
    pub city: String,
}

impl DeviceProperties {
    /// The paper's testbed: a Samsung SM-T580 tablet on Android 11,
    /// crawling "from an EU-based vantage point" (§3) — we place it in
    /// Heraklion, Greece (FORTH's location).
    pub fn testbed_tablet() -> DeviceProperties {
        DeviceProperties {
            device_type: "TABLET".to_string(),
            manufacturer: "Samsung".to_string(),
            model: "SM-T580".to_string(),
            android_version: "11".to_string(),
            timezone: "Europe/Athens".to_string(),
            resolution: (1200, 1920),
            dpi: 224,
            local_ip: IpAddr::new(192, 168, 1, 50),
            rooted: true, // the testbed tablet is instrumented via Frida
            locale: "en-GR".to_string(),
            country: "GR".to_string(),
            location: (35.3387, 25.1442),
            connection: ConnectionType::Unmetered,
            network: NetworkType::Wifi,
            isp: "FORTHnet".to_string(),
            city: "Heraklion".to_string(),
        }
    }

    /// Resolution as the `WxH` string trackers transmit.
    pub fn resolution_string(&self) -> String {
        format!("{}x{}", self.resolution.0, self.resolution.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_defaults() {
        let p = DeviceProperties::testbed_tablet();
        assert_eq!(p.resolution_string(), "1200x1920");
        assert_eq!(p.connection.as_str(), "UNMETERED");
        assert_eq!(p.network.as_str(), "WIFI");
        assert_eq!(p.country, "GR");
        assert!(p.rooted);
    }

    #[test]
    fn wire_labels() {
        assert_eq!(ConnectionType::Metered.as_str(), "METERED");
        assert_eq!(NetworkType::Cellular.as_str(), "CELLULAR");
    }
}
