//! Campaign configuration.

use std::sync::Arc;

use panoptes_blocklist::FilterList;
use panoptes_browsers::BrowsingMode;
use panoptes_simnet::SimDuration;

/// Parameters of one crawling campaign (§2.1's timing rules are the
/// defaults).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: world structure, identifiers and jitter all derive
    /// from it. Same seed ⇒ identical flow databases.
    pub seed: u64,
    /// Browsing mode for the campaign.
    pub mode: BrowsingMode,
    /// Page-readiness budget: "when 60 seconds have passed since the
    /// visit started" (§2.1).
    pub load_timeout: SimDuration,
    /// Post-readiness settle: "an additional period of 5 seconds" (§2.1).
    pub settle: SimDuration,
    /// Local port the transparent proxy listens on.
    pub proxy_port: u16,
    /// Decline the setup wizard's telemetry prompt (§2.1 tests "various
    /// configurations"; §3.2's finding is that declining changes little
    /// for the browsers that matter).
    pub decline_telemetry: bool,
    /// Pre-compiled filterlist shared across campaigns. `None` compiles
    /// per browser session (the offline default); the study server sets
    /// it so every adblocking browser in every concurrent request reuses
    /// one immutable DFA. Read-only after compilation — sharing cannot
    /// change what a campaign observes.
    pub shared_filterlist: Option<Arc<FilterList>>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x50_41_4e_4f,
            mode: BrowsingMode::Normal,
            load_timeout: SimDuration::from_secs(60),
            settle: SimDuration::from_secs(5),
            proxy_port: 8080,
            decline_telemetry: false,
            shared_filterlist: None,
        }
    }
}

impl CampaignConfig {
    /// The campaign's taint token — unique per seed so stale taints from
    /// other campaigns are detected as spoofed.
    pub fn taint_token(&self) -> String {
        format!("panoptes-{:016x}", self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// An incognito variant of this config (§3.2's incognito runs).
    pub fn incognito(mut self) -> CampaignConfig {
        self.mode = BrowsingMode::Incognito;
        self
    }

    /// A variant that declines the wizard's telemetry prompt.
    pub fn telemetry_declined(mut self) -> CampaignConfig {
        self.decline_telemetry = true;
        self
    }

    /// A variant reusing an already-compiled filterlist (the serving
    /// layer's shared artifact).
    pub fn with_shared_filterlist(mut self, list: Arc<FilterList>) -> CampaignConfig {
        self.shared_filterlist = Some(list);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_timings() {
        let c = CampaignConfig::default();
        assert_eq!(c.load_timeout, SimDuration::from_secs(60));
        assert_eq!(c.settle, SimDuration::from_secs(5));
        assert_eq!(c.mode, BrowsingMode::Normal);
    }

    #[test]
    fn token_is_seed_specific() {
        let a = CampaignConfig::default().taint_token();
        let b = CampaignConfig { seed: 7, ..Default::default() }.taint_token();
        assert_ne!(a, b);
        assert!(a.starts_with("panoptes-"));
    }

    #[test]
    fn incognito_builder() {
        let c = CampaignConfig::default().incognito();
        assert_eq!(c.mode, BrowsingMode::Incognito);
    }
}
