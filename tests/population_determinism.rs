//! Population-scale determinism, enforced end-to-end at the workspace
//! level: a 64-browser study — the 15 pinned paper browsers plus 49
//! sampled variants — renders the **byte-identical** report whether the
//! campaigns run sequentially (`--jobs 1`), across an 8-worker fleet
//! (`--jobs 8`), or with the capture→analysis barrier removed
//! (`--jobs 8 --overlap`). The sampler's determinism contract
//! (DESIGN.md §9) and the fleet's unit isolation compose: scaling the
//! population changes how much work runs, never what any browser does.
//!
//! Mirrors `tests/study_engine_determinism.rs` for the sampled
//! population.

use panoptes::fleet::FleetOptions;
use panoptes_analysis::engine::{
    analyze_study, run_study_analyzed_with, AnalysisResources,
};
use panoptes_analysis::study::{run_crawl_jobs_with, run_crawl_with, run_idle_with};
use panoptes_analysis::summary::study_report_from;
use panoptes_bench::experiments::{population_for, Scale};
use panoptes_simnet::clock::SimDuration;

const POPULATION: usize = 64;
const IDLE: SimDuration = SimDuration::from_secs(120);

#[test]
fn population_study_reports_are_byte_identical_across_jobs() {
    let scale = Scale::quick();
    let world = scale.world();
    let config = scale.config();
    let res = AnalysisResources::standard();
    let profiles = population_for(&scale, POPULATION);
    assert_eq!(profiles.len(), POPULATION);

    // Reference: sequential capture (--jobs 1), fused analysis.
    let crawls = run_crawl_with(&world, &world.sites, &config, &profiles);
    let idles = run_idle_with(&world, IDLE, &config, &profiles);
    let reference = study_report_from(&analyze_study(&crawls, &idles, &res));

    // --jobs 8: the fleet schedules the 64 campaigns across 8 workers.
    let parallel = run_crawl_jobs_with(
        &world,
        &world.sites,
        &config,
        &FleetOptions::with_jobs(8),
        &profiles,
    )
    .expect("population crawl fleet");
    assert_eq!(parallel.len(), crawls.len());
    for (p, s) in parallel.iter().zip(&crawls) {
        assert_eq!(p.profile.name, s.profile.name);
        assert_eq!(
            p.store.export_jsonl(),
            s.store.export_jsonl(),
            "capture diverged at jobs=8 for {}",
            p.profile.name
        );
    }
    assert_eq!(
        reference,
        study_report_from(&analyze_study(&parallel, &idles, &res)),
        "population report diverged at jobs=8"
    );

    // --jobs 8 --overlap: 128 units (crawl + idle per browser) stream
    // into analysis workers as each capture seals.
    let overlapped = run_study_analyzed_with(
        &world,
        &world.sites,
        &config,
        IDLE,
        &FleetOptions::with_jobs(8),
        &res,
        &profiles,
    )
    .expect("overlapped population study");
    assert_eq!(
        reference,
        study_report_from(&overlapped.analyses),
        "population report diverged at jobs=8 --overlap"
    );
}

#[test]
fn population_prefix_is_the_paper_study() {
    // The first 15 campaigns of any population run are the paper's
    // browsers with the paper's captures: a population study embeds the
    // reproduction unchanged.
    let scale = Scale { popular: 4, sensitive: 2, ..Scale::quick() };
    let world = scale.world();
    let config = scale.config();
    let paper = run_crawl_with(&world, &world.sites, &config, &population_for(&scale, 15));
    let population = run_crawl_with(&world, &world.sites, &config, &population_for(&scale, 40));
    for (a, b) in paper.iter().zip(&population) {
        assert_eq!(a.profile.name, b.profile.name);
        assert_eq!(a.store.export_jsonl(), b.store.export_jsonl(), "{}", a.profile.name);
    }
}
