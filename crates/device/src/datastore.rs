//! Per-app persistent storage.
//!
//! The store separates three kinds of state because the paper's findings
//! hinge on the distinction (§3.2):
//!
//! * **cookies** — what the user can clear, and what incognito discards;
//! * **prefs** — ordinary key/value app settings;
//! * **identifiers** — vendor-assigned persistent IDs (like the one
//!   Yandex attaches to its phone-home requests) that survive cookie
//!   clearing and IP changes, and are only destroyed by a factory reset
//!   of the app.

use std::collections::BTreeMap;

use panoptes_http::CookieJar;

/// An app's private data directory.
#[derive(Debug, Clone, Default)]
pub struct AppDataStore {
    /// Engine-side cookie state.
    pub cookies: CookieJar,
    prefs: BTreeMap<String, String>,
    identifiers: BTreeMap<String, String>,
}

impl AppDataStore {
    /// An empty (factory-fresh) store.
    pub fn new() -> AppDataStore {
        AppDataStore::default()
    }

    /// Sets a preference.
    pub fn set_pref(&mut self, key: &str, value: &str) {
        self.prefs.insert(key.to_string(), value.to_string());
    }

    /// Reads a preference.
    pub fn pref(&self, key: &str) -> Option<&str> {
        self.prefs.get(key).map(String::as_str)
    }

    /// Returns the identifier named `key`, creating it with `make` on
    /// first use — the "generate once, attach forever" pattern vendor
    /// tracking IDs follow.
    pub fn identifier_or_insert(&mut self, key: &str, make: impl FnOnce() -> String) -> String {
        self.identifiers.entry(key.to_string()).or_insert_with(make).clone()
    }

    /// Reads an identifier without creating it.
    pub fn identifier(&self, key: &str) -> Option<&str> {
        self.identifiers.get(key).map(String::as_str)
    }

    /// Clears cookies only — what "Clear browsing data" does. Identifiers
    /// survive; this is exactly why the paper's Yandex finding matters.
    pub fn clear_cookies(&mut self) {
        self.cookies.clear();
    }

    /// Wipes everything — an app factory reset.
    pub fn factory_reset(&mut self) {
        self.cookies.clear();
        self.prefs.clear();
        self.identifiers.clear();
    }

    /// True when no state of any kind is held.
    pub fn is_factory_fresh(&self) -> bool {
        self.cookies.is_empty() && self.prefs.is_empty() && self.identifiers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_http::Cookie;

    #[test]
    fn identifier_created_once() {
        let mut store = AppDataStore::new();
        let mut calls = 0;
        let first = store.identifier_or_insert("yandex-uid", || {
            calls += 1;
            "abc123".to_string()
        });
        let second = store.identifier_or_insert("yandex-uid", || {
            calls += 1;
            "other".to_string()
        });
        assert_eq!(first, "abc123");
        assert_eq!(second, "abc123");
        assert_eq!(calls, 1);
    }

    #[test]
    fn clearing_cookies_keeps_identifiers() {
        let mut store = AppDataStore::new();
        store.cookies.store(Cookie::parse_set_cookie("sid=1", "e.com").unwrap());
        store.identifier_or_insert("uid", || "persistent".to_string());
        store.clear_cookies();
        assert!(store.cookies.is_empty());
        assert_eq!(store.identifier("uid"), Some("persistent"));
    }

    #[test]
    fn factory_reset_wipes_everything() {
        let mut store = AppDataStore::new();
        store.set_pref("wizard-done", "true");
        store.identifier_or_insert("uid", || "x".to_string());
        store.cookies.store(Cookie::parse_set_cookie("a=1", "e.com").unwrap());
        assert!(!store.is_factory_fresh());
        store.factory_reset();
        assert!(store.is_factory_fresh());
        assert_eq!(store.pref("wizard-done"), None);
        assert_eq!(store.identifier("uid"), None);
    }

    #[test]
    fn prefs_roundtrip() {
        let mut store = AppDataStore::new();
        store.set_pref("k", "v1");
        store.set_pref("k", "v2");
        assert_eq!(store.pref("k"), Some("v2"));
        assert_eq!(store.pref("missing"), None);
    }
}
