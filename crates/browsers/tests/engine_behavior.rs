//! Focused engine-session behaviour: DNS caching, cookie handling across
//! modes, h3 memory, and ad-block interaction — exercised through the
//! public `Browser` API against a minimal rig.

use std::sync::Arc;

use panoptes_browsers::browser::{Browser, BrowsingMode, Env};
use panoptes_browsers::registry::profile_by_name;
use panoptes_device::Device;
use panoptes_instrument::tap::TaintInjector;
use panoptes_mitm::{FlowStore, TaintAddon, TransparentProxy, TAINT_HEADER};
use panoptes_simnet::clock::SimClock;
use panoptes_simnet::dns::ResolverKind;
use panoptes_simnet::tls::{CaId, CertificateAuthority};
use panoptes_simnet::Network;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

const TOKEN: &str = "tok";

struct Rig {
    net: Network,
    store: Arc<FlowStore>,
    world: World,
    device: Device,
    clock: SimClock,
}

fn rig() -> Rig {
    let device = Device::testbed();
    let net = Network::new(CertificateAuthority::new(CaId::public_web_pki()), device.local_ip());
    let world = World::build(&GeneratorConfig { popular: 5, sensitive: 3, ..Default::default() });
    world.install(&net);
    let store = Arc::new(FlowStore::new());
    let mut proxy = TransparentProxy::new(store.clone());
    proxy.install_addon(Box::new(TaintAddon::new(TOKEN)));
    net.register_proxy(8080, Arc::new(proxy), TransparentProxy::certificate_authority());
    Rig { net, store, world, device, clock: SimClock::new() }
}

fn browser(rig: &mut Rig, name: &str, mode: BrowsingMode) -> Browser {
    let profile = profile_by_name(name).unwrap();
    let uid = rig.device.packages.install(&profile.package);
    rig.net.with_filter(|f| f.install_panoptes_rules(uid, 8080));
    Browser::launch(profile, uid, 7, mode)
}

macro_rules! env {
    ($rig:expr, $pkg:expr) => {
        Env {
            net: &$rig.net,
            clock: &mut $rig.clock,
            props: &$rig.device.props,
            data: $rig.device.packages.data_mut($pkg).unwrap(),
            tap: Some(Arc::new(TaintInjector::new(TAINT_HEADER, TOKEN))),
        }
    };
}

#[test]
fn dns_cache_prevents_repeat_doh_lookups() {
    let mut rig = rig();
    let mut edge = browser(&mut rig, "Edge", BrowsingMode::Normal);
    assert!(edge.profile.resolver.is_doh());
    let site = rig.world.sites[0].clone();

    let first = {
        let mut e = env!(rig, "com.microsoft.emmx");
        edge.visit(&mut e, &site)
    };
    let second = {
        let mut e = env!(rig, "com.microsoft.emmx");
        edge.visit(&mut e, &site)
    };
    assert!(first.engine.doh_lookups > 0, "first visit resolves");
    assert_eq!(second.engine.doh_lookups, 0, "second visit is fully cached");
    assert!(edge.engine().dns_cache_size() > 0);
}

#[test]
fn cookies_persist_across_visits_in_normal_mode() {
    let mut rig = rig();
    let mut chrome = browser(&mut rig, "Chrome", BrowsingMode::Normal);
    let site = rig.world.sites[1].clone();
    {
        let mut e = env!(rig, "com.android.chrome");
        chrome.visit(&mut e, &site);
    }
    // The origin set a session cookie on the document; the second visit
    // must send it back.
    rig.store.clear();
    {
        let mut e = env!(rig, "com.android.chrome");
        chrome.visit(&mut e, &site);
    }
    let doc = rig
        .store
        .engine_flows()
        .into_iter()
        .find(|f| f.host == site.host && f.url.ends_with(&site.landing_path))
        .expect("document flow");
    assert!(doc.header("cookie").is_some(), "persistent jar replays cookies");
}

#[test]
fn incognito_cookies_do_not_touch_the_persistent_jar() {
    let mut rig = rig();
    let mut chrome = browser(&mut rig, "Chrome", BrowsingMode::Incognito);
    let site = rig.world.sites[1].clone();
    {
        let mut e = env!(rig, "com.android.chrome");
        chrome.visit(&mut e, &site);
    }
    assert!(
        rig.device.packages.app("com.android.chrome").unwrap().data.cookies.is_empty(),
        "incognito must not write the persistent jar"
    );
}

#[test]
fn h3_is_attempted_once_per_host() {
    let mut rig = rig();
    let mut chrome = browser(&mut rig, "Chrome", BrowsingMode::Normal);
    let site = rig.world.sites[0].clone();
    let first = {
        let mut e = env!(rig, "com.android.chrome");
        chrome.visit(&mut e, &site)
    };
    let dropped_after_first = rig.net.stats().dropped;
    assert!(first.engine.h3_fallbacks > 0);
    let second = {
        let mut e = env!(rig, "com.android.chrome");
        chrome.visit(&mut e, &site)
    };
    assert_eq!(second.engine.h3_fallbacks, 0, "QUIC block is remembered per host");
    assert_eq!(rig.net.stats().dropped, dropped_after_first);
}

#[test]
fn non_h3_browser_never_triggers_drops() {
    let mut rig = rig();
    let mut ddg = browser(&mut rig, "DuckDuckGo", BrowsingMode::Normal);
    let site = rig.world.sites[0].clone();
    {
        let mut e = env!(rig, "com.duckduckgo.mobile.android");
        ddg.visit(&mut e, &site);
    }
    assert_eq!(rig.net.stats().dropped, 0);
}

#[test]
fn stub_browser_logs_queries_for_every_unique_host() {
    let mut rig = rig();
    let mut dolphin = browser(&mut rig, "Dolphin", BrowsingMode::Normal);
    assert_eq!(dolphin.profile.resolver, ResolverKind::LocalStub);
    let site = rig.world.sites[2].clone();
    {
        let mut e = env!(rig, "mobi.mgeek.TunnyBrowser");
        dolphin.startup(&mut e);
        dolphin.visit(&mut e, &site);
    }
    let log = rig.net.dns_log();
    assert!(!log.is_empty());
    // All stub, no DoH.
    assert!(log.iter().all(|e| !e.resolver.is_doh()));
    // And the site's own host was among the lookups.
    assert!(log.iter().any(|e| e.name == site.host));
}

#[test]
fn engine_requests_carry_realistic_headers() {
    let mut rig = rig();
    let mut opera = browser(&mut rig, "Opera", BrowsingMode::Normal);
    let site = rig.world.sites[0].clone();
    {
        let mut e = env!(rig, "com.opera.browser");
        opera.visit(&mut e, &site);
    }
    for f in rig.store.engine_flows() {
        assert!(f.header("user-agent").unwrap().contains("Opera"), "{}", f.host);
        assert!(f.header("accept").is_some());
        assert!(f.header("accept-language").is_some());
        assert!(f.header("referer").is_some());
    }
}
