//! Property-based tests for the blocklist engines.

use proptest::prelude::*;

use panoptes_blocklist::{FilterList, HostsList};

proptest! {
    #[test]
    fn hosts_contains_is_subdomain_closed(
        entry in "[a-z]{1,8}\\.[a-z]{2,3}",
        label in "[a-z]{1,8}",
        deeper in "[a-z]{1,8}",
    ) {
        let mut list = HostsList::new();
        list.add(&entry);
        let sub = format!("{label}.{entry}");
        let deep = format!("{deeper}.{label}.{entry}");
        let fake = format!("{label}{entry}");
        prop_assert!(list.contains(&entry));
        prop_assert!(list.contains(&sub));
        prop_assert!(list.contains(&deep));
        // Superstring hosts are NOT matched.
        prop_assert!(!list.contains(&fake));
    }

    #[test]
    fn hosts_parse_never_panics(text in "\\PC{0,500}") {
        let _ = HostsList::parse(&text);
    }

    #[test]
    fn filterlist_parse_never_panics(text in "\\PC{0,500}") {
        let _ = FilterList::parse(&text);
    }

    #[test]
    fn domain_anchor_semantics(
        domain in "[a-z]{1,8}\\.(com|net|org)",
        sub in "[a-z]{1,8}",
        path in "[a-z0-9/]{0,20}",
    ) {
        let list = FilterList::parse(&format!("||{domain}^"));
        let url = format!("https://{domain}/{path}");
        prop_assert!(list.should_block(&domain, &url));
        let sub_host = format!("{sub}.{domain}");
        let sub_url = format!("https://{sub_host}/{path}");
        prop_assert!(list.should_block(&sub_host, &sub_url));
        // A look-alike superstring must not be blocked.
        let fake = format!("{sub}{domain}");
        let fake_url = format!("https://{fake}/");
        prop_assert!(!list.should_block(&fake, &fake_url));
    }

    #[test]
    fn exception_always_wins(domain in "[a-z]{1,8}\\.com") {
        let list = FilterList::parse(&format!("||{domain}^\n@@||{domain}^"));
        let url = format!("https://{domain}/x");
        prop_assert!(!list.should_block(&domain, &url));
    }
}
