//! UC International 13.4.2.1307 — the stealthiest history leak in the
//! paper (§3.2): it does *not* phone home natively; instead it injects an
//! obfuscated JavaScript snippet into every page, which exfiltrates the
//! visited URL together with the user's city-level geolocation and ISP —
//! as tainted *engine* traffic, to servers in Canada (§3.4). Its native
//! telemetry carries only locale and network type (Table 2). Panoptes
//! instruments it by hooking an internal API with Frida (§2.3).

use panoptes_instrument::tap::Instrumentation;

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};

/// The UC International pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("UC International", "13.4.2.1307", "com.UCMobile.intl")
        .instrument(Instrumentation::FridaInternalApi)
        .injects_js("collect.ucweb.com")
        .leaks(&[PiiField::Locale, PiiField::NetworkType])
        .startup(vec![
            NativeCall::ping("puds.ucweb.com", "/upgrade/check"),
            NativeCall::ping("api.ucweb.com", "/v1/config"),
        ])
        .per_visit(vec![
            NativeCall::ping("track.ucweb.com", "/v1/stat")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(120)
                .times(2),
            NativeCall::ping("api.ucweb.com", "/v1/config"),
        ])
        .idle_burst(vec![
            NativeCall::ping("api.ucweb.com", "/v1/newtab"),
            NativeCall::ping("api.ucweb.com", "/v1/config"),
            NativeCall::ping("puds.ucweb.com", "/upgrade/check"),
        ])
        .idle_periodic(vec![
            (90, NativeCall::ping("track.ucweb.com", "/v1/heartbeat")),
            (300, NativeCall::ping("puds.ucweb.com", "/upgrade/check")),
        ])
}
