//! End-to-end reproduction of the paper's summary findings (§5) at a
//! reduced scale: the six numbered conclusions, each re-derived from the
//! wire through the full pipeline.

use panoptes_suite::analysis::addomains::figure3;
use panoptes_suite::analysis::dns::doh_split;
use panoptes_suite::analysis::history::{summarize_leaks, LeakGranularity};
use panoptes_suite::analysis::incognito::compare;
use panoptes_suite::analysis::pii::table2;
use panoptes_suite::analysis::sensitive::sensitive_row;
use panoptes_suite::analysis::study::run_full_crawl;
use panoptes_suite::analysis::transfers::transfers;
use panoptes_suite::analysis::volume::figure2;
use panoptes_suite::browsers::registry::profile_by_name;
use panoptes_suite::browsers::PiiField;
use panoptes_suite::device::DeviceProperties;
use panoptes_suite::geo::GeoDb;
use panoptes_suite::panoptes::campaign::{run_crawl, CampaignResult};
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

fn study() -> (World, Vec<CampaignResult>) {
    let world = World::build(&GeneratorConfig { popular: 12, sensitive: 8, ..Default::default() });
    let results = run_full_crawl(&world, &world.sites, &CampaignConfig::default());
    (world, results)
}

#[test]
fn finding1_native_traffic_can_reach_a_third_of_total() {
    // §5(1): native requests "can amount to as high as 1/3 of the total
    // generated traffic", with Edge and Yandex at the top.
    let (_, results) = study();
    let rows = figure2(&results);
    let over_third: Vec<&str> = rows
        .iter()
        .filter(|r| r.request_ratio > 1.0 / 3.0)
        .map(|r| r.browser.as_str())
        .collect();
    for name in ["Edge", "Yandex", "Vivaldi", "Whale", "CocCoc"] {
        assert!(over_third.contains(&name), "{name} should exceed 1/3: {rows:?}");
    }
    // And the quiet ones stay quiet.
    for r in &rows {
        if ["Chrome", "Brave", "DuckDuckGo"].contains(&r.browser.as_str()) {
            assert!(r.request_ratio < 0.10, "{}: {}", r.browser, r.request_ratio);
        }
    }
}

#[test]
fn finding2_three_browsers_report_the_exact_page() {
    // §5(2): Yandex, QQ and UC International report the exact page and
    // content being browsed.
    let (_, results) = study();
    let full_url_leakers: Vec<String> = results
        .iter()
        .map(summarize_leaks)
        .filter(|s| s.worst == Some(LeakGranularity::FullUrl))
        .map(|s| s.browser)
        .collect();
    assert_eq!(
        full_url_leakers,
        vec!["Yandex".to_string(), "QQ".to_string(), "UC International".to_string()]
    );
}

#[test]
fn finding3_yandex_attaches_a_persistent_identifier() {
    // §5(3): Yandex reports together with a persistent identifier, so
    // users can be tracked across Tor / proxies / VPNs.
    let (_, results) = study();
    for r in &results {
        let s = summarize_leaks(r);
        if r.profile.name == "Yandex" {
            assert!(s.persistent, "yandex leak must carry the identifier");
        } else {
            assert!(!s.persistent, "{} should not", r.profile.name);
        }
    }
}

#[test]
fn finding4_incognito_and_sensitive_content_change_nothing() {
    // §5(4): leaking continues in incognito mode and for sensitive
    // categories.
    let world = World::build(&GeneratorConfig { popular: 8, sensitive: 8, ..Default::default() });
    let cfg = CampaignConfig::default();
    for name in ["Edge", "Opera", "UC International"] {
        let p = profile_by_name(name).unwrap();
        let normal = run_crawl(&world, &p, &world.sites, &cfg);
        let incog = run_crawl(&world, &p, &world.sites, &cfg.clone().incognito());
        assert!(compare(&normal, &incog).still_leaks, "{name}");
    }
    for name in ["Yandex", "QQ", "UC International"] {
        let p = profile_by_name(name).unwrap();
        let r = run_crawl(&world, &p, &world.sites, &cfg);
        let row = sensitive_row(&r);
        assert_eq!(row.sensitive_urls_leaked, row.sensitive_visits, "{name}");
    }
}

#[test]
fn finding5_leaks_travel_outside_the_eu() {
    // §5(5): the full-detail leaks land in Russia, China and Canada.
    let (_, results) = study();
    let geo = GeoDb::standard();
    let rows = transfers(&results, &geo);
    let expect = [("Yandex", "RU"), ("QQ", "CN"), ("UC International", "CA")];
    for (browser, country) in expect {
        let row = rows
            .iter()
            .find(|r| r.browser == browser && r.granularity == LeakGranularity::FullUrl)
            .unwrap_or_else(|| panic!("{browser} missing from transfers"));
        assert!(row.leaves_eu, "{browser}");
        assert!(
            row.destinations.iter().any(|(_, c)| c.as_str() == country),
            "{browser} → {country}: {:?}",
            row.destinations
        );
    }
}

#[test]
fn finding6_ad_servers_and_pii() {
    // §5(6): Opera/CocCoc/Dolphin/Mint talk to third-party ad and
    // analytics servers while leaking PII and device identifiers.
    let (_, results) = study();
    let fig3 = figure3(&results);
    for name in ["Opera", "CocCoc", "Dolphin", "Mint", "Kiwi", "Edge", "Yandex", "QQ"] {
        let row = fig3.iter().find(|r| r.browser == name).unwrap();
        assert!(row.ad_percent > 0.0, "{name} must contact ad servers");
    }
    let zero: Vec<&str> = fig3
        .iter()
        .filter(|r| r.ad_percent == 0.0)
        .map(|r| r.browser.as_str())
        .collect();
    assert_eq!(zero.len(), 7, "8 of 15 browsers contact ad servers: {zero:?}");

    let props = DeviceProperties::testbed_tablet();
    let t2 = table2(&results, &props);
    let opera = t2.iter().find(|r| r.browser == "Opera").unwrap();
    assert!(opera.leaks(PiiField::Location));
    let whale = t2.iter().find(|r| r.browser == "Whale").unwrap();
    assert!(whale.leaks(PiiField::LocalIp) && whale.leaks(PiiField::RootedStatus));
}

#[test]
fn table2_matches_paper_exactly() {
    // The full 15×12 matrix, cell for cell, as printed in the paper.
    let (_, results) = study();
    let props = DeviceProperties::testbed_tablet();
    let rows = table2(&results, &props);

    use PiiField::*;
    let expected: &[(&str, &[PiiField])] = &[
        ("Chrome", &[]),
        ("Edge", &[DeviceManufacturer, Timezone, Resolution, Locale, ConnectionType, NetworkType]),
        ("Opera", &[DeviceManufacturer, Timezone, Resolution, Locale, Country, Location, NetworkType]),
        ("Vivaldi", &[Resolution]),
        ("Yandex", &[DeviceType, DeviceManufacturer, Resolution, Dpi, Locale, NetworkType]),
        ("Brave", &[]),
        ("Samsung", &[Locale]),
        ("DuckDuckGo", &[]),
        ("Dolphin", &[]),
        ("Whale", &[Resolution, LocalIp, RootedStatus, Locale, Country, NetworkType]),
        ("Mint", &[Timezone, Resolution, Locale, Country]),
        ("Kiwi", &[]),
        ("CocCoc", &[DeviceType, DeviceManufacturer, Resolution, Locale, Country]),
        ("QQ", &[DeviceType, DeviceManufacturer, Resolution]),
        ("UC International", &[Locale, NetworkType]),
    ];
    for (browser, fields) in expected {
        let row = rows.iter().find(|r| r.browser == *browser).unwrap();
        for field in PiiField::ALL {
            assert_eq!(
                row.leaks(field),
                fields.contains(&field),
                "{browser} / {field:?}: got {:?}",
                row.leaked
            );
        }
    }
}

#[test]
fn dns_split_matches_paper() {
    let (_, results) = study();
    let (_, doh, stub) = doh_split(&results);
    assert_eq!((doh, stub), (8, 7));
}
