//! The shared-artifact cache: keyed, single-flight, LRU under a byte
//! budget.
//!
//! Concurrent studies overwhelmingly share setup work — the world plan
//! for a given `(seed, sites)`, the compiled filterlist DFA, the
//! sampled browser population, the analysis resources, and (for
//! identical parameters) the entire rendered study document. This
//! cache dedupes all of them across in-flight requests:
//!
//! * **single-flight** — the first request for a key builds; every
//!   concurrent request for the same key blocks on a condvar and gets
//!   the same `Arc` when construction lands. A builder that dies
//!   (client disconnect, panic) *abandons* the slot: waiters wake and
//!   race to rebuild, so a failed build never poisons the key;
//! * **byte budget** — every artifact is charged the *net* bytes its
//!   build retained (the `panoptes_bench::mem` live-bytes delta when
//!   the binary installs the counting allocator, floored by a
//!   caller-supplied minimum for when it doesn't — or when concurrent
//!   frees on other threads deflate the delta), and least-recently-used
//!   entries are evicted when the total exceeds the budget. In-flight
//!   builds are never evicted.
//!
//! Artifacts are stored as `Arc<dyn Any + Send + Sync>` and downcast
//! by the typed [`ArtifactCache::get_or_build`]; a key is always
//! associated with one concrete type (the key string embeds the
//! artifact kind).

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

type Artifact = Arc<dyn Any + Send + Sync>;

/// How a [`ArtifactCache::try_resolve`] lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveKind {
    /// Served from a ready entry, no waiting.
    Hit,
    /// Built by this caller (possibly after waiting out an abandoned
    /// in-flight build — `wait_us` is then non-zero).
    Built,
    /// Waited on another request's in-flight build, then shared its
    /// `Arc` — the single-flight "loser" path.
    WaitedHit,
}

/// A resolved artifact plus the latency attribution of getting it:
/// how long this caller blocked on someone else's build (`wait_us`)
/// versus built itself (`build_us`). Feeds the per-request `timing`
/// trailer's cache-wait-vs-build split.
pub struct Resolved<T> {
    /// The shared artifact.
    pub value: Arc<T>,
    /// Hit, built here, or waited out another request's build.
    pub kind: ResolveKind,
    /// Microseconds blocked on the single-flight condvar.
    pub wait_us: u64,
    /// Microseconds spent running `build` on this thread.
    pub build_us: u64,
}

struct Entry {
    value: Artifact,
    cost: u64,
    /// LRU clock: larger = more recently used.
    last_used: u64,
}

struct Inner {
    ready: HashMap<String, Entry>,
    /// Keys currently being built by some thread (single-flight
    /// markers). Never counted against the budget, never evicted.
    building: HashMap<String, ()>,
    used: u64,
    clock: u64,
}

/// Cumulative cache statistics (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready entry (or by waiting on another
    /// request's in-flight build — shared work either way).
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
}

/// The keyed single-flight LRU cache. One instance is shared by every
/// connection handler of a server.
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    wakeup: Condvar,
    budget: u64,
    stats: Mutex<CacheStats>,
}

impl ArtifactCache {
    /// A cache evicting LRU entries beyond `budget_bytes`.
    pub fn new(budget_bytes: u64) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(Inner {
                ready: HashMap::new(),
                building: HashMap::new(),
                used: 0,
                clock: 0,
            }),
            wakeup: Condvar::new(),
            budget: budget_bytes,
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Returns the cached artifact for `key`, building it with `build`
    /// on a miss. `min_cost` floors the charged size when the counting
    /// allocator is not installed (its counters then read zero delta).
    ///
    /// Concurrent callers for the same key build once: the losers wait
    /// and share the winner's `Arc`. If the builder panics, the panic
    /// propagates to its caller and the slot is abandoned — one waiter
    /// retries the build; the key is never poisoned.
    pub fn get_or_build<T, F>(&self, key: &str, min_cost: u64, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        self.resolve(key, min_cost, build).value
    }

    /// [`ArtifactCache::get_or_build`] that also reports *how* the
    /// lookup was satisfied and what it cost (wait vs build time).
    pub fn resolve<T, F>(&self, key: &str, min_cost: u64, build: F) -> Resolved<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        match self.try_resolve::<T, std::convert::Infallible, _>(key, min_cost, || Ok(build())) {
            Ok(resolved) => resolved,
            Err(never) => match never {},
        }
    }

    /// [`ArtifactCache::get_or_build`] with a fallible builder: on
    /// `Err` the slot is abandoned (waiters wake and retry) and the
    /// error propagates to this caller only — the failure path a
    /// mid-build client disconnect takes.
    pub fn try_get_or_build<T, E, F>(&self, key: &str, min_cost: u64, build: F) -> Result<Arc<T>, E>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> Result<T, E>,
    {
        self.try_resolve(key, min_cost, build)
            .map(|resolved| resolved.value)
    }

    /// [`ArtifactCache::try_get_or_build`] that also reports *how* the
    /// lookup was satisfied (hit / built here / waited on another
    /// request's build) and the wait-vs-build time split. Also the
    /// cache-causality trace anchor: builds record a
    /// `serve.cache.build` span and waited-out hits a
    /// `serve.cache.waited` point, both keyed, so a trace reader can
    /// reconstruct who built a key and who replayed it.
    pub fn try_resolve<T, E, F>(&self, key: &str, min_cost: u64, build: F) -> Result<Resolved<T>, E>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> Result<T, E>,
    {
        let mut wait_us = 0u64;
        let mut waited = false;
        {
            let mut inner = self.inner.lock().expect("cache lock");
            loop {
                if inner.ready.contains_key(key) {
                    inner.clock += 1;
                    let now = inner.clock;
                    // Presence was checked just above under this lock.
                    let entry = inner.ready.get_mut(key).expect("just found"); // unwrap-ok
                    entry.last_used = now;
                    let value = Arc::clone(&entry.value);
                    drop(inner);
                    self.stats.lock().expect("stats lock").hits += 1;
                    panoptes_obs::count!("serve.cache.hits", Runtime);
                    if waited {
                        panoptes_obs::trace::point_with("serve.cache.waited", None, || {
                            key.to_string()
                        });
                    } else {
                        panoptes_obs::trace::point_with("serve.cache.hit", None, || {
                            key.to_string()
                        });
                    }
                    // Keys embed the artifact kind, one concrete type each.
                    let value = value
                        .downcast::<T>()
                        .unwrap_or_else(|_| unreachable!("one type per key"));
                    let kind = if waited {
                        ResolveKind::WaitedHit
                    } else {
                        ResolveKind::Hit
                    };
                    return Ok(Resolved {
                        value,
                        kind,
                        wait_us,
                        build_us: 0,
                    });
                }
                if inner.building.contains_key(key) {
                    // Someone else is constructing this artifact: wait
                    // for it to land (or be abandoned — in which case
                    // this thread takes over the build below).
                    waited = true;
                    let wait_start = Instant::now();
                    inner = self.wakeup.wait(inner).expect("cache wait");
                    wait_us += wait_start.elapsed().as_micros() as u64;
                    continue;
                }
                inner.building.insert(key.to_string(), ());
                break;
            }
        }
        // This thread owns the build. The guard abandons the slot if
        // the build unwinds or the thread dies before install.
        let guard = BuildGuard {
            cache: self,
            key,
            installed: false,
        };
        self.stats.lock().expect("stats lock").misses += 1;
        panoptes_obs::count!("serve.cache.misses", Runtime);
        let _build_span =
            panoptes_obs::trace::span_with("serve.cache.build", None, || key.to_string());
        let build_start = Instant::now();
        let before = panoptes_bench::mem::live_bytes();
        let value: Arc<T> = Arc::new(build()?);
        let measured = panoptes_bench::mem::live_bytes().saturating_sub(before);
        let build_us = build_start.elapsed().as_micros() as u64;
        self.install(key, Arc::clone(&value) as Artifact, measured.max(min_cost));
        guard.disarm();
        Ok(Resolved {
            value,
            kind: ResolveKind::Built,
            wait_us,
            build_us,
        })
    }

    fn install(&self, key: &str, value: Artifact, cost: u64) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.building.remove(key);
        inner.clock += 1;
        let clock = inner.clock;
        inner.used += cost;
        inner.ready.insert(
            key.to_string(),
            Entry {
                value,
                cost,
                last_used: clock,
            },
        );
        // Evict LRU entries until the budget holds. The entry just
        // installed is the most recently used, so it goes last — an
        // over-budget artifact still serves its current requesters.
        while inner.used > self.budget && inner.ready.len() > 1 {
            let lru_key = inner
                .ready
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty ready map"); // unwrap-ok: len > 1 in loop guard
            let evicted = inner.ready.remove(&lru_key).expect("lru entry"); // unwrap-ok
            inner.used -= evicted.cost;
            self.stats.lock().expect("stats lock").evictions += 1;
            panoptes_obs::count!("serve.cache.evictions", Runtime);
        }
        panoptes_obs::gauge_set!("serve.cache.bytes", inner.used as i64);
        panoptes_obs::gauge_set!("serve.cache.entries", inner.ready.len() as i64);
        drop(inner);
        self.wakeup.notify_all();
    }

    fn abandon(&self, key: &str) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.building.remove(key);
        drop(inner);
        self.wakeup.notify_all();
    }

    /// Cumulative hit/miss/eviction counts.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("stats lock")
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().expect("cache lock").used
    }

    /// Ready entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").ready.len()
    }

    /// True when no ready entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Clears a key's single-flight marker if its build never installed —
/// the disconnect/panic path that keeps abandoned keys buildable.
struct BuildGuard<'a> {
    cache: &'a ArtifactCache,
    key: &'a str,
    installed: bool,
}

impl BuildGuard<'_> {
    fn disarm(mut self) {
        self.installed = true;
    }
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.installed {
            self.cache.abandon(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn hit_returns_same_arc() {
        let cache = ArtifactCache::new(1 << 20);
        let a = cache.get_or_build("k", 100, || vec![1u8, 2, 3]);
        let b = cache.get_or_build("k", 100, || vec![9u8]);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn single_flight_builds_once_across_threads() {
        let cache = Arc::new(ArtifactCache::new(1 << 20));
        let builds = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || {
                    cache.get_or_build("world:42", 10, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters really wait.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        42u64
                    })
                })
            })
            .collect();
        let values: Vec<Arc<u64>> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
        for v in &values {
            assert!(Arc::ptr_eq(v, &values[0]));
        }
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }

    #[test]
    fn lru_evicts_under_byte_budget() {
        let cache = ArtifactCache::new(250);
        cache.get_or_build("a", 100, || 1u8);
        cache.get_or_build("b", 100, || 2u8);
        // Touch `a` so `b` is the least recently used.
        cache.get_or_build("a", 100, || 0u8);
        cache.get_or_build("c", 100, || 3u8);
        assert_eq!(cache.stats().evictions, 1);
        // `b` was evicted; `a` survives as a hit.
        let before = cache.stats().misses;
        cache.get_or_build("a", 100, || 9u8);
        assert_eq!(cache.stats().misses, before, "a still resident");
        cache.get_or_build("b", 100, || 9u8);
        assert_eq!(cache.stats().misses, before + 1, "b was evicted");
    }

    #[test]
    fn panicking_build_does_not_poison_the_key() {
        let cache = Arc::new(ArtifactCache::new(1 << 20));
        let c = Arc::clone(&cache);
        let result = std::thread::spawn(move || {
            c.get_or_build("doomed", 10, || -> u64 { panic!("build failed") })
        })
        .join();
        assert!(result.is_err(), "builder panicked");
        // The key is abandoned, not poisoned: the next caller rebuilds.
        let v = cache.get_or_build("doomed", 10, || 7u64);
        assert_eq!(*v, 7);
    }

    #[test]
    fn resolve_reports_kind_and_wait_vs_build_split() {
        let cache = Arc::new(ArtifactCache::new(1 << 20));
        let built = cache.resolve("k", 10, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            1u64
        });
        assert_eq!(built.kind, ResolveKind::Built);
        assert!(built.build_us > 0, "build time attributed");
        let hit = cache.resolve("k", 10, || 2u64);
        assert_eq!(hit.kind, ResolveKind::Hit);
        assert_eq!((hit.wait_us, hit.build_us), (0, 0));

        // A caller arriving while the build is in flight waits it out
        // and gets the wait attributed.
        let started = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&cache);
        let s = Arc::clone(&started);
        let builder = std::thread::spawn(move || {
            c.resolve("w", 10, || {
                s.store(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                3u64
            })
        });
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let waited = cache.resolve("w", 10, || 4u64);
        assert_eq!(waited.kind, ResolveKind::WaitedHit);
        assert!(waited.wait_us > 0, "condvar wait attributed");
        assert_eq!(waited.build_us, 0);
        assert_eq!(builder.join().expect("builder").kind, ResolveKind::Built);
    }

    #[test]
    fn waiters_recover_when_builder_abandons() {
        let cache = Arc::new(ArtifactCache::new(1 << 20));
        let c1 = Arc::clone(&cache);
        let doomed = std::thread::spawn(move || {
            c1.get_or_build("k", 10, || -> u64 {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("mid-build disconnect")
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        // This caller arrives while the doomed build is in flight,
        // waits, then takes over the build after the abandon.
        let v = cache.get_or_build("k", 10, || 5u64);
        assert_eq!(*v, 5);
        assert!(doomed.join().is_err());
    }
}
