//! Microbenchmarks for the observability layer itself.
//!
//! The disabled numbers are the ones that matter: every pipeline
//! instrumentation point compiles to a relaxed load plus a not-taken
//! branch, so `obs/disabled_*` should sit at or below a nanosecond per
//! op. The enabled numbers bound the cost a `--metrics` / `--trace-out`
//! run pays per counter bump, histogram sample, span, and export byte.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use panoptes_obs::{trace, METRICS, TRACE};

/// A counter bump + histogram sample + gauge move, exactly as the
/// pipeline emits them. `#[inline(never)]` so the disabled branch can't
/// be hoisted out of the measurement loop.
#[inline(never)]
fn metric_probe(i: u64) {
    panoptes_obs::count!("bench.obs.crit_counter", Runtime, i & 1);
    panoptes_obs::record!("bench.obs.crit_histogram", Runtime, i);
    panoptes_obs::gauge_add!("bench.obs.crit_gauge", 1 - ((i & 2) as i64));
}

#[inline(never)]
fn span_probe() {
    drop(trace::span("bench.obs.crit_span"));
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.sample_size(30);

    panoptes_obs::disable(METRICS | TRACE);
    group.throughput(Throughput::Elements(3));
    group.bench_function("disabled_metric_probe", |b| {
        b.iter(|| metric_probe(black_box(7)))
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("disabled_span", |b| b.iter(span_probe));

    panoptes_obs::enable(METRICS);
    group.throughput(Throughput::Elements(3));
    group.bench_function("enabled_metric_probe", |b| {
        b.iter(|| metric_probe(black_box(7)))
    });
    panoptes_obs::disable(METRICS);

    panoptes_obs::enable(TRACE);
    group.throughput(Throughput::Elements(1));
    group.bench_function("enabled_span", |b| b.iter(span_probe));
    let events = trace::drain();
    panoptes_obs::disable(TRACE);

    // Serialisation throughput over whatever the span benchmark left
    // behind (capped so the corpus is stable across sample counts).
    let corpus: Vec<_> = events.into_iter().take(4096).collect();
    if !corpus.is_empty() {
        group.throughput(Throughput::Elements(corpus.len() as u64));
        group.bench_function("to_jsonl", |b| b.iter(|| trace::to_jsonl(black_box(&corpus))));
        let jsonl = trace::to_jsonl(&corpus);
        group.bench_function("parse_jsonl", |b| {
            b.iter(|| trace::parse_jsonl(black_box(&jsonl)).expect("corpus parses"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
