//! Site and page models.

/// The sensitive Curlie categories the paper selected (§3: "websites
/// associated with sensitive issues regarding Society (e.g., warfare and
/// conflict), Religion, Sexuality and Health (e.g., mental health)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensitiveCategory {
    /// Society: warfare, conflict, political activism.
    Society,
    /// Religion.
    Religion,
    /// Sexuality.
    Sexuality,
    /// Health, including mental health.
    Health,
}

impl SensitiveCategory {
    /// All four categories in a fixed order.
    pub const ALL: [SensitiveCategory; 4] = [
        SensitiveCategory::Society,
        SensitiveCategory::Religion,
        SensitiveCategory::Sexuality,
        SensitiveCategory::Health,
    ];

    /// Label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SensitiveCategory::Society => "society",
            SensitiveCategory::Religion => "religion",
            SensitiveCategory::Sexuality => "sexuality",
            SensitiveCategory::Health => "health",
        }
    }
}

/// Whether a site is from the popularity ranking or the sensitive set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteCategory {
    /// From the Tranco-like top ranking.
    Popular,
    /// From the Curlie-like sensitive directory.
    Sensitive(SensitiveCategory),
}

impl SiteCategory {
    /// True for sensitive-directory sites.
    pub fn is_sensitive(self) -> bool {
        matches!(self, SiteCategory::Sensitive(_))
    }
}

/// What kind of resource a page element is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// The main HTML document.
    Document,
    /// First-party or CDN script.
    Script,
    /// Stylesheet.
    Style,
    /// Image/media.
    Image,
    /// XHR/fetch to an API.
    Xhr,
    /// A third-party advertising request (bid, creative).
    Ad,
    /// A third-party analytics/tracking beacon.
    Tracker,
}

impl ResourceKind {
    /// True for the third-party ad/tracking kinds an engine-side
    /// ad-blocker goes after.
    pub fn is_ad_related(self) -> bool {
        matches!(self, ResourceKind::Ad | ResourceKind::Tracker)
    }
}

/// One resource a page load fetches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSpec {
    /// Host serving the resource.
    pub host: String,
    /// Path on that host.
    pub path: String,
    /// Response body size in bytes.
    pub size: u32,
    /// Resource kind.
    pub kind: ResourceKind,
}

impl ResourceSpec {
    /// Full https URL of the resource.
    pub fn url_string(&self) -> String {
        format!("https://{}{}", self.host, self.path)
    }
}

/// The load plan of a site's landing page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageSpec {
    /// Size of the main document in bytes.
    pub document_size: u32,
    /// Everything fetched after the document, in order.
    pub resources: Vec<ResourceSpec>,
    /// Virtual time until `DOMContentLoaded` fires, in milliseconds
    /// (past which the crawler's 60-second budget would apply).
    pub dom_content_loaded_ms: u32,
}

impl PageSpec {
    /// Number of requests a full load issues (document + resources).
    pub fn request_count(&self) -> usize {
        1 + self.resources.len()
    }

    /// Total response bytes of a full load.
    pub fn total_bytes(&self) -> u64 {
        self.document_size as u64 + self.resources.iter().map(|r| r.size as u64).sum::<u64>()
    }

    /// Distinct hosts contacted by a full load (document host excluded —
    /// pass it separately since `PageSpec` doesn't know its own domain).
    pub fn third_party_hosts(&self) -> Vec<&str> {
        let mut hosts: Vec<&str> = self.resources.iter().map(|r| r.host.as_str()).collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }
}

/// One website in the crawl population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSpec {
    /// 1-based popularity rank (or position within the sensitive set).
    pub rank: u32,
    /// Registrable domain of the site.
    pub domain: String,
    /// Hostname of the landing page (usually `www.` + domain).
    pub host: String,
    /// Landing-page path; sensitive sites get topical paths so full-URL
    /// leaks are distinguishable from hostname-only leaks.
    pub landing_path: String,
    /// Ranking bucket / sensitive category.
    pub category: SiteCategory,
    /// The page load plan.
    pub page: PageSpec,
    /// When true, the canonical entry point is the apex domain, which
    /// answers `301` to the `www.` host — the redirect dance most real
    /// top sites perform.
    pub apex_redirect: bool,
    /// True for deep-tail sites (ranks beyond the paper's head set):
    /// self-hosted, size-addressed resources served formulaically by the
    /// origin instead of from the pre-rendered directory, so a 100k-site
    /// world does not pre-render ~2M response templates.
    pub tail: bool,
}

impl SiteSpec {
    /// The URL the crawler navigates to: the apex for redirecting sites,
    /// the `www.` landing page otherwise.
    pub fn url_string(&self) -> String {
        if self.apex_redirect {
            format!("https://{}{}", self.domain, self.landing_path)
        } else {
            format!("https://{}{}", self.host, self.landing_path)
        }
    }

    /// The post-redirect landing URL (`www.` host).
    pub fn landing_url_string(&self) -> String {
        format!("https://{}{}", self.host, self.landing_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> PageSpec {
        PageSpec {
            document_size: 50_000,
            resources: vec![
                ResourceSpec {
                    host: "cdn.a.com".into(),
                    path: "/app.js".into(),
                    size: 10_000,
                    kind: ResourceKind::Script,
                },
                ResourceSpec {
                    host: "doubleclick.net".into(),
                    path: "/bid".into(),
                    size: 2_000,
                    kind: ResourceKind::Ad,
                },
                ResourceSpec {
                    host: "cdn.a.com".into(),
                    path: "/logo.png".into(),
                    size: 4_000,
                    kind: ResourceKind::Image,
                },
            ],
            dom_content_loaded_ms: 900,
        }
    }

    #[test]
    fn page_accounting() {
        let p = page();
        assert_eq!(p.request_count(), 4);
        assert_eq!(p.total_bytes(), 66_000);
        assert_eq!(p.third_party_hosts(), vec!["cdn.a.com", "doubleclick.net"]);
    }

    #[test]
    fn kinds_classify() {
        assert!(ResourceKind::Ad.is_ad_related());
        assert!(ResourceKind::Tracker.is_ad_related());
        assert!(!ResourceKind::Script.is_ad_related());
        assert!(SiteCategory::Sensitive(SensitiveCategory::Health).is_sensitive());
        assert!(!SiteCategory::Popular.is_sensitive());
    }

    #[test]
    fn urls_render() {
        let r = &page().resources[1];
        assert_eq!(r.url_string(), "https://doubleclick.net/bid");
        let site = SiteSpec {
            rank: 3,
            domain: "example.org".into(),
            host: "www.example.org".into(),
            landing_path: "/".into(),
            category: SiteCategory::Popular,
            page: page(),
            apex_redirect: false,
            tail: false,
        };
        assert_eq!(site.url_string(), "https://www.example.org/");
        let redirecting = SiteSpec { apex_redirect: true, ..site };
        assert_eq!(redirecting.url_string(), "https://example.org/");
        assert_eq!(redirecting.landing_url_string(), "https://www.example.org/");
    }
}
