//! Full-study orchestration: all 15 browsers over the same site list.

use panoptes::campaign::{run_crawl, CampaignResult};
use panoptes::config::CampaignConfig;
use panoptes::idle::{run_idle, IdleResult};
use panoptes_browsers::registry::all_profiles;
use panoptes_simnet::clock::SimDuration;
use panoptes_web::site::SiteSpec;
use panoptes_web::World;

/// Crawls every browser in Table 1 over `sites`.
pub fn run_full_crawl(
    world: &World,
    sites: &[SiteSpec],
    config: &CampaignConfig,
) -> Vec<CampaignResult> {
    all_profiles()
        .iter()
        .map(|profile| run_crawl(world, profile, sites, config))
        .collect()
}

/// Runs the §3.5 idle experiment for every browser.
pub fn run_full_idle(
    world: &World,
    duration: SimDuration,
    config: &CampaignConfig,
) -> Vec<IdleResult> {
    all_profiles()
        .iter()
        .map(|profile| run_idle(world, profile, duration, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_web::generator::GeneratorConfig;

    #[test]
    fn full_crawl_covers_all_browsers() {
        let world =
            World::build(&GeneratorConfig { popular: 3, sensitive: 2, ..Default::default() });
        let results = run_full_crawl(&world, &world.sites, &CampaignConfig::default());
        assert_eq!(results.len(), 15);
        for r in &results {
            assert_eq!(r.visits.len(), 5, "{}", r.profile.name);
            assert!(!r.store.is_empty(), "{}", r.profile.name);
        }
    }
}
