//! Country codes and EU membership.

/// An ISO 3166-1 alpha-2 country code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Country(pub [u8; 2]);

impl Country {
    /// Builds a code from a two-letter string (panics on wrong length —
    /// codes are compile-time constants in this suite).
    pub fn new(code: &str) -> Country {
        let bytes = code.as_bytes();
        assert!(bytes.len() == 2, "country code must be two letters: {code:?}");
        Country([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("ascii")
    }

    /// True for EU member states — the §3.4 GDPR analysis asks whether a
    /// phone-home destination is inside or outside the Union.
    pub fn is_eu(self) -> bool {
        const EU: &[&str] = &[
            "AT", "BE", "BG", "HR", "CY", "CZ", "DK", "EE", "FI", "FR", "DE", "GR", "HU", "IE",
            "IT", "LV", "LT", "LU", "MT", "NL", "PL", "PT", "RO", "SK", "SI", "ES", "SE",
        ];
        EU.contains(&self.as_str())
    }

    /// Human-readable country name for report output.
    pub fn name(self) -> &'static str {
        match self.as_str() {
            "GR" => "Greece",
            "DE" => "Germany",
            "NL" => "Netherlands",
            "FR" => "France",
            "IE" => "Ireland",
            "US" => "United States",
            "RU" => "Russia",
            "CN" => "China",
            "CA" => "Canada",
            "VN" => "Vietnam",
            "KR" => "South Korea",
            "NO" => "Norway",
            "GB" => "United Kingdom",
            "CH" => "Switzerland",
            "JP" => "Japan",
            _ => "Unknown",
        }
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_case() {
        assert_eq!(Country::new("gr").as_str(), "GR");
        assert_eq!(Country::new("Ru").to_string(), "RU");
    }

    #[test]
    #[should_panic(expected = "two letters")]
    fn rejects_wrong_length() {
        Country::new("GRC");
    }

    #[test]
    fn eu_membership() {
        for eu in ["GR", "DE", "FR", "IE", "NL", "SE"] {
            assert!(Country::new(eu).is_eu(), "{eu} is EU");
        }
        // The §3.4 destinations: Russia, China, Canada — plus other non-EU.
        for non_eu in ["RU", "CN", "CA", "US", "NO", "GB", "KR", "VN"] {
            assert!(!Country::new(non_eu).is_eu(), "{non_eu} is not EU");
        }
    }

    #[test]
    fn names() {
        assert_eq!(Country::new("RU").name(), "Russia");
        assert_eq!(Country::new("CN").name(), "China");
        assert_eq!(Country::new("CA").name(), "Canada");
        assert_eq!(Country::new("ZZ").name(), "Unknown");
    }
}
