//! Full privacy audit of a single browser — the workflow a researcher
//! or journalist would run against one app.
//!
//! ```text
//! cargo run --release --example audit_browser -- Opera
//! ```

use panoptes_suite::analysis::addomains::ad_domain_row;
use panoptes_suite::analysis::dns::{dns_row, ObservedResolver};
use panoptes_suite::analysis::history::detect_history_leaks;
use panoptes_suite::analysis::pii::pii_row;
use panoptes_suite::analysis::sensitive::sensitive_row;
use panoptes_suite::analysis::transfers::transfer_row;
use panoptes_suite::analysis::volume::volume_row;
use panoptes_suite::browsers::registry::{all_profiles, profile_by_name};
use panoptes_suite::device::DeviceProperties;
use panoptes_suite::geo::GeoDb;
use panoptes_suite::panoptes::campaign::run_crawl;
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Opera".to_string());
    let Some(profile) = profile_by_name(&name) else {
        eprintln!("unknown browser {name:?}; choose one of:");
        for p in all_profiles() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(2);
    };

    println!("=== Panoptes audit: {} {} ({}) ===", profile.name, profile.version, profile.package);

    let world = World::build(&GeneratorConfig { popular: 40, sensitive: 20, ..Default::default() });
    let result = run_crawl(&world, &profile, &world.sites, &CampaignConfig::default());

    let v = volume_row(&result);
    println!("\n-- traffic split (Figs 2/4) --");
    println!("engine requests : {:>8}", v.engine_requests);
    println!("native requests : {:>8}  (ratio {:.2})", v.native_requests, v.request_ratio);
    println!("native volume   : {:>8}B (ratio {:.2})", v.native_bytes, v.volume_ratio);

    let ads = ad_domain_row(&result);
    println!("\n-- native destinations (Fig 3) --");
    println!(
        "{} distinct hosts, {} ad/analytics-related ({:.1}%)",
        ads.native_hosts.len(),
        ads.ad_hosts.len(),
        ads.ad_percent
    );
    for host in &ads.ad_hosts {
        println!("  AD: {host}");
    }

    println!("\n-- DNS (§3.2) --");
    let dns = dns_row(&result);
    match dns.resolver {
        ObservedResolver::Doh(p) => println!("DoH via {} ({} lookups)", p.host(), dns.lookups),
        ObservedResolver::LocalStub => println!("local stub resolver ({} lookups)", dns.lookups),
        ObservedResolver::None => println!("no lookups observed"),
    }

    println!("\n-- browsing-history leaks (§3.2) --");
    let leaks = detect_history_leaks(&result);
    if leaks.is_empty() {
        println!("none detected");
    }
    for l in &leaks {
        println!(
            "  {} -> {} [{} / {:?} / {:?}]{}",
            l.browser,
            l.destination,
            l.granularity.as_str(),
            l.encoding,
            l.channel,
            if l.persistent_id.is_some() { "  ** persistent identifier **" } else { "" }
        );
    }

    let sens = sensitive_row(&result);
    if sens.sensitive_urls_leaked > 0 {
        println!(
            "\n-- sensitive content (§3.2) --\n{}/{} sensitive URLs leaked in full, e.g.\n  {}",
            sens.sensitive_urls_leaked,
            sens.sensitive_visits,
            sens.example.as_deref().unwrap_or("")
        );
    }

    if let Some(t) = transfer_row(&result, &GeoDb::standard()) {
        println!("\n-- international transfers (§3.4) --");
        for (host, country) in &t.destinations {
            println!(
                "  {host} -> {} ({}){}",
                country.name(),
                country,
                if country.is_eu() { "" } else { "  [outside EU]" }
            );
        }
    }

    println!("\n-- PII / device info (Table 2) --");
    let pii = pii_row(&result, &DeviceProperties::testbed_tablet());
    if pii.leaked.is_empty() {
        println!("none detected");
    }
    for (field, dest) in &pii.leaked {
        println!("  {:<22} -> {}", field.label(), dest);
    }
}
