//! Chrome 113.0.5672.77 — the baseline: CDP-instrumented, quiet natively,
//! no PII beyond the UA defaults (Table 2: all "No").

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::ResolverKind;

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, Payload, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("update.googleapis.com", "/service/update2/json"),
    NativeCall::ping("safebrowsing.googleapis.com", "/v4/threatListUpdates:fetch"),
];

/// Safe Browsing hash-prefix check: a real network touch per visit that
/// leaks nothing (k-anonymous prefixes), unlike the full-URL reporters.
const PER_VISIT: &[NativeCall] = &[NativeCall {
    host: "safebrowsing.googleapis.com",
    path: "/v4/fullHashes:find",
    method: Method::Post,
    payload: Payload::None,
    body_pad: 32,
    count: 1,
    respects_incognito: false,
}];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("update.googleapis.com", "/service/update2/json"),
    NativeCall::ping("safebrowsing.googleapis.com", "/v4/threatListUpdates:fetch"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    (180, NativeCall::ping("safebrowsing.googleapis.com", "/v4/threatListUpdates:fetch")),
    (300, NativeCall::ping("update.googleapis.com", "/service/update2/json")),
];

const PII: &[PiiField] = &[];

/// Builds the Chrome profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "Chrome",
        version: "113.0.5672.77",
        package: "com.android.chrome",
        instrumentation: Instrumentation::Cdp,
        supports_incognito: true,
        resolver: ResolverKind::LocalStub,
        adblock: false,
        attempts_h3: true,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: None,
        injects_js_collector: None,
        honors_telemetry_consent: true,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
