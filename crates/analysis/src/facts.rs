//! Parse-once flow facts shared by every analysis pass.
//!
//! A full study runs ~10 passes (history, PII, identifiers, sensitive,
//! …) over each capture, and before this layer existed each pass
//! re-parsed the same URLs, query strings and JSON bodies through
//! [`crate::scan::observations`] — the same flow could be decomposed a
//! dozen times. [`CaptureFacts`] memoises those derived results per
//! flow, lazily: the first pass that asks for a flow's observations
//! pays for the parse, every later pass (and every later ask within
//! the same pass) gets the cached slice.
//!
//! The facts cache is parked in the sealed [`FlowSnapshot`]'s extension
//! slot, so its lifetime is exactly the snapshot's: a mutated store
//! seals a fresh snapshot and therefore a fresh, empty facts layer —
//! stale derived data is impossible by construction.
//!
//! Facts slots are resolved **arithmetically**: the snapshot keeps its
//! flows in one contiguous arena, so a `&Flow` maps to its slot by
//! address offset — no hash lookup per flow, no per-record `Arc`.
//!
//! Passes consume flows through [`FlowView`], which pairs an arena
//! `&Flow` with its facts slot:
//!
//! ```ignore
//! let snap = result.store.snapshot();
//! let facts = capture_facts(&snap);
//! for view in facts.views(snap.native()) {
//!     for obs in view.observations() { /* parsed once, ever */ }
//! }
//! ```

use std::sync::{Arc, OnceLock};

use panoptes_http::url::Url;
use panoptes_mitm::{Flow, FlowSnapshot, Flows};

use crate::scan::{decodings, observations_with_url, Observation};

/// Lazily-computed derived data for one flow.
#[derive(Debug, Default)]
pub struct FlowFacts {
    url: OnceLock<Option<Url>>,
    scan: OnceLock<ScanFacts>,
    domain: OnceLock<String>,
}

/// The memoised output of [`crate::scan`] over one flow.
#[derive(Debug)]
struct ScanFacts {
    observations: Vec<Observation>,
    /// `decodings(obs.value)` for each observation, parallel to
    /// `observations` — the positional order is load-bearing (the
    /// history pass maps decoding index → wire encoding).
    decodings: Vec<Vec<String>>,
}

impl FlowFacts {
    fn scan(&self, flow: &Flow) -> &ScanFacts {
        self.scan.get_or_init(|| {
            let observations = observations_with_url(flow, self.url(flow));
            let decodings = observations.iter().map(|o| decodings(&o.value)).collect();
            ScanFacts { observations, decodings }
        })
    }

    /// The flow's parsed URL (`None` when unparseable), computed once.
    pub fn url(&self, flow: &Flow) -> Option<&Url> {
        self.url.get_or_init(|| Url::parse(&flow.url).ok()).as_ref()
    }

    /// Every key/value observation of the flow, extracted once.
    pub fn observations(&self, flow: &Flow) -> &[Observation] {
        &self.scan(flow).observations
    }

    /// `(observation, its plausible decodings)` pairs, both memoised.
    /// Decoding order matches [`crate::scan::decodings`] exactly.
    pub fn decoded_observations(
        &self,
        flow: &Flow,
    ) -> impl Iterator<Item = (&Observation, &[String])> {
        let scan = self.scan(flow);
        scan.observations
            .iter()
            .zip(scan.decodings.iter().map(Vec::as_slice))
    }

    /// The destination's registrable domain, computed once.
    pub fn registrable_domain(&self, flow: &Flow) -> &str {
        self.domain.get_or_init(|| flow.registrable_domain())
    }
}

/// One flow plus its facts slot — what an analysis pass iterates.
#[derive(Clone, Copy)]
pub struct FlowView<'a> {
    flow: &'a Flow,
    facts: &'a FlowFacts,
}

impl<'a> FlowView<'a> {
    /// The underlying captured flow.
    pub fn flow(&self) -> &'a Flow {
        self.flow
    }

    /// The flow's parsed URL, memoised.
    pub fn url(&self) -> Option<&'a Url> {
        self.facts.url(self.flow)
    }

    /// The flow's observations, memoised.
    pub fn observations(&self) -> &'a [Observation] {
        self.facts.observations(self.flow)
    }

    /// `(observation, decodings)` pairs, memoised.
    pub fn decoded_observations(&self) -> impl Iterator<Item = (&'a Observation, &'a [String])> {
        self.facts.decoded_observations(self.flow)
    }

    /// The destination's registrable domain, memoised.
    pub fn registrable_domain(&self) -> &'a str {
        self.facts.registrable_domain(self.flow)
    }
}

impl std::ops::Deref for FlowView<'_> {
    type Target = Flow;
    fn deref(&self) -> &Flow {
        self.flow
    }
}

/// Per-capture facts: one [`FlowFacts`] slot per snapshot flow.
pub struct CaptureFacts {
    /// The snapshot's flow arena, pinned so slot addresses stay valid
    /// for this layer's whole lifetime.
    slab: Arc<[Flow]>,
    /// Parallel to the arena's capture-order flows.
    slots: Vec<FlowFacts>,
}

impl CaptureFacts {
    fn build(snapshot: &FlowSnapshot) -> CaptureFacts {
        let slab = snapshot.arena().clone();
        let slots = (0..slab.len()).map(|_| FlowFacts::default()).collect();
        CaptureFacts { slab, slots }
    }

    /// The arena slot of one snapshot flow, by address arithmetic: the
    /// arena is contiguous, so `(addr - base) / size_of::<Flow>()` is
    /// the capture-order index.
    fn slot_of(&self, flow: &Flow) -> usize {
        let base = self.slab.as_ptr() as usize;
        let offset = (flow as *const Flow as usize).wrapping_sub(base);
        let idx = offset / std::mem::size_of::<Flow>();
        assert!(
            idx < self.slots.len() && offset.is_multiple_of(std::mem::size_of::<Flow>()),
            "flow does not belong to this capture's snapshot"
        );
        idx
    }

    /// The facts slot of one snapshot flow.
    ///
    /// # Panics
    /// When `flow` is not a record of the snapshot these facts were
    /// built from (a cross-capture mix-up is a programming error).
    pub fn of<'a>(&'a self, flow: &'a Flow) -> FlowView<'a> {
        FlowView { flow, facts: &self.slots[self.slot_of(flow)] }
    }

    /// Views over any of the snapshot's flow windows (capture order, a
    /// class view, a package view, a shard slice).
    pub fn views<'a>(&'a self, flows: Flows<'a>) -> impl Iterator<Item = FlowView<'a>> {
        flows.iter().map(move |f| self.of(f))
    }

    /// Number of flows covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// The capture's shared facts layer, created on first use and memoised
/// in the snapshot's extension slot thereafter.
pub fn capture_facts(snapshot: &FlowSnapshot) -> Arc<CaptureFacts> {
    snapshot
        .extension_or_init(|| Arc::new(CaptureFacts::build(snapshot)))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_http::netaddr::IpAddr;
    use crate::scan::observations;
    use panoptes_http::method::Method;
    use panoptes_http::request::HttpVersion;
    use panoptes_mitm::{FlowClass, FlowStore};

    fn flow(id: u64, url: &str, body: &str) -> Flow {
        Flow {
            id,
            time_us: id * 1000,
            uid: 1,
            package: "p".into(),
            host: Url::parse(url).map(|u| u.host().into()).unwrap_or_default(),
            dst_ip: IpAddr::new(1, 1, 1, 1),
            dst_port: 443,
            method: Method::Post,
            url: url.into(),
            request_headers: vec![],
            request_body: body.into(),
            status: 200,
            bytes_out: 0,
            bytes_in: 0,
            version: HttpVersion::H2,
            class: if id.is_multiple_of(2) { FlowClass::Engine } else { FlowClass::Native },
        }
    }

    fn store() -> FlowStore {
        let store = FlowStore::new();
        store.push(flow(1, "https://t.example/p?uid=abc&tz=Europe%2FAthens", ""));
        store.push(flow(2, "https://x.example/q", r#"{"device":{"model":"SM-T580"}}"#));
        store.push(flow(3, "https://t.example/r?k=aHR0cHM6Ly9hLmNvbS8", "a=1&b=2"));
        store
    }

    #[test]
    fn facts_match_direct_scan() {
        let store = store();
        let snap = store.snapshot();
        let facts = capture_facts(&snap);
        for view in facts.views(snap.all()) {
            assert_eq!(view.observations(), observations(view.flow()).as_slice());
            for (obs, decs) in view.decoded_observations() {
                assert_eq!(decs, crate::scan::decodings(&obs.value).as_slice());
            }
            assert_eq!(view.registrable_domain(), view.flow().registrable_domain());
            assert_eq!(
                view.url().map(|u| u.host().to_string()),
                Url::parse(&view.flow().url).ok().map(|u| u.host().to_string())
            );
        }
    }

    #[test]
    fn facts_are_memoised_per_snapshot() {
        let store = store();
        let snap = store.snapshot();
        let a = capture_facts(&snap);
        let b = capture_facts(&snap);
        assert!(Arc::ptr_eq(&a, &b), "one facts layer per snapshot");
        // Observation slices are the same allocation on repeated asks.
        let all = snap.all();
        let flow = &all[0];
        let first = a.of(flow).observations().as_ptr();
        let again = b.of(flow).observations().as_ptr();
        assert_eq!(first, again);
    }

    #[test]
    fn class_views_resolve_to_the_same_slots() {
        let store = store();
        let snap = store.snapshot();
        let facts = capture_facts(&snap);
        let all = snap.all();
        for view in facts.views(snap.native()) {
            let direct = facts.of(&all[(view.id - 1) as usize]);
            assert_eq!(
                view.observations().as_ptr(),
                direct.observations().as_ptr(),
                "native view and capture-order view share one slot"
            );
        }
        assert_eq!(facts.len(), 3);
        assert!(!facts.is_empty());
    }

    #[test]
    fn mutation_seals_a_fresh_facts_layer() {
        let store = store();
        let a = capture_facts(&store.snapshot());
        store.push(flow(4, "https://y.example/", ""));
        let b = capture_facts(&store.snapshot());
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.len(), 4);
    }
}
