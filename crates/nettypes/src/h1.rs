//! HTTP/1.1 wire serialization and parsing.
//!
//! The simulator moves typed [`Request`]/[`Response`] values, but a
//! measurement toolkit must also speak the wire format: the flow stores
//! export raw exchanges, tests feed hand-written requests through the
//! proxy, and the `wire_size` accounting used for Figure 4 is defined by
//! exactly this rendering.

use bytes::Bytes;

use crate::headers::Headers;
use crate::method::Method;
use crate::request::{HttpVersion, Request};
use crate::response::Response;
use crate::status::StatusCode;
use crate::url::Url;

/// An HTTP/1.1 parse error with a human-readable cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H1Error(pub String);

impl std::fmt::Display for H1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http/1.1 parse error: {}", self.0)
    }
}

impl std::error::Error for H1Error {}

fn err(message: &str) -> H1Error {
    H1Error(message.to_string())
}

/// Renders a request in origin-form (`GET /path?query HTTP/1.1` with a
/// `Host` header), the shape a transparent proxy sees after TLS.
pub fn render_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    let path_and_query = {
        let full = req.url.to_string_full();
        let after_scheme = full.splitn(4, '/').nth(3).map(|rest| format!("/{rest}"));
        after_scheme.unwrap_or_else(|| "/".to_string())
    };
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(path_and_query.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    out.extend_from_slice(b"host: ");
    out.extend_from_slice(req.url.host().as_bytes());
    out.extend_from_slice(b"\r\n");
    for (name, value) in req.headers.iter() {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if !req.body.is_empty() {
        out.extend_from_slice(format!("content-length: {}\r\n", req.body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&req.body);
    out
}

/// Parses an origin-form request (the output of [`render_request`]).
/// The scheme is supplied by the caller (the proxy knows whether the
/// connection was TLS).
pub fn parse_request(input: &[u8], https: bool) -> Result<Request, H1Error> {
    let (head, body) = split_head(input)?;
    let mut lines = head.split(|&b| b == b'\n').map(trim_cr);
    let request_line =
        std::str::from_utf8(lines.next().ok_or_else(|| err("empty input"))?)
            .map_err(|_| err("non-utf8 request line"))?;
    let mut parts = request_line.split(' ');
    let method = Method::parse(parts.next().unwrap_or_default())
        .ok_or_else(|| err("bad method"))?;
    let target = parts.next().ok_or_else(|| err("missing target"))?;
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(err("bad http version")),
    }
    if !target.starts_with('/') {
        return Err(err("target must be origin-form"));
    }

    let mut headers = Headers::new();
    let mut host: Option<String> = None;
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let line = std::str::from_utf8(line).map_err(|_| err("non-utf8 header"))?;
        let (name, value) = line.split_once(':').ok_or_else(|| err("malformed header"))?;
        let (name, value) = (name.trim(), value.trim());
        if name.eq_ignore_ascii_case("host") {
            host = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| err("bad content-length"))?;
        } else {
            headers.append(name, value);
        }
    }
    let host = host.ok_or_else(|| err("missing Host header"))?;
    if body.len() < content_length {
        return Err(err("truncated body"));
    }

    let scheme = if https { "https" } else { "http" };
    let url = Url::parse(&format!("{scheme}://{host}{target}"))
        .map_err(|e| err(&format!("bad target url: {e}")))?;
    Ok(Request {
        method,
        url,
        headers,
        body: Bytes::copy_from_slice(&body[..content_length]),
        version: HttpVersion::H1,
    })
}

/// Renders a response (`HTTP/1.1 200 OK ...`).
pub fn render_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status.0, resp.status.reason()).as_bytes(),
    );
    for (name, value) in resp.headers.iter() {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if !resp.headers.contains("content-length") {
        out.extend_from_slice(format!("content-length: {}\r\n", resp.body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
    out
}

/// Parses a response rendered by [`render_response`].
pub fn parse_response(input: &[u8]) -> Result<Response, H1Error> {
    let (head, body) = split_head(input)?;
    let mut lines = head.split(|&b| b == b'\n').map(trim_cr);
    let status_line = std::str::from_utf8(lines.next().ok_or_else(|| err("empty input"))?)
        .map_err(|_| err("non-utf8 status line"))?;
    let mut parts = status_line.split(' ');
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => return Err(err("bad http version")),
    }
    let code: u16 = parts
        .next()
        .ok_or_else(|| err("missing status"))?
        .parse()
        .map_err(|_| err("bad status code"))?;

    let mut headers = Headers::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let line = std::str::from_utf8(line).map_err(|_| err("non-utf8 header"))?;
        let (name, value) = line.split_once(':').ok_or_else(|| err("malformed header"))?;
        let (name, value) = (name.trim(), value.trim());
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse().map_err(|_| err("bad content-length"))?);
        } else {
            headers.append(name, value);
        }
    }
    let content_length = content_length.unwrap_or(body.len());
    if body.len() < content_length {
        return Err(err("truncated body"));
    }
    Ok(Response {
        status: StatusCode(code),
        headers,
        body: Bytes::copy_from_slice(&body[..content_length]),
    })
}

fn split_head(input: &[u8]) -> Result<(&[u8], &[u8]), H1Error> {
    let sep = input
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| err("missing header terminator"))?;
    Ok((&input[..sep], &input[sep + 4..]))
}

fn trim_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::post(
            Url::parse("https://sba.yandex.net/safety/check?url=abc&x=1").unwrap(),
            &b"payload"[..],
        )
        .with_header("user-agent", "YaBrowser/23.3")
        .with_header("accept", "*/*");
        let wire = render_request(&req);
        let parsed = parse_request(&wire, true).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.url.host(), "sba.yandex.net");
        assert_eq!(parsed.url.query_param("url"), Some("abc"));
        assert_eq!(parsed.headers.get("user-agent"), Some("YaBrowser/23.3"));
        assert_eq!(&parsed.body[..], b"payload");
    }

    #[test]
    fn request_wire_shape() {
        let req = Request::get(Url::parse("https://example.com/a?b=c").unwrap());
        let wire = String::from_utf8(render_request(&req)).unwrap();
        assert!(wire.starts_with("GET /a?b=c HTTP/1.1\r\n"));
        assert!(wire.contains("host: example.com\r\n"));
        assert!(wire.ends_with("\r\n\r\n"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok("hello world").with_header("content-type", "text/plain");
        let wire = render_response(&resp);
        let parsed = parse_response(&wire).unwrap();
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.headers.get("content-type"), Some("text/plain"));
        assert_eq!(&parsed.body[..], b"hello world");
    }

    #[test]
    fn scheme_follows_tls_flag() {
        let req = Request::get(Url::parse("http://example.com/x").unwrap());
        let wire = render_request(&req);
        let tls = parse_request(&wire, true).unwrap();
        assert_eq!(tls.url.scheme().as_str(), "https");
        let plain = parse_request(&wire, false).unwrap();
        assert_eq!(plain.url.scheme().as_str(), "http");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            &b""[..],
            b"GARBAGE\r\n\r\n",
            b"GET /x HTTP/1.1\r\n\r\n",            // no Host
            b"FETCH /x HTTP/1.1\r\nhost: a\r\n\r\n", // bad method
            b"GET x HTTP/1.1\r\nhost: a\r\n\r\n",  // non-origin-form
            b"GET /x HTTP/9\r\nhost: a\r\n\r\n",   // bad version
            b"GET /x HTTP/1.1\r\nhost: a\r\ncontent-length: 10\r\n\r\nshort", // truncated
        ] {
            assert!(parse_request(bad, true).is_err(), "{bad:?}");
        }
        assert!(parse_response(b"HTTP/1.1 not-a-code x\r\n\r\n").is_err());
        assert!(parse_response(b"nonsense").is_err());
    }

    #[test]
    fn missing_content_length_takes_whole_body() {
        let wire = b"HTTP/1.1 200 OK\r\nx: y\r\n\r\nbody-bytes";
        let parsed = parse_response(wire).unwrap();
        assert_eq!(&parsed.body[..], b"body-bytes");
    }
}
