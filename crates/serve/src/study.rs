//! The streamed study runner: parameters → shared artifacts → fleet
//! units on the pool → incremental section events, byte-identical to
//! `repro`.
//!
//! A study at parameters `(seed, sites, population, idle)` is exactly
//! the offline reproduction document: header, the twelve
//! crawl-derived sections, the §3.2 incognito section (three re-crawl
//! pairs), and the two idle sections. The runner schedules every
//! campaign unit — `population` crawls, six incognito crawls,
//! `population` idles — as individual jobs on the server's shared
//! [`WorkPool`] lane for this request, analyses each capture on the
//! request's own handler thread as it seals, and emits each section
//! group the moment its inputs are complete. Concatenating the
//! streamed `header`/`section` payload bytes reproduces `repro`'s
//! stdout exactly (enforced by `tests/serve_determinism.rs`).
//!
//! Backpressure: the lane is opened with a small credit allowance and
//! a credit is granted back only after the already-received unit has
//! been analysed *and* every due event has been written to the client
//! socket. A client that stops reading therefore stalls its own
//! lane's dispatch — bounded buffered results — while other studies
//! keep the workers busy (the pool is work-conserving).
//!
//! Cancellation: every event write can fail (client went away). The
//! runner then drops its lane — pending units are discarded, in-flight
//! units finish and their results are dropped — and, when it was the
//! single-flight builder of a cached document, abandons the cache slot
//! so a later request rebuilds cleanly. No slot, thread, or cache key
//! leaks.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use panoptes::config::CampaignConfig;
use panoptes::fleet::{self, FleetUnit, UnitOutput, WorkPool};
use panoptes_analysis::engine::{
    analyze_crawl, analyze_idle, AnalysisResources, CampaignAnalysis, IdleAnalysis,
};
use panoptes_bench::experiments::Scale;
use panoptes_bench::render;
use panoptes_blocklist::filterlist::easylist_excerpt;
use panoptes_browsers::registry::{population, profile_by_name};
use panoptes_browsers::BrowserProfile;
use panoptes_simnet::SimDuration;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

use crate::cache::ArtifactCache;
use crate::flightrec::FlightRecorder;
use crate::json;

/// The §3.2 incognito browsers, re-crawled normal + incognito — same
/// set and order as `repro`.
const INCOGNITO_BROWSERS: [&str; 3] = ["Edge", "Opera", "UC International"];

/// One study request's parameters (the query string of `GET /study`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyParams {
    /// Campaign seed (world, identifiers, jitter).
    pub seed: u64,
    /// Popular (Tranco-like) site count.
    pub popular: u32,
    /// Sensitive (Curlie-like) site count.
    pub sensitive: u32,
    /// Deep-tail sites beyond the head set (`sites` beyond
    /// `popular + sensitive`).
    pub tail: u32,
    /// Browser population size (15 = the paper's pinned set).
    pub population: usize,
    /// Idle-experiment window in (simulated) seconds.
    pub idle_secs: u64,
}

impl Default for StudyParams {
    /// Quick-scale defaults, mirroring `repro --quick`.
    fn default() -> StudyParams {
        let quick = Scale::quick();
        StudyParams {
            seed: quick.seed,
            popular: quick.popular,
            sensitive: quick.sensitive,
            tail: 0,
            population: 15,
            idle_secs: quick.idle.as_secs(),
        }
    }
}

impl StudyParams {
    /// The equivalent offline [`Scale`].
    pub fn scale(&self) -> Scale {
        Scale {
            popular: self.popular,
            sensitive: self.sensitive,
            tail: self.tail,
            idle: SimDuration::from_secs(self.idle_secs),
            seed: self.seed,
        }
    }

    /// The study-document cache key: every parameter that affects the
    /// output bytes, and nothing else.
    pub fn doc_key(&self) -> String {
        format!(
            "doc:seed={:#x}:popular={}:sensitive={}:tail={}:population={}:idle={}",
            self.seed, self.popular, self.sensitive, self.tail, self.population, self.idle_secs
        )
    }

    /// The equivalent `repro` invocation (docs/bench reporting).
    pub fn repro_args(&self) -> String {
        format!(
            "--seed {} --popular {} --sensitive {} --population {} {}",
            self.seed,
            self.popular,
            self.sensitive,
            self.population,
            if self.tail > 0 {
                format!("--sites {}", self.popular + self.sensitive + self.tail)
            } else {
                String::new()
            }
        )
        .trim_end()
        .to_string()
    }
}

/// Where study events go: the server's chunked HTTP stream, or a
/// buffer in tests. An `Err` from [`EventSink::event`] means the
/// consumer is gone; the runner cancels the study's lane.
pub trait EventSink {
    /// Delivers one event line (without trailing newline).
    fn event(&mut self, line: &str) -> io::Result<()>;
}

impl EventSink for Vec<String> {
    fn event(&mut self, line: &str) -> io::Result<()> {
        self.push(line.to_string());
        Ok(())
    }
}

/// Server-side identity of one request: its process-unique id, the
/// instant it was read off the socket (TTFE and completion are measured
/// from here), and the admission wait it already paid before reaching
/// the engine.
#[derive(Debug, Clone, Copy)]
pub struct RequestInfo {
    /// Process-unique request id (also the trace context's id).
    pub id: u64,
    /// Microseconds spent blocked in the admission queue.
    pub admission_us: u64,
    /// When the server finished parsing the request line.
    pub started: Instant,
}

impl RequestInfo {
    /// A request minted on the spot — for callers driving the engine
    /// without a front-end server (tests, benches).
    pub fn local() -> RequestInfo {
        RequestInfo {
            id: panoptes_obs::ctx::next_request_id(),
            admission_us: 0,
            started: Instant::now(),
        }
    }
}

/// Where one request's latency went, in microseconds. The phases are
/// disjoint segments of the handler thread's timeline, so they sum to
/// at most the request's wall time; the `timing` trailer adds an
/// explicit `other_us` remainder so the total reconciles exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phases {
    /// Blocked in the admission queue before the study started.
    pub admission_us: u64,
    /// Blocked on another request's in-flight cache build (document or
    /// artifact level).
    pub cache_wait_us: u64,
    /// Building shared artifacts here: world, population, filterlist,
    /// analysis resources.
    pub build_us: u64,
    /// Waiting for campaign units to seal (the capture side of the
    /// pipeline, overlapped across the pool).
    pub capture_us: u64,
    /// Analysing sealed captures on the handler thread.
    pub analysis_us: u64,
    /// Rendering document sections.
    pub render_us: u64,
    /// Writing events to the client socket — includes backpressure
    /// stalls when the client reads slowly.
    pub write_us: u64,
}

impl Phases {
    /// Sum of every attributed phase.
    pub fn sum(&self) -> u64 {
        self.admission_us
            + self.cache_wait_us
            + self.build_us
            + self.capture_us
            + self.analysis_us
            + self.render_us
            + self.write_us
    }
}

/// Wraps the caller's sink to observe every write: accumulates socket
/// time (the `write_us` phase, backpressure included), pins
/// time-to-first-event, and bumps the flight recorder's progress clock
/// so a slowly-draining study is not mistaken for a wedged one.
struct TimedSink<'a> {
    inner: &'a mut dyn EventSink,
    recorder: &'a FlightRecorder,
    request: u64,
    started: Instant,
    write_us: u64,
    first_event_us: Option<u64>,
}

impl EventSink for TimedSink<'_> {
    fn event(&mut self, line: &str) -> io::Result<()> {
        let write_start = Instant::now();
        let result = self.inner.event(line);
        self.write_us += write_start.elapsed().as_micros() as u64;
        if self.first_event_us.is_none() {
            self.first_event_us = Some(self.started.elapsed().as_micros() as u64);
        }
        if result.is_ok() {
            self.recorder.touch(self.request);
        }
        result
    }
}

/// Times one closure into a phase slot.
fn timed<T>(slot: &mut u64, f: impl FnOnce() -> T) -> T {
    let phase_start = Instant::now();
    let value = f();
    *slot += phase_start.elapsed().as_micros() as u64;
    value
}

/// A finished study document: the exact bytes `repro` would print,
/// split into streamable units.
pub struct StudyDoc {
    /// The header block (`render::header_md`).
    pub header: String,
    /// `(section name, section bytes)` in document order.
    pub sections: Vec<(String, String)>,
}

impl StudyDoc {
    /// The full document — byte-identical to offline `repro` stdout.
    pub fn bytes(&self) -> String {
        let mut out = self.header.clone();
        for (_, text) in &self.sections {
            out.push_str(text);
        }
        out
    }
}

/// Why a study stopped before completing.
#[derive(Debug)]
pub enum StudyError {
    /// The client went away (event write failed); the lane was
    /// cancelled.
    Disconnected(io::Error),
    /// A campaign unit died (fleet-level failure).
    Fleet(String),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Disconnected(e) => write!(f, "client disconnected: {e}"),
            StudyError::Fleet(msg) => write!(f, "study units failed: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {}

/// What a completed streamed study produced (server/bench accounting).
#[derive(Debug, Clone, Copy)]
pub struct StudyOutcome {
    /// Served from the document cache (no units scheduled).
    pub cached: bool,
    /// Total document payload bytes streamed.
    pub bytes: usize,
    /// Section count (excluding the header).
    pub sections: usize,
}

/// The shared study engine: one per server process. Owns the worker
/// pool every study's units interleave on, and (optionally) the
/// shared-artifact cache. `cache: None` is the honest A/B baseline —
/// every request builds its world, population, filterlist and document
/// from scratch.
pub struct StudyEngine {
    pool: WorkPool,
    cache: Option<Arc<ArtifactCache>>,
    /// Always-on flight recorder: request lifecycle ring + the
    /// active-study registry the watchdog polls.
    recorder: Arc<FlightRecorder>,
    /// Lane ids are minted per study; also used as the progress tag.
    next_lane: AtomicU64,
    /// Initial + steady-state credit allowance per lane: how many of a
    /// study's units may be queued-or-running ahead of the client's
    /// read position.
    credits: usize,
    /// Per-unit `[study-N]` narration through the obs progress sink.
    narrate: bool,
}

impl StudyEngine {
    /// An engine with `workers` pool workers and, unless
    /// `cache_budget_bytes` is `None`, a shared cache of that budget.
    pub fn new(workers: usize, cache_budget_bytes: Option<u64>) -> StudyEngine {
        StudyEngine {
            pool: WorkPool::new(workers),
            cache: cache_budget_bytes.map(|b| Arc::new(ArtifactCache::new(b))),
            recorder: Arc::new(FlightRecorder::default()),
            next_lane: AtomicU64::new(1),
            credits: 4,
            narrate: false,
        }
    }

    /// The shared cache, when enabled.
    pub fn cache(&self) -> Option<&Arc<ArtifactCache>> {
        self.cache.as_ref()
    }

    /// The engine's flight recorder (server wires the watchdog and
    /// panic hook to it).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Total units currently queued (all studies).
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Pool lanes currently open — one per study being built. Returns
    /// to zero when every study has completed or been cancelled (the
    /// no-slot-leak invariant the determinism tests poll).
    pub fn lanes(&self) -> usize {
        self.pool.lane_count()
    }

    /// Enables per-unit narration through the obs progress sink
    /// (tagged `[study-N]` lines on stderr). Off by default so bench
    /// runs stay quiet.
    pub fn with_narration(mut self) -> StudyEngine {
        self.narrate = true;
        self
    }

    /// Runs one study, streaming events into `sink`. Returns how it
    /// ended; on [`StudyError::Disconnected`] the study's pending units
    /// have been dropped and its pool lane freed.
    ///
    /// The deterministic event stream (header, sections, progress,
    /// done) is byte-identical regardless of tracing; the one
    /// *non-deterministic* addition is the `timing` trailer emitted
    /// just before `done`, attributing the request's latency to phases
    /// ([`Phases`]). Callers without a front-end server pass
    /// [`RequestInfo::local()`].
    pub fn run_streaming(
        &self,
        params: &StudyParams,
        sink: &mut dyn EventSink,
        req: RequestInfo,
    ) -> Result<StudyOutcome, StudyError> {
        panoptes_obs::gauge_add!("serve.studies.inflight", 1);
        self.recorder
            .study_started(req.id, params.repro_args(), 2 * params.population + 6);
        let mut phases = Phases {
            admission_us: req.admission_us,
            ..Phases::default()
        };
        let mut timed_sink = TimedSink {
            inner: sink,
            recorder: &self.recorder,
            request: req.id,
            started: req.started,
            write_us: 0,
            first_event_us: None,
        };
        let result = self.run_streaming_inner(params, &mut timed_sink, req, &mut phases);
        let (write_us, first_event_us) = (timed_sink.write_us, timed_sink.first_event_us);
        panoptes_obs::gauge_add!("serve.studies.inflight", -1);
        match result {
            Ok(outcome) => {
                phases.write_us = write_us;
                let total_us = req.started.elapsed().as_micros() as u64;
                let ttfe_us = first_event_us.unwrap_or(total_us);
                let trailer = ev_timing(req.id, outcome.cached, total_us, ttfe_us, &phases);
                sink.event(&trailer).map_err(StudyError::Disconnected)?;
                sink.event(&ev_done(&outcome))
                    .map_err(StudyError::Disconnected)?;
                panoptes_obs::trace::point_with("serve.timing", None, || trailer.clone());
                record_phase_histograms(total_us, ttfe_us, &phases);
                self.recorder.study_finished(
                    req.id,
                    "study.done",
                    format!(
                        "cached={} bytes={} sections={} total_us={total_us}",
                        outcome.cached, outcome.bytes, outcome.sections
                    ),
                );
                Ok(outcome)
            }
            Err(e) => {
                let kind = match &e {
                    StudyError::Disconnected(_) => "study.disconnect",
                    StudyError::Fleet(_) => "study.error",
                };
                self.recorder.study_finished(req.id, kind, e.to_string());
                Err(e)
            }
        }
    }

    fn run_streaming_inner(
        &self,
        params: &StudyParams,
        sink: &mut dyn EventSink,
        req: RequestInfo,
        phases: &mut Phases,
    ) -> Result<StudyOutcome, StudyError> {
        let Some(cache) = &self.cache else {
            let doc = self.build_streaming(params, sink, req, phases)?;
            return Ok(StudyOutcome {
                cached: false,
                bytes: doc.bytes().len(),
                sections: doc.sections.len(),
            });
        };
        // Whole-study single-flight: identical concurrent requests run
        // the study once; the losers wait and replay the finished
        // document. A mid-build disconnect abandons the slot (waiters
        // take over) rather than caching a half-built study.
        let mut built_here = false;
        let resolved = {
            let built_here = &mut built_here;
            let sink: &mut dyn EventSink = &mut *sink;
            let phases: &mut Phases = &mut *phases;
            cache.try_resolve::<StudyDoc, StudyError, _>(&params.doc_key(), 1 << 16, || {
                *built_here = true;
                self.build_streaming(params, sink, req, phases)
            })?
        };
        // Time blocked on another request's in-flight build of this
        // exact document (single-flight loser wait).
        phases.cache_wait_us += resolved.wait_us;
        let doc = resolved.value;
        let outcome = StudyOutcome {
            cached: !built_here,
            bytes: doc.bytes().len(),
            sections: doc.sections.len(),
        };
        if !built_here {
            // Replay the cached document: same events, zero units.
            self.recorder
                .record(req.id, "study.replay", params.doc_key());
            self.emit_doc(&doc, sink)
                .map_err(StudyError::Disconnected)?;
        }
        Ok(outcome)
    }

    /// Streams an already-built document (cache-hit replay).
    fn emit_doc(&self, doc: &StudyDoc, sink: &mut dyn EventSink) -> io::Result<()> {
        sink.event(&ev_header("cached", &doc.header))?;
        for (name, text) in &doc.sections {
            sink.event(&ev_section(name, text))?;
        }
        Ok(())
    }

    /// Resolves the study's shared build artifacts — through the cache
    /// when enabled, freshly otherwise. Time spent building goes to
    /// `phases.build_us`; time blocked on *another* request's in-flight
    /// build of the same artifact goes to `phases.cache_wait_us`.
    fn artifacts(&self, params: &StudyParams, phases: &mut Phases) -> Artifacts {
        let scale = params.scale();
        let generator = GeneratorConfig {
            seed: params.seed,
            popular: params.popular,
            sensitive: params.sensitive,
            tail: params.tail,
        };
        let sites = u64::from(params.popular + params.sensitive + params.tail);
        let Some(cache) = &self.cache else {
            // Cache-disabled baseline: every request pays full price,
            // including the per-session filterlist compile the offline
            // path does (`shared_filterlist: None`).
            return Artifacts {
                world: Arc::new(timed(&mut phases.build_us, || World::build(&generator))),
                profiles: Arc::new(timed(&mut phases.build_us, || {
                    population(params.seed, params.population)
                })),
                res: Arc::new(timed(&mut phases.build_us, AnalysisResources::standard)),
                config: scale.config(),
            };
        };
        let world_key = format!(
            "world:seed={:#x}:popular={}:sensitive={}:tail={}",
            params.seed, params.popular, params.sensitive, params.tail
        );
        let world = cache.resolve(&world_key, sites * 4096, || World::build(&generator));
        let pop_key = format!("population:seed={:#x}:n={}", params.seed, params.population);
        let profiles = cache.resolve(&pop_key, 64 << 10, || {
            population(params.seed, params.population)
        });
        let filter = cache.resolve("filterlist:easylist-excerpt", 128 << 10, easylist_excerpt);
        let res = cache.resolve("resources:standard", 256 << 10, AnalysisResources::standard);
        for r in [world.wait_us, profiles.wait_us, filter.wait_us, res.wait_us] {
            phases.cache_wait_us += r;
        }
        for r in [
            world.build_us,
            profiles.build_us,
            filter.build_us,
            res.build_us,
        ] {
            phases.build_us += r;
        }
        let config = scale.config().with_shared_filterlist(filter.value);
        Artifacts {
            world: world.value,
            profiles: profiles.value,
            res: res.value,
            config,
        }
    }

    /// Runs the study's units on the pool and streams sections as their
    /// groups complete. Returns the finished document for caching.
    fn build_streaming(
        &self,
        params: &StudyParams,
        sink: &mut dyn EventSink,
        req: RequestInfo,
        phases: &mut Phases,
    ) -> Result<StudyDoc, StudyError> {
        let scale = params.scale();
        let arts = self.artifacts(params, phases);
        let lane = self.next_lane.fetch_add(1, Ordering::Relaxed);
        let tag = format!("study-{lane}");
        let header = timed(&mut phases.render_us, || render::header_md(&scale));
        sink.event(&ev_header(&tag, &header))
            .map_err(StudyError::Disconnected)?;

        // Unit plan, in submission order: `n` crawls, the three §3.2
        // browsers re-crawled normal+incognito, `n` idles — exactly
        // the offline study's unit set.
        let n = arts.profiles.len();
        let incog_config = arts.config.clone().incognito();
        let mut units: Vec<FleetUnit> = Vec::with_capacity(2 * n + 6);
        for p in arts.profiles.iter() {
            units.push(FleetUnit::crawl(p.clone()));
        }
        for name in INCOGNITO_BROWSERS {
            let Some(p) = profile_by_name(name) else {
                return Err(StudyError::Fleet(format!("unknown pinned browser {name}")));
            };
            units.push(FleetUnit::crawl(p.clone()));
            units.push(FleetUnit::crawl(p).with_config(incog_config.clone()));
        }
        for p in arts.profiles.iter() {
            units.push(FleetUnit::idle(p.clone(), scale.idle));
        }
        let total = units.len();

        self.pool.open_lane(lane, self.credits);
        let mut lane_guard = LaneGuard {
            pool: &self.pool,
            lane,
            completed: false,
        };
        let (tx, rx) = mpsc::channel::<(usize, UnitOutput)>();
        // The pool workers are long-lived threads with no thread-local
        // context of their own: the request's trace context is captured
        // here (it is `Copy`) and re-entered inside each job, so unit
        // spans land on the request that scheduled them.
        let ctx = panoptes_obs::ctx::current();
        for (idx, unit) in units.into_iter().enumerate() {
            let world = Arc::clone(&arts.world);
            let config = arts.config.clone();
            let tx = tx.clone();
            let label = unit.label();
            let tag_for_job = tag.clone();
            let narrate = self.narrate;
            let accepted = self.pool.push(
                lane,
                Box::new(move || {
                    let _ctx = ctx.map(panoptes_obs::ctx::enter);
                    let _span = panoptes_obs::trace::span_with("serve.unit", None, || {
                        format!("[{tag_for_job}] {label}")
                    });
                    let output = fleet::run_unit(&world, &world.sites, &config, &unit);
                    if narrate {
                        panoptes_obs::progress::emit(
                            "serve",
                            &format!("[{tag_for_job}] {label}: sealed"),
                        );
                    }
                    // A dropped receiver means the client disconnected
                    // and the lane is being torn down; the result is
                    // simply discarded.
                    let _ = tx.send((idx, output));
                }),
            );
            if !accepted {
                return Err(StudyError::Fleet("pool rejected study unit".to_string()));
            }
        }
        drop(tx);

        // Collect in completion order; emit section groups in document
        // order the moment their inputs are complete.
        let mut crawl_results: Vec<Option<panoptes::campaign::CampaignResult>> =
            (0..n).map(|_| None).collect();
        let mut crawl_analyses: Vec<Option<CampaignAnalysis>> = (0..n).map(|_| None).collect();
        let mut incog_results: Vec<Option<panoptes::campaign::CampaignResult>> =
            (0..6).map(|_| None).collect();
        let mut idle_analyses: Vec<Option<IdleAnalysis>> = (0..n).map(|_| None).collect();
        let (mut crawls_done, mut incogs_done, mut idles_done) = (0usize, 0usize, 0usize);
        let (mut crawl_emitted, mut incog_emitted, mut idle_emitted) = (false, false, false);
        let mut sections: Vec<(String, String)> = Vec::new();

        for received in 0..total {
            let Ok((idx, output)) = timed(&mut phases.capture_us, || rx.recv()) else {
                // A unit panicked (its sender died without sending) —
                // the lane guard cancels what's left.
                return Err(StudyError::Fleet(
                    "a campaign unit failed; study aborted".to_string(),
                ));
            };
            match output {
                UnitOutput::Crawl(result) if idx < n => {
                    crawl_analyses[idx] = Some(timed(&mut phases.analysis_us, || {
                        analyze_crawl(&result, &arts.res)
                    }));
                    crawl_results[idx] = Some(result);
                    crawls_done += 1;
                }
                UnitOutput::Crawl(result) => {
                    incog_results[idx - n] = Some(result);
                    incogs_done += 1;
                }
                UnitOutput::Idle(result) => {
                    idle_analyses[idx - n - 6] =
                        Some(timed(&mut phases.analysis_us, || analyze_idle(&result)));
                    idles_done += 1;
                }
            }
            self.recorder.study_progress(req.id, received + 1, total);
            sink.event(&ev_progress(&tag, received + 1, total))
                .map_err(StudyError::Disconnected)?;

            if !crawl_emitted && crawls_done == n {
                let results: Vec<_> = crawl_results.drain(..).flatten().collect();
                let analyses: Vec<_> = crawl_analyses.drain(..).flatten().collect();
                let rendered = timed(&mut phases.render_us, || {
                    render::crawl_sections(&results, &analyses)
                });
                for (name, text) in rendered {
                    sink.event(&ev_section(name, &text))
                        .map_err(StudyError::Disconnected)?;
                    sections.push((name.to_string(), text));
                }
                crawl_emitted = true;
            }
            if crawl_emitted && !incog_emitted && incogs_done == 6 {
                let raw: Vec<_> = incog_results.drain(..).flatten().collect();
                let pairs: Vec<_> = timed(&mut phases.analysis_us, || {
                    raw.chunks(2)
                        .map(|pair| {
                            (
                                analyze_crawl(&pair[0], &arts.res),
                                analyze_crawl(&pair[1], &arts.res),
                            )
                        })
                        .collect::<Vec<_>>()
                });
                let (name, text) =
                    timed(&mut phases.render_us, || render::incognito_section(&pairs));
                sink.event(&ev_section(name, &text))
                    .map_err(StudyError::Disconnected)?;
                sections.push((name.to_string(), text));
                incog_emitted = true;
            }
            if incog_emitted && !idle_emitted && idles_done == n {
                let analyses: Vec<_> = idle_analyses.drain(..).flatten().collect();
                let rendered = timed(&mut phases.render_us, || render::idle_sections(&analyses));
                for (name, text) in rendered {
                    sink.event(&ev_section(name, &text))
                        .map_err(StudyError::Disconnected)?;
                    sections.push((name.to_string(), text));
                }
                idle_emitted = true;
            }

            // Results held for a not-yet-complete group: the stream's
            // buffer occupancy.
            let buffered = (if crawl_emitted { 0 } else { crawls_done })
                + (if incog_emitted { 0 } else { incogs_done })
                + (if idle_emitted { 0 } else { idles_done });
            panoptes_obs::gauge_set!("serve.stream.buffered_units", buffered as i64);

            // The client drained everything due so far: release one
            // more unit into the pool (backpressure valve).
            self.pool.grant(lane, 1);
        }

        if !(crawl_emitted && incog_emitted && idle_emitted) {
            return Err(StudyError::Fleet(
                "study ended with incomplete groups".to_string(),
            ));
        }
        lane_guard.completed = true;
        drop(lane_guard);
        Ok(StudyDoc { header, sections })
    }
}

/// The per-study build inputs, shared across requests when the cache
/// is enabled.
struct Artifacts {
    world: Arc<World>,
    profiles: Arc<Vec<BrowserProfile>>,
    res: Arc<AnalysisResources>,
    /// The campaign config for this study (shared filterlist wired in
    /// when cached).
    config: CampaignConfig,
}

/// Cancels the study's lane unless the study completed — the
/// no-slot-leak guarantee on disconnect, unit failure, or panic.
struct LaneGuard<'a> {
    pool: &'a WorkPool,
    lane: u64,
    completed: bool,
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            self.pool.close_lane(self.lane);
        } else {
            self.pool.cancel(self.lane);
        }
    }
}

/// `{"event":"header",...}` — the study's first event (time-to-first-
/// event is measured to this line).
fn ev_header(tag: &str, data: &str) -> String {
    format!(
        "{{\"event\":\"header\",\"study\":{},\"data\":{}}}",
        json::quoted(tag),
        json::quoted(data)
    )
}

/// `{"event":"section",...}` — one document section's exact bytes.
fn ev_section(name: &str, data: &str) -> String {
    format!(
        "{{\"event\":\"section\",\"name\":{},\"data\":{}}}",
        json::quoted(name),
        json::quoted(data)
    )
}

/// `{"event":"progress",...}` — units completed so far.
fn ev_progress(tag: &str, done: usize, total: usize) -> String {
    format!(
        "{{\"event\":\"progress\",\"study\":{},\"done\":{done},\"total\":{total}}}",
        json::quoted(tag)
    )
}

/// `{"event":"timing",...}` — the non-deterministic latency-attribution
/// trailer, emitted immediately before `done`. `other_us` is the
/// unattributed remainder, so the seven phases plus `other_us` sum to
/// `total_us` exactly (modulo saturation when clock granularity makes
/// the phase sum overshoot by a few µs).
fn ev_timing(request: u64, cached: bool, total_us: u64, ttfe_us: u64, phases: &Phases) -> String {
    let other_us = total_us.saturating_sub(phases.sum());
    format!(
        "{{\"event\":\"timing\",\"request\":{request},\"cached\":{cached},\
         \"total_us\":{total_us},\"ttfe_us\":{ttfe_us},\
         \"admission_us\":{},\"cache_wait_us\":{},\"build_us\":{},\"capture_us\":{},\
         \"analysis_us\":{},\"render_us\":{},\"write_us\":{},\"other_us\":{other_us}}}",
        phases.admission_us,
        phases.cache_wait_us,
        phases.build_us,
        phases.capture_us,
        phases.analysis_us,
        phases.render_us,
        phases.write_us,
    )
}

/// Feeds one finished request's attribution into the `/metrics` log2
/// histograms (`serve.ttfe_us`, `serve.completion_us`, and one
/// `serve.phase.*` histogram per phase).
fn record_phase_histograms(total_us: u64, ttfe_us: u64, phases: &Phases) {
    panoptes_obs::record!("serve.ttfe_us", Runtime, ttfe_us);
    panoptes_obs::record!("serve.completion_us", Runtime, total_us);
    panoptes_obs::record!("serve.study.wall_us", Runtime, total_us);
    panoptes_obs::record!("serve.phase.admission_us", Runtime, phases.admission_us);
    panoptes_obs::record!("serve.phase.cache_wait_us", Runtime, phases.cache_wait_us);
    panoptes_obs::record!("serve.phase.build_us", Runtime, phases.build_us);
    panoptes_obs::record!("serve.phase.capture_us", Runtime, phases.capture_us);
    panoptes_obs::record!("serve.phase.analysis_us", Runtime, phases.analysis_us);
    panoptes_obs::record!("serve.phase.render_us", Runtime, phases.render_us);
    panoptes_obs::record!("serve.phase.write_us", Runtime, phases.write_us);
}

/// `{"event":"done",...}` — the stream's terminal event.
fn ev_done(outcome: &StudyOutcome) -> String {
    format!(
        "{{\"event\":\"done\",\"cached\":{},\"bytes\":{},\"sections\":{}}}",
        outcome.cached, outcome.bytes, outcome.sections
    )
}

/// `{"event":"error",...}` — emitted before closing on a failed study.
pub fn ev_error(message: &str) -> String {
    format!(
        "{{\"event\":\"error\",\"message\":{}}}",
        json::quoted(message)
    )
}
