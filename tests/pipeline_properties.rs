//! Cross-crate invariants of the measurement pipeline itself:
//! determinism, conservation (engine count bookkeeping vs the proxy's
//! databases), taint hygiene, and persistence round-trips.

use panoptes_suite::browsers::registry::{all_profiles, profile_by_name};
use panoptes_suite::mitm::{FlowClass, FlowStore, TAINT_HEADER};
use panoptes_suite::panoptes::campaign::run_crawl;
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

fn world() -> World {
    World::build(&GeneratorConfig { popular: 6, sensitive: 4, ..Default::default() })
}

#[test]
fn same_seed_means_identical_capture() {
    let w = world();
    let p = profile_by_name("Opera").unwrap();
    let a = run_crawl(&w, &p, &w.sites, &CampaignConfig::default());
    let b = run_crawl(&w, &p, &w.sites, &CampaignConfig::default());
    assert_eq!(a.store.export_jsonl(), b.store.export_jsonl());
}

#[test]
fn different_seed_changes_the_taint_token_not_the_split() {
    let w = world();
    let p = profile_by_name("Opera").unwrap();
    let a = run_crawl(&w, &p, &w.sites, &CampaignConfig::default());
    let b = run_crawl(&w, &p, &w.sites, &CampaignConfig { seed: 99, ..Default::default() });
    // Identifiers differ, but the engine/native *counts* are identical:
    // the split is structural, not token-dependent.
    assert_eq!(a.store.engine_flows().len(), b.store.engine_flows().len());
    assert_eq!(a.store.native_flows().len(), b.store.native_flows().len());
}

#[test]
fn engine_bookkeeping_matches_proxy_database_for_every_browser() {
    let w = world();
    let config = CampaignConfig::default();
    for profile in all_profiles() {
        let r = run_crawl(&w, &profile, &w.sites, &config);
        assert_eq!(
            r.engine_sent,
            r.store.engine_flows().len() as u64,
            "{}: engine self-count vs proxy DB",
            profile.name
        );
        // The browser's own native counter may exceed the proxy count
        // only through pinned flows (the proxy saw them but could not
        // read them).
        let native_db = r.store.native_flows().len() as u64;
        let pinned = r.store.by_class(FlowClass::PinnedOpaque).len() as u64;
        assert_eq!(
            r.native_sent,
            native_db + pinned - pinned, // == native_db; pinned requests never complete
            "{}: native self-count vs proxy DB (pinned: {pinned})",
            profile.name
        );
    }
}

#[test]
fn no_taint_header_ever_reaches_a_recorded_flow() {
    let w = world();
    let config = CampaignConfig::default();
    for profile in all_profiles() {
        let r = run_crawl(&w, &profile, &w.sites, &config);
        for f in r.store.all() {
            assert!(
                f.request_headers.iter().all(|(n, _)| !n.eq_ignore_ascii_case(TAINT_HEADER)),
                "{}: taint leaked into recorded flow to {}",
                profile.name,
                f.host
            );
        }
    }
}

#[test]
fn flow_database_roundtrips_through_jsonl() {
    let w = world();
    let p = profile_by_name("Yandex").unwrap();
    let r = run_crawl(&w, &p, &w.sites, &CampaignConfig::default());
    let text = r.store.export_jsonl();
    let restored = FlowStore::import_jsonl(&text).expect("valid jsonl");
    assert_eq!(restored.all(), r.store.all());
    assert_eq!(restored.engine_flows().len(), r.store.engine_flows().len());
}

#[test]
fn flows_are_timestamped_monotonically() {
    let w = world();
    let p = profile_by_name("Edge").unwrap();
    let r = run_crawl(&w, &p, &w.sites, &CampaignConfig::default());
    let flows = r.store.all();
    for pair in flows.windows(2) {
        assert!(pair[1].time_us >= pair[0].time_us, "clock ran backwards");
        assert!(pair[1].id > pair[0].id);
    }
}

#[test]
fn every_flow_attributes_to_the_browser_uid() {
    let w = world();
    let p = profile_by_name("Whale").unwrap();
    let r = run_crawl(&w, &p, &w.sites, &CampaignConfig::default());
    for f in r.store.all() {
        assert_eq!(f.uid, r.uid, "foreign traffic in the capture");
        assert_eq!(f.package, p.package);
    }
}

#[test]
fn visit_ground_truth_covers_all_sites() {
    let w = world();
    let p = profile_by_name("Chrome").unwrap();
    let r = run_crawl(&w, &p, &w.sites, &CampaignConfig::default());
    assert_eq!(r.visits.len(), w.sites.len());
    for (visit, site) in r.visits.iter().zip(&w.sites) {
        assert_eq!(visit.url, site.url_string());
        assert_eq!(visit.domain, site.domain);
    }
}
