//! Study-engine benchmarks: the fused single-pass engine's claims.
//!
//! 1. **Fusion** — the full study report: legacy multi-pass (one
//!    snapshot iteration per detector, ~10 per campaign) vs the fused
//!    engine (one iteration feeding every detector's `Partial`).
//! 2. **Sharding** — the fused pass split across fleet workers with
//!    ordered merge; on a single-core host this measures the partition
//!    and merge overhead the determinism guarantee costs.
//!
//! `src/bin/bench_study.rs` records the same comparisons (plus the
//! capture→analysis overlap) as `BENCH_study.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use panoptes::fleet::FleetOptions;
use panoptes_analysis::engine::{
    analyze_crawl_sharded, analyze_study, AnalysisResources, StudyAnalyses,
};
use panoptes_analysis::summary::{study_report_from, study_report_multipass};
use panoptes_bench::experiments::Scale;
use panoptes_simnet::clock::SimDuration;

fn study_engine(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.idle = SimDuration::from_secs(120);
    let world = scale.world();
    let config = scale.config();
    let crawls = panoptes_analysis::study::run_full_crawl(&world, &world.sites, &config);
    let idles = panoptes_analysis::study::run_full_idle(&world, scale.idle, &config);
    let res = AnalysisResources::standard();
    let total_flows: u64 = crawls.iter().map(|r| r.store.len() as u64).sum::<u64>()
        + idles.iter().map(|r| r.store.len() as u64).sum::<u64>();

    // Every path must render the identical bytes before being timed.
    let reference = study_report_multipass(&crawls, &idles);
    assert_eq!(
        reference,
        study_report_from(&analyze_study(&crawls, &idles, &res)),
        "fused report diverged from multipass"
    );
    for jobs in [2usize, 8] {
        let options = FleetOptions::with_jobs(jobs);
        let sharded = StudyAnalyses {
            crawls: crawls.iter().map(|r| analyze_crawl_sharded(r, &res, &options)).collect(),
            idles: idles.iter().map(panoptes_analysis::engine::analyze_idle).collect(),
        };
        assert_eq!(
            reference,
            study_report_from(&sharded),
            "sharded report diverged at jobs={jobs}"
        );
    }

    let mut group = c.benchmark_group("study_engine_quick");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_flows));
    group.bench_function("multi-pass report (one iteration per detector)", |b| {
        b.iter(|| black_box(study_report_multipass(&crawls, &idles).len()))
    });
    group.bench_function("fused report (one iteration, every detector)", |b| {
        b.iter(|| {
            black_box(study_report_from(&analyze_study(&crawls, &idles, &res)).len())
        })
    });
    for jobs in [2usize, 4] {
        let options = FleetOptions::with_jobs(jobs);
        let name = format!("fused crawl analyses, sharded x{jobs}");
        group.bench_function(name.as_str(), |b| {
            b.iter(|| {
                for r in &crawls {
                    black_box(&analyze_crawl_sharded(r, &res, &options).volume);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, study_engine);
criterion_main!(benches);
