//! Base64 encoding and decoding (RFC 4648), standard and URL-safe alphabets.
//!
//! Implemented from scratch: the Panoptes analysis stage must try to decode
//! arbitrary query-parameter values to spot Base64-wrapped browsing-history
//! leaks (the Yandex `sba.yandex.net` case in §3.2 of the paper), so the
//! decoder is strict about alphabet membership but tolerant about padding —
//! real trackers emit both padded and unpadded forms.

const STD_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const URL_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// An error produced when decoding malformed Base64 input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum B64Error {
    /// A byte outside the active alphabet (and not padding) was found.
    InvalidByte {
        /// Offset of the offending byte in the input.
        index: usize,
        /// The offending byte value.
        byte: u8,
    },
    /// The input length is impossible for Base64 (e.g. `4n + 1` symbols).
    InvalidLength(usize),
    /// Padding appeared somewhere other than the final group.
    MisplacedPadding(usize),
}

impl std::fmt::Display for B64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            B64Error::InvalidByte { index, byte } => {
                write!(f, "invalid base64 byte 0x{byte:02x} at offset {index}")
            }
            B64Error::InvalidLength(n) => write!(f, "invalid base64 length {n}"),
            B64Error::MisplacedPadding(i) => write!(f, "misplaced '=' padding at offset {i}"),
        }
    }
}

impl std::error::Error for B64Error {}

fn encode_with(alphabet: &[u8; 64], pad: bool, data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(alphabet[(triple >> 18) as usize & 0x3f] as char);
        out.push(alphabet[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(alphabet[(triple >> 6) as usize & 0x3f] as char);
        } else if pad {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(alphabet[triple as usize & 0x3f] as char);
        } else if pad {
            out.push('=');
        }
    }
    out
}

fn decode_table(alphabet: &[u8; 64]) -> [i16; 256] {
    let mut table = [-1i16; 256];
    for (i, &b) in alphabet.iter().enumerate() {
        table[b as usize] = i as i16;
    }
    table
}

fn decode_with(alphabet: &[u8; 64], input: &str) -> Result<Vec<u8>, B64Error> {
    let table = decode_table(alphabet);
    let bytes = input.as_bytes();
    // Strip trailing padding (at most two '=').
    let mut end = bytes.len();
    let mut pad = 0usize;
    while pad < 2 && end > 0 && bytes[end - 1] == b'=' {
        end -= 1;
        pad += 1;
    }
    let body = &bytes[..end];
    if let Some(i) = body.iter().position(|&b| b == b'=') {
        return Err(B64Error::MisplacedPadding(i));
    }
    match body.len() % 4 {
        1 => return Err(B64Error::InvalidLength(bytes.len())),
        0 if pad > 0 && !body.len().is_multiple_of(4) => return Err(B64Error::InvalidLength(bytes.len())),
        _ => {}
    }
    let mut out = Vec::with_capacity(body.len() * 3 / 4);
    let mut acc: u32 = 0;
    let mut nbits = 0u32;
    for (i, &b) in body.iter().enumerate() {
        let v = table[b as usize];
        if v < 0 {
            return Err(B64Error::InvalidByte { index: i, byte: b });
        }
        acc = (acc << 6) | v as u32;
        nbits += 6;
        if nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    Ok(out)
}

/// Encodes `data` with the standard alphabet and `=` padding.
pub fn b64_encode(data: &[u8]) -> String {
    encode_with(STD_ALPHABET, true, data)
}

/// Decodes standard-alphabet Base64; padding is accepted but not required.
pub fn b64_decode(input: &str) -> Result<Vec<u8>, B64Error> {
    decode_with(STD_ALPHABET, input)
}

/// Encodes `data` with the URL-safe alphabet, without padding — the form
/// trackers typically embed in query strings.
pub fn b64_encode_url(data: &[u8]) -> String {
    encode_with(URL_ALPHABET, false, data)
}

/// Decodes URL-safe Base64; padding is accepted but not required.
pub fn b64_decode_url(input: &str) -> Result<Vec<u8>, B64Error> {
    decode_with(URL_ALPHABET, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(b64_encode(b""), "");
        assert_eq!(b64_encode(b"f"), "Zg==");
        assert_eq!(b64_encode(b"fo"), "Zm8=");
        assert_eq!(b64_encode(b"foo"), "Zm9v");
        assert_eq!(b64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(b64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(b64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_matches_encode() {
        for v in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            assert_eq!(b64_decode(&b64_encode(v)).unwrap(), v);
        }
    }

    #[test]
    fn decode_unpadded() {
        assert_eq!(b64_decode("Zm9vYg").unwrap(), b"foob");
    }

    #[test]
    fn url_safe_uses_dash_underscore() {
        let data = [0xfbu8, 0xff, 0xfe];
        let std = b64_encode(&data);
        let url = b64_encode_url(&data);
        assert!(std.contains('+') || std.contains('/'));
        assert!(!url.contains('+') && !url.contains('/') && !url.contains('='));
        assert_eq!(b64_decode_url(&url).unwrap(), data);
    }

    #[test]
    fn url_roundtrip_of_url_like_payload() {
        // The exact shape the Yandex phone-home leak uses: a full URL.
        let url = "https://www.youtube.com/watch?v=dQw4w9WgXcQ&t=42s";
        let enc = b64_encode_url(url.as_bytes());
        assert_eq!(b64_decode_url(&enc).unwrap(), url.as_bytes());
    }

    #[test]
    fn rejects_invalid_byte() {
        let err = b64_decode("Zm9!").unwrap_err();
        assert_eq!(err, B64Error::InvalidByte { index: 3, byte: b'!' });
    }

    #[test]
    fn rejects_misplaced_padding() {
        assert_eq!(b64_decode("Zm=9").unwrap_err(), B64Error::MisplacedPadding(2));
    }

    #[test]
    fn rejects_impossible_length() {
        assert_eq!(b64_decode("Zm9vY").unwrap_err(), B64Error::InvalidLength(5));
    }

    #[test]
    fn error_display_is_descriptive() {
        let msg = B64Error::InvalidByte { index: 3, byte: b'!' }.to_string();
        assert!(msg.contains("0x21") && msg.contains('3'));
    }
}
