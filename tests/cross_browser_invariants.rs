//! Accounting invariants that must hold for every browser in Table 1,
//! whatever its engine, ad blocker, or phone-home behaviour:
//!
//! * the engine's own sent-request counter equals the number of
//!   engine-classified flows in the capture store (ad-blocked requests
//!   are suppressed before sending, so they appear in neither);
//! * the browser model's native-request counter equals the number of
//!   native-classified flows in the store;
//! * the ground-truth visit log covers exactly the site list.
//!
//! These are the cross-checks the paper's pipeline leans on when it
//! splits traffic into engine vs native (§2.3): if either counter ever
//! drifts from the store, the taint-splitting addon is silently
//! misclassifying flows.

use panoptes::campaign::run_crawl;
use panoptes::config::CampaignConfig;
use panoptes_browsers::registry::all_profiles;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

#[test]
fn flow_accounting_matches_store_for_every_browser() {
    let world =
        World::build(&GeneratorConfig { popular: 8, sensitive: 6, ..Default::default() });
    let config = CampaignConfig::default();
    let profiles = all_profiles();
    assert_eq!(profiles.len(), 15, "Table 1 has 15 browsers");

    for profile in &profiles {
        let r = run_crawl(&world, profile, &world.sites, &config);
        let name = &profile.name;

        assert_eq!(
            r.visits.len(),
            world.sites.len(),
            "{name}: visit log must cover the site list"
        );
        assert_eq!(
            r.engine_sent as usize,
            r.store.engine_flows().len(),
            "{name}: engine counter drifted from the capture store \
             (adblocked={})",
            r.adblocked
        );
        assert_eq!(
            r.native_sent as usize,
            r.store.native_flows().len(),
            "{name}: native counter drifted from the capture store"
        );
    }
}

#[test]
fn adblocking_browsers_suppress_rather_than_capture() {
    // The one browser shipping an on-by-default engine-side ad blocker
    // (CocCoc) must account for suppressed requests in `adblocked`,
    // not in the store: blocked requests never reach the proxy.
    let world =
        World::build(&GeneratorConfig { popular: 8, sensitive: 6, ..Default::default() });
    let config = CampaignConfig::default();

    let mut saw_adblocker = false;
    for profile in all_profiles() {
        let r = run_crawl(&world, &profile, &world.sites, &config);
        if r.adblocked > 0 {
            saw_adblocker = true;
            assert_eq!(
                r.engine_sent as usize,
                r.store.engine_flows().len(),
                "{}: suppressed requests leaked into the store",
                profile.name
            );
        }
    }
    assert!(saw_adblocker, "at least one profile ships an engine-side ad blocker");
}
