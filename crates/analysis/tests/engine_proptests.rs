//! Property-based tests for the fused study engine: for *arbitrary*
//! captures and any shard count, sharding the fused pass and merging
//! the per-shard partials in shard order reproduces the sequential
//! accumulator exactly — the invariant every byte-identity guarantee in
//! `engine.rs` rests on.
//!
//! The flow generator deliberately embeds ground-truth leaks (visit
//! URLs at all three granularities, device properties, high-entropy
//! identifiers, sensitive URLs) so the order-sensitive detector paths
//! (first-match PII fields, first-IP transfers, leak buckets) actually
//! fire rather than vacuously matching on empty accumulators.

use std::collections::HashSet;

use proptest::prelude::*;

use panoptes::fleet::shard_ranges;
use panoptes_analysis::engine::{CrawlContext, CrawlPartials};
use panoptes_analysis::facts::capture_facts;
use panoptes_analysis::idle::IdlePartial;
use panoptes_analysis::pii::PiiMatcher;
use panoptes_device::DeviceProperties;
use panoptes_http::method::Method;
use panoptes_http::netaddr::IpAddr;
use panoptes_http::request::HttpVersion;
use panoptes_mitm::{Flow, FlowClass, FlowStore};

/// Fixed visit ground truth: two ordinary sites and one sensitive one.
const VISIT_URLS: [&str; 3] = [
    "http://news.site0.com/world/story?id=1",
    "http://shop.site1.net/cart",
    "http://clinic.site2.org/health/advice",
];
const VISIT_HOSTS: [&str; 3] = ["news.site0.com", "shop.site1.net", "clinic.site2.org"];
const VISIT_DOMAINS: [&str; 3] = ["site0.com", "site1.net", "site2.org"];

/// Destinations: a first-party host, a first-party sibling, trackers,
/// and a DoH resolver (exercises the engine's DoH skip).
const HOSTS: [&str; 6] = [
    "news.site0.com",
    "cdn.site1.net",
    "tracker.adnet.io",
    "sba.collector.ru",
    "dns.google",
    "stats.example.xyz",
];

/// Query-parameter values spanning every detector's trigger: visit
/// leaks at each granularity (plain and percent-encoded), sensitive
/// URLs, device properties, a stable identifier, and noise.
const VALUES: [&str; 9] = [
    "http://news.site0.com/world/story?id=1",
    "http%3A%2F%2Fnews.site0.com%2Fworld%2Fstory%3Fid%3D1",
    "news.site0.com",
    "site0.com",
    "http://clinic.site2.org/health/advice",
    "1200x1920",
    "Europe/Athens",
    "a3f8c2d19b7e4f60a3f8c2d19b7e4f60",
    "hello",
];
const KEYS: [&str; 6] = ["u", "page", "tz", "screenWidth", "deviceId", "country"];

fn context() -> CrawlContext<'static> {
    CrawlContext {
        visited_urls: VISIT_URLS.iter().copied().collect(),
        visited_hosts: VISIT_HOSTS.iter().map(|h| h.to_string()).collect(),
        visited_domains: VISIT_DOMAINS.iter().copied().collect(),
        sensitive_urls: [VISIT_URLS[2]].into_iter().collect::<HashSet<_>>(),
        total_visits: VISIT_URLS.len(),
    }
}

fn arb_flow() -> impl Strategy<Value = Flow> {
    (
        0u64..(1 << 40),
        0u64..600_000_000,
        0usize..HOSTS.len(),
        0usize..4,
        proptest::collection::vec((0usize..KEYS.len(), 0usize..VALUES.len()), 0..4),
        (any::<u32>(), any::<u32>()),
    )
        .prop_map(|(id, time_us, host_idx, class, params, bytes)| {
            let host = HOSTS[host_idx];
            let query: Vec<String> = params
                .iter()
                .map(|&(k, v)| format!("{}={}", KEYS[k], VALUES[v]))
                .collect();
            Flow {
                id,
                time_us,
                uid: 10_200,
                package: "com.example.browser".into(),
                host: host.into(),
                dst_ip: IpAddr::new(203, 0, 113, (host_idx + 1) as u8),
                dst_port: 443,
                method: Method::Get,
                url: format!("https://{host}/collect?{}", query.join("&")),
                request_headers: Vec::new(),
                request_body: String::new(),
                status: 200,
                bytes_out: bytes.0 as u64,
                bytes_in: bytes.1 as u64,
                version: HttpVersion::H2,
                class: match class {
                    0 => FlowClass::Engine,
                    1 => FlowClass::Native,
                    2 => FlowClass::PinnedOpaque,
                    _ => FlowClass::Blocked,
                },
            }
        })
}

proptest! {
    /// Splitting the fused crawl pass into any 1..=8 contiguous shards
    /// and merging in shard order reproduces the sequential partials —
    /// every detector, including the order-sensitive ones.
    #[test]
    fn crawl_partials_shard_merge_matches_sequential(
        flows in proptest::collection::vec(arb_flow(), 0..80),
        jobs in 1usize..=8,
    ) {
        let store = FlowStore::new();
        for f in &flows {
            store.push(f.clone());
        }
        let snap = store.snapshot();
        let facts = capture_facts(&snap);
        let ctx = context();
        let props = DeviceProperties::testbed_tablet();
        let matcher = PiiMatcher::new(&props);

        let mut sequential = CrawlPartials::default();
        for view in facts.views(snap.all()) {
            sequential.observe(&view, &ctx, &matcher);
        }

        let all = snap.all();
        let mut merged = CrawlPartials::default();
        for range in shard_ranges(all.len(), jobs) {
            let mut shard = CrawlPartials::default();
            for view in facts.views(all.slice(range)) {
                shard.observe(&view, &ctx, &matcher);
            }
            merged.merge(shard);
        }

        prop_assert_eq!(merged, sequential);
    }

    /// The idle accumulator's shard merge is likewise order-exact.
    #[test]
    fn idle_partial_shard_merge_matches_sequential(
        flows in proptest::collection::vec(arb_flow(), 0..80),
        jobs in 1usize..=8,
        start_us in 0u64..400_000_000,
    ) {
        let mut sequential = IdlePartial::default();
        for f in &flows {
            sequential.observe(f, start_us);
        }

        let mut merged = IdlePartial::default();
        for range in shard_ranges(flows.len(), jobs) {
            let mut shard = IdlePartial::default();
            for f in &flows[range] {
                shard.observe(f, start_us);
            }
            merged.merge(shard);
        }

        prop_assert_eq!(merged, sequential);
    }
}
