//! Offline shim for `crossbeam` 0.8: the `thread::scope` API, backed by
//! `std::thread::scope` (stable since 1.63).
//!
//! Semantics mirrored from crossbeam:
//!
//! * `scope(f)` returns `Err` (instead of propagating the panic) when
//!   the closure or an **unjoined** child thread panics;
//! * `ScopedJoinHandle::join` returns the child's panic payload as
//!   `Err`, so a caller that joins every handle observes panics
//!   per-thread — the property the fleet executor's panic isolation
//!   builds on.

pub mod thread {
    //! Scoped threads, mirroring `crossbeam::thread`.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of a scope or a join: `Err` carries a panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; a panic becomes `Err`.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// A scope in which threads borrowing from the caller's stack can be
    /// spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope handle; every thread spawned in the scope
    /// is joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u32, 2, 3];
        let sum = thread::scope(|s| {
            let handles: Vec<_> =
                data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn joined_panic_is_isolated() {
        let out = thread::scope(|s| {
            let bad = s.spawn(|_| -> u32 { panic!("boom") });
            let good = s.spawn(|_| 7u32);
            (bad.join().is_err(), good.join().unwrap())
        })
        .unwrap();
        assert_eq!(out, (true, 7));
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn unjoined_panic_turns_into_err() {
        let res = thread::scope(|s| {
            s.spawn(|_| panic!("stray"));
        });
        assert!(res.is_err());
    }
}
