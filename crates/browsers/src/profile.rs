//! The declarative browser-profile model.
//!
//! A [`BrowserProfile`] is pure data: what the app is (Table 1 of the
//! paper), how it can be instrumented (§2.1/§2.3), how its engine is
//! configured, and — the core of the reproduction — the catalogue of
//! native requests it sends at startup, per page visit, and while idle.
//! `payload.rs` turns the catalogue into concrete [`panoptes_http::Request`]s.
//!
//! Profiles are *materialized* from the composable behaviour-model
//! space ([`crate::model::BehaviorModel`]): the paper's 15 browsers are
//! pinned points in that space, and the sampler
//! ([`crate::space::BrowserSpace`]) mints arbitrarily many more. All
//! profile data is therefore owned (`String`/`Vec`), not `'static`.

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::ResolverKind;

/// Device/user attributes a browser may leak — the exact columns of the
/// paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PiiField {
    /// Device type (tablet/phone).
    DeviceType,
    /// Device manufacturer.
    DeviceManufacturer,
    /// IANA timezone.
    Timezone,
    /// Screen resolution.
    Resolution,
    /// LAN address.
    LocalIp,
    /// Screen density.
    Dpi,
    /// Whether the device is rooted.
    RootedStatus,
    /// BCP-47 locale.
    Locale,
    /// Country code.
    Country,
    /// Latitude/longitude fix.
    Location,
    /// Metered/unmetered connection.
    ConnectionType,
    /// Wi-Fi vs cellular.
    NetworkType,
}

impl PiiField {
    /// All twelve fields in Table 2 column order.
    pub const ALL: [PiiField; 12] = [
        PiiField::DeviceType,
        PiiField::DeviceManufacturer,
        PiiField::Timezone,
        PiiField::Resolution,
        PiiField::LocalIp,
        PiiField::Dpi,
        PiiField::RootedStatus,
        PiiField::Locale,
        PiiField::Country,
        PiiField::Location,
        PiiField::ConnectionType,
        PiiField::NetworkType,
    ];

    /// Column header used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PiiField::DeviceType => "Device Type",
            PiiField::DeviceManufacturer => "Device Manuf.",
            PiiField::Timezone => "Timezone",
            PiiField::Resolution => "Resolution",
            PiiField::LocalIp => "Local IP",
            PiiField::Dpi => "DPI",
            PiiField::RootedStatus => "Rooted Status",
            PiiField::Locale => "Locale",
            PiiField::Country => "Country",
            PiiField::Location => "Location (lat & long)",
            PiiField::ConnectionType => "Connection Type",
            PiiField::NetworkType => "Network Type",
        }
    }

    /// Stable kebab-case identifier used in fixtures and archives.
    pub fn slug(self) -> &'static str {
        match self {
            PiiField::DeviceType => "device-type",
            PiiField::DeviceManufacturer => "device-manufacturer",
            PiiField::Timezone => "timezone",
            PiiField::Resolution => "resolution",
            PiiField::LocalIp => "local-ip",
            PiiField::Dpi => "dpi",
            PiiField::RootedStatus => "rooted-status",
            PiiField::Locale => "locale",
            PiiField::Country => "country",
            PiiField::Location => "location",
            PiiField::ConnectionType => "connection-type",
            PiiField::NetworkType => "network-type",
        }
    }

    /// Inverse of [`PiiField::slug`].
    pub fn from_slug(slug: &str) -> Option<PiiField> {
        PiiField::ALL.iter().copied().find(|f| f.slug() == slug)
    }
}

/// What a native request carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Nothing interesting — plain ping / content fetch.
    None,
    /// The full visited URL, Base64-encoded in a query parameter — the
    /// Yandex `sba.yandex.net` pattern (§3.2).
    FullUrlBase64 {
        /// Query parameter name carrying the encoded URL.
        param: String,
    },
    /// The visited hostname plus a persistent per-install identifier —
    /// the Yandex `api.browser.yandex.ru` pattern (§3.2).
    HostnamePlusId {
        /// Query parameter carrying the hostname.
        host_param: String,
        /// Query parameter carrying the persistent identifier.
        id_param: String,
    },
    /// The full visited URL in the clear — the QQ pattern (§3.2).
    FullUrlPlain {
        /// Query parameter carrying the URL.
        param: String,
    },
    /// Only the visited registrable domain — the Edge→Bing and
    /// Opera→Sitecheck pattern (§3.2).
    DomainOnly {
        /// Query parameter carrying the domain.
        param: String,
    },
    /// A JSON ad-SDK body carrying PII fields (Listing 1's
    /// `s-odx.oleads.com` shape). Fields come from the profile's
    /// `pii_fields`.
    AdSdkJson,
    /// Vendor telemetry with PII attached as query parameters.
    Telemetry,
}

impl Payload {
    /// The Yandex full-URL-in-Base64 channel.
    pub fn full_url_base64(param: &str) -> Payload {
        Payload::FullUrlBase64 { param: param.to_string() }
    }

    /// The hostname-plus-persistent-identifier channel.
    pub fn hostname_plus_id(host_param: &str, id_param: &str) -> Payload {
        Payload::HostnamePlusId {
            host_param: host_param.to_string(),
            id_param: id_param.to_string(),
        }
    }

    /// The QQ clear-text full-URL channel.
    pub fn full_url_plain(param: &str) -> Payload {
        Payload::FullUrlPlain { param: param.to_string() }
    }

    /// The Edge/Opera domain-only channel.
    pub fn domain_only(param: &str) -> Payload {
        Payload::DomainOnly { param: param.to_string() }
    }

    /// True for the payloads that report the visited page at any
    /// granularity.
    pub fn reports_history(&self) -> bool {
        matches!(
            self,
            Payload::FullUrlBase64 { .. }
                | Payload::FullUrlPlain { .. }
                | Payload::HostnamePlusId { .. }
                | Payload::DomainOnly { .. }
        )
    }
}

/// One native request in a browser's catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeCall {
    /// Destination host.
    pub host: String,
    /// Destination path.
    pub path: String,
    /// HTTP method.
    pub method: Method,
    /// What the request carries.
    pub payload: Payload,
    /// Extra body padding in bytes (volume calibration — Figure 4; the
    /// QQ telemetry bodies are what make its native volume 42% of the
    /// engine's).
    pub body_pad: u32,
    /// How many copies are sent per trigger (request-count calibration —
    /// Figure 2).
    pub count: u32,
    /// Whether the call is suppressed in incognito mode. The paper found
    /// the history-leaking browsers keep leaking in incognito, so their
    /// calls set `false`.
    pub respects_incognito: bool,
}

impl NativeCall {
    /// A simple GET ping. The other catalogue shapes compose onto this
    /// with the builder methods below.
    pub fn ping(host: &str, path: &str) -> NativeCall {
        NativeCall {
            host: host.to_string(),
            path: path.to_string(),
            method: Method::Get,
            payload: Payload::None,
            body_pad: 0,
            count: 1,
            respects_incognito: false,
        }
    }

    /// Attaches a payload to the call.
    pub fn carrying(mut self, payload: Payload) -> NativeCall {
        self.payload = payload;
        self
    }

    /// Sends the call as a POST.
    pub fn via_post(mut self) -> NativeCall {
        self.method = Method::Post;
        self
    }

    /// Pads the body by `bytes` (forces a POST on the wire).
    pub fn padded(mut self, bytes: u32) -> NativeCall {
        self.body_pad = bytes;
        self
    }

    /// Sends `n` copies per trigger.
    pub fn times(mut self, n: u32) -> NativeCall {
        self.count = n;
        self
    }

    /// Suppresses the call in incognito mode.
    pub fn respecting_incognito(mut self) -> NativeCall {
        self.respects_incognito = true;
        self
    }
}

/// Shape of a browser's idle-time chatter (Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleProfile {
    /// Start-page refresh burst fired with exponentially increasing gaps
    /// over the first minute (favicons, thumbnails, DNS warmup — the
    /// paper's explanation for the early exponential growth).
    pub burst: Vec<NativeCall>,
    /// Steady-state pings: `(interval_seconds, call)` — the plateau. A
    /// dense interval (Opera's news feed) produces the linear curve the
    /// paper singles out.
    pub periodic: Vec<(u64, NativeCall)>,
}

impl IdleProfile {
    /// A silent browser.
    pub const QUIET: IdleProfile = IdleProfile { burst: Vec::new(), periodic: Vec::new() };
}

/// A complete browser model, materialized and ready to launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrowserProfile {
    /// Display name (Table 1).
    pub name: String,
    /// Version measured by the paper (Table 1).
    pub version: String,
    /// Android package name.
    pub package: String,
    /// How Panoptes instruments it (§2.1/§2.3).
    pub instrumentation: Instrumentation,
    /// Whether the browser offers an incognito mode (Yandex and QQ do
    /// not — footnote 5).
    pub supports_incognito: bool,
    /// Name-resolution mechanism (§3.2: 8 DoH users, 7 stub users).
    pub resolver: ResolverKind,
    /// Engine-side easylist enforcement (CocCoc).
    pub adblock: bool,
    /// Whether the engine races HTTP/3 (QUIC) first.
    pub attempts_h3: bool,
    /// Domains the app pins certificates for (these flows escape the
    /// MITM — footnote 3).
    pub pinned_domains: Vec<String>,
    /// PII fields this vendor transmits (Table 2 row).
    pub pii_fields: Vec<PiiField>,
    /// Key under which the vendor stores its persistent identifier, if
    /// it uses one (Yandex).
    pub persistent_id_key: Option<String>,
    /// Whether the browser injects a JavaScript snippet into every page
    /// that exfiltrates via *engine* traffic (UC International, §3.2).
    pub injects_js_collector: Option<String>,
    /// Whether declining the setup wizard's telemetry prompt actually
    /// silences the vendor's [`Payload::Telemetry`] calls. The paper's
    /// Listing 1 shows the other case: Opera's ad SDK fires with
    /// `"userConsent":"false"` — consent recorded, not honoured.
    pub honors_telemetry_consent: bool,
    /// Native requests at app launch.
    pub startup: Vec<NativeCall>,
    /// Native requests on every page visit.
    pub per_visit: Vec<NativeCall>,
    /// Idle-time behaviour.
    pub idle: IdleProfile,
}

impl BrowserProfile {
    /// True when this browser reports the page the user visits (any
    /// granularity) to a remote server.
    pub fn reports_history(&self) -> bool {
        self.per_visit.iter().any(|c| c.payload.reports_history())
            || self.injects_js_collector.is_some()
    }

    /// True when the browser leaks the *full URL* (path + query), the
    /// distinction §4 emphasizes over domain-only leaks.
    pub fn reports_full_url(&self) -> bool {
        self.per_visit.iter().any(|c| {
            matches!(c.payload, Payload::FullUrlBase64 { .. } | Payload::FullUrlPlain { .. })
        }) || self.injects_js_collector.is_some()
    }

    /// Whether the profile leaks a given Table 2 field.
    pub fn leaks(&self, field: PiiField) -> bool {
        self.pii_fields.contains(&field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pii_all_has_twelve_distinct_labels() {
        let labels: Vec<&str> = PiiField::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), 12);
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn pii_slugs_roundtrip() {
        for field in PiiField::ALL {
            assert_eq!(PiiField::from_slug(field.slug()), Some(field));
        }
        assert_eq!(PiiField::from_slug("nonesuch"), None);
    }

    #[test]
    fn ping_constructor_defaults() {
        let call = NativeCall::ping("h.com", "/p");
        assert_eq!(call.method, Method::Get);
        assert_eq!(call.payload, Payload::None);
        assert_eq!(call.count, 1);
        assert!(!call.respects_incognito);
    }

    #[test]
    fn builder_methods_compose() {
        let call = NativeCall::ping("mc.example.com", "/watch")
            .via_post()
            .carrying(Payload::Telemetry)
            .padded(100)
            .times(2)
            .respecting_incognito();
        assert_eq!(call.method, Method::Post);
        assert_eq!(call.payload, Payload::Telemetry);
        assert_eq!(call.body_pad, 100);
        assert_eq!(call.count, 2);
        assert!(call.respects_incognito);
    }

    #[test]
    fn history_classification() {
        let leaky = vec![NativeCall::ping("sba.yandex.net", "/r")
            .carrying(Payload::full_url_base64("url"))];
        let profile = BrowserProfile {
            name: "Test".to_string(),
            version: "1".to_string(),
            package: "t".to_string(),
            instrumentation: Instrumentation::Cdp,
            supports_incognito: true,
            resolver: ResolverKind::LocalStub,
            adblock: false,
            attempts_h3: false,
            pinned_domains: Vec::new(),
            pii_fields: Vec::new(),
            persistent_id_key: None,
            injects_js_collector: None,
            honors_telemetry_consent: false,
            startup: Vec::new(),
            per_visit: leaky,
            idle: IdleProfile::QUIET,
        };
        assert!(profile.reports_history());
        assert!(profile.reports_full_url());
        let quiet = BrowserProfile { per_visit: Vec::new(), ..profile };
        assert!(!quiet.reports_history());
    }
}
