//! The fleet's headline guarantee, enforced end-to-end: running the
//! full study across a worker pool changes **nothing** about what the
//! study observes. For every worker count the per-browser capture
//! export, the ground-truth visit log, the DNS log, and the rendered
//! study report are byte-identical to the legacy sequential path.
//!
//! This is what makes `repro --jobs N` safe to use for the paper's
//! artefacts: parallelism buys wall-clock time only, never a different
//! dataset.

use panoptes::fleet::{self, FleetOptions};
use panoptes_analysis::study::{run_full_crawl, run_full_idle, run_full_study_jobs};
use panoptes_analysis::summary::study_report;
use panoptes_bench::experiments::Scale;
use panoptes_browsers::registry::all_profiles;
use panoptes_simnet::clock::SimDuration;

const IDLE: SimDuration = SimDuration::from_secs(120);

#[test]
fn full_study_is_byte_identical_across_worker_counts() {
    let scale = Scale::quick();
    let world = scale.world();
    let config = scale.config();

    let seq_crawls = run_full_crawl(&world, &world.sites, &config);
    let seq_idles = run_full_idle(&world, IDLE, &config);
    let reference_report = study_report(&seq_crawls, &seq_idles);

    for jobs in [1usize, 2, 8] {
        let study = run_full_study_jobs(
            &world,
            &world.sites,
            &config,
            IDLE,
            &FleetOptions::with_jobs(jobs),
        )
        .unwrap_or_else(|e| panic!("jobs={jobs}: {e}"));

        assert_eq!(study.crawls.len(), seq_crawls.len(), "jobs={jobs}");
        for (par, seq) in study.crawls.iter().zip(&seq_crawls) {
            let name = &seq.profile.name;
            assert_eq!(par.profile.name, *name, "jobs={jobs}: crawl order");
            assert_eq!(
                par.store.export_jsonl(),
                seq.store.export_jsonl(),
                "jobs={jobs} {name}: capture export diverged"
            );
            assert_eq!(par.visits, seq.visits, "jobs={jobs} {name}: visit log diverged");
            assert_eq!(par.dns_log, seq.dns_log, "jobs={jobs} {name}: DNS log diverged");
            assert_eq!(par.engine_sent, seq.engine_sent, "jobs={jobs} {name}");
            assert_eq!(par.native_sent, seq.native_sent, "jobs={jobs} {name}");
        }

        assert_eq!(study.idles.len(), seq_idles.len(), "jobs={jobs}");
        for (par, seq) in study.idles.iter().zip(&seq_idles) {
            let name = &seq.profile.name;
            assert_eq!(par.profile.name, *name, "jobs={jobs}: idle order");
            assert_eq!(
                par.store.export_jsonl(),
                seq.store.export_jsonl(),
                "jobs={jobs} {name}: idle capture diverged"
            );
            assert_eq!(par.idle_sent, seq.idle_sent, "jobs={jobs} {name}");
        }

        assert_eq!(
            study_report(&study.crawls, &study.idles),
            reference_report,
            "jobs={jobs}: rendered study report diverged"
        );
    }
}

/// The snapshot migration's determinism guarantee, end-to-end: the
/// rendered study report is byte-identical whether the analysis runs
/// over the live zero-copy snapshots or over stores rebuilt flow-by-flow
/// from the JSONL archive (the pre-refactor materialised form). Any
/// divergence between the sealed-snapshot/parse-once path and a naive
/// re-read of the same capture would surface here.
#[test]
fn study_report_is_byte_identical_across_snapshot_rebuilds() {
    use panoptes_mitm::FlowStore;
    use std::sync::Arc;

    let scale = Scale::quick();
    let world = scale.world();
    let config = scale.config();

    let crawls = run_full_crawl(&world, &world.sites, &config);
    let idles = run_full_idle(&world, IDLE, &config);
    let reference_report = study_report(&crawls, &idles);

    let rebuilt_crawls: Vec<_> = crawls
        .iter()
        .map(|c| {
            let store = FlowStore::import_jsonl(&c.store.export_jsonl())
                .unwrap_or_else(|line| panic!("{}: bad line {line}", c.profile.name));
            // Same capture, fresh store: every snapshot, facts slot and
            // index is rebuilt from scratch.
            let mut rebuilt = c.clone();
            rebuilt.store = Arc::new(store);
            rebuilt
        })
        .collect();
    let rebuilt_idles: Vec<_> = idles
        .iter()
        .map(|i| {
            let store = FlowStore::import_jsonl(&i.store.export_jsonl())
                .unwrap_or_else(|line| panic!("{}: bad line {line}", i.profile.name));
            let mut rebuilt = i.clone();
            rebuilt.store = Arc::new(store);
            rebuilt
        })
        .collect();

    assert_eq!(
        study_report(&rebuilt_crawls, &rebuilt_idles),
        reference_report,
        "report over archive-roundtripped stores diverged"
    );

    // And the sealed snapshot views agree exactly with the cloning
    // compatibility shims on real campaign captures.
    for c in &crawls {
        let snap = c.store.snapshot();
        let all: Vec<_> = snap.iter().cloned().collect();
        assert_eq!(all, c.store.all(), "{}", c.profile.name);
        let native: Vec<_> = snap.native().iter().cloned().collect();
        assert_eq!(native, c.store.native_flows(), "{}", c.profile.name);
        let engine: Vec<_> = snap.engine().iter().cloned().collect();
        assert_eq!(engine, c.store.engine_flows(), "{}", c.profile.name);
    }
}

#[test]
fn panicking_campaign_fails_only_its_own_unit() {
    // A 15-unit fleet where the Yandex slot panics mid-campaign: the
    // failure must carry the browser's name and the other 14 units'
    // results must still come back, in order.
    let profiles = all_profiles();
    let labels: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let poisoned = labels.iter().position(|n| n == "Yandex").expect("Yandex in registry");

    let err = fleet::execute(&labels, &FleetOptions::with_jobs(4), |i| {
        if i == poisoned {
            panic!("simulated campaign crash");
        }
        labels[i].clone()
    })
    .expect_err("the poisoned unit must fail the fleet");

    assert_eq!(err.failures.len(), 1);
    assert_eq!(err.failures[0].unit, "Yandex");
    assert_eq!(err.failures[0].index, poisoned);
    assert!(err.failures[0].message.contains("simulated campaign crash"));

    assert_eq!(err.completed.len(), labels.len());
    assert!(err.completed[poisoned].is_none());
    for (i, slot) in err.completed.iter().enumerate() {
        if i != poisoned {
            assert_eq!(slot.as_deref(), Some(labels[i].as_str()), "unit {i} missing");
        }
    }
}
