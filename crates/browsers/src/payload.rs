//! Rendering native-request catalogues into concrete HTTP requests.
//!
//! This is where the leak patterns the paper documents take wire form:
//! the Base64-encoded full URL (Yandex → `sba.yandex.net`), the hostname
//! plus persistent identifier (Yandex → `api.browser.yandex.ru`), the
//! clear-text full URL (QQ), domain-only reporting (Edge → Bing API,
//! Opera → Sitecheck), the ad-SDK JSON body of Listing 1, and vendor
//! telemetry carrying the Table 2 PII fields.

use bytes::Bytes;

use panoptes_device::{AppDataStore, DeviceProperties};
use panoptes_http::codec::b64_encode_url;
use panoptes_http::json::{self, Value};
use panoptes_http::method::Method;
use panoptes_http::url::Url;
use panoptes_http::useragent::UserAgent;
use panoptes_http::Request;
use panoptes_simnet::clock::SimInstant;

use crate::identifiers::persistent_id;
use crate::profile::{BrowserProfile, NativeCall, Payload, PiiField};

/// Everything payload rendering needs to know.
pub struct PayloadCtx<'a> {
    /// Device properties (the PII source).
    pub props: &'a DeviceProperties,
    /// The app's data store (persistent identifiers live here).
    pub data: &'a mut AppDataStore,
    /// The browser being modelled.
    pub profile: &'a BrowserProfile,
    /// Campaign seed (identifier minting).
    pub seed: u64,
    /// Virtual send time (timestamps inside bodies).
    pub now: SimInstant,
}

/// Renders `call` into a request. `visit` is the page currently being
/// visited, for the per-visit payloads; pass `None` for startup/idle
/// calls. `copy` distinguishes the `count > 1` duplicates.
pub fn build_native_request(
    call: &NativeCall,
    ctx: &mut PayloadCtx<'_>,
    visit: Option<&Url>,
    copy: u32,
) -> Request {
    let mut url = Url::https(&call.host).with_path(&call.path);
    let mut method = call.method;
    let mut body: Option<Bytes> = None;

    match &call.payload {
        Payload::None => {}
        Payload::FullUrlBase64 { param } => {
            let visited = visit.expect("per-visit payload without a visit");
            url = url.with_query_param(param, &b64_encode_url(visited.to_string_full().as_bytes()));
        }
        Payload::HostnamePlusId { host_param, id_param } => {
            let visited = visit.expect("per-visit payload without a visit");
            let key = ctx.profile.persistent_id_key.as_deref().unwrap_or("install-id");
            let id = persistent_id(ctx.data, key, ctx.seed);
            url = url
                .with_query_param(host_param, visited.host())
                .with_query_param(id_param, &id);
        }
        Payload::FullUrlPlain { param } => {
            let visited = visit.expect("per-visit payload without a visit");
            url = url.with_query_param(param, &visited.to_string_full());
        }
        Payload::DomainOnly { param } => {
            let visited = visit.expect("per-visit payload without a visit");
            url = url.with_query_param(param, &visited.registrable_domain());
        }
        Payload::AdSdkJson => {
            method = Method::Post;
            body = Some(Bytes::from(ad_sdk_body(ctx)));
        }
        Payload::Telemetry => {
            for (key, value) in pii_query_params(&ctx.profile.pii_fields, ctx.props) {
                url = url.with_query_param(key, &value);
            }
            url = url.with_query_param("ts", &ctx.now.0.to_string());
        }
    }
    if copy > 0 {
        url = url.with_query_param("seq", &copy.to_string());
    }

    // Volume padding rides in a POST body.
    if call.body_pad > 0 {
        method = Method::Post;
        let mut padded = body.map(|b| b.to_vec()).unwrap_or_default();
        padded.extend(std::iter::repeat_n(b'x', call.body_pad as usize));
        body = Some(Bytes::from(padded));
    }

    let ua = UserAgent::for_browser(&ctx.profile.name, &ctx.profile.version).render();
    let mut req = match method {
        Method::Post => Request::post(url, body.unwrap_or_default()),
        _ => Request::get(url),
    };
    req.headers.set("user-agent", ua);
    req
}

/// Query parameters for the Table 2 PII fields.
pub fn pii_query_params(fields: &[PiiField], props: &DeviceProperties) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    for field in fields {
        match field {
            PiiField::DeviceType => out.push(("deviceType", props.device_type.clone())),
            PiiField::DeviceManufacturer => out.push(("deviceVendor", props.manufacturer.clone())),
            PiiField::Timezone => out.push(("tz", props.timezone.clone())),
            PiiField::Resolution => out.push(("screen", props.resolution_string())),
            PiiField::LocalIp => out.push(("localIp", props.local_ip.to_string())),
            PiiField::Dpi => out.push(("dpi", props.dpi.to_string())),
            PiiField::RootedStatus => out.push(("rooted", props.rooted.to_string())),
            PiiField::Locale => out.push(("locale", props.locale.clone())),
            PiiField::Country => out.push(("countryCode", props.country.clone())),
            PiiField::Location => {
                out.push(("latitude", format!("{:.4}", props.location.0)));
                out.push(("longitude", format!("{:.4}", props.location.1)));
            }
            PiiField::ConnectionType => {
                out.push(("connectionType", props.connection.as_str().to_string()))
            }
            PiiField::NetworkType => out.push(("networkType", props.network.as_str().to_string())),
        }
    }
    out
}

/// The Listing 1 ad-SDK body: always carries the compatibility fields
/// every vendor sends (package, versions, OS, model) plus whatever PII
/// the profile declares.
fn ad_sdk_body(ctx: &mut PayloadCtx<'_>) -> String {
    let props = ctx.props;
    let profile = ctx.profile;
    let mut fields: Vec<(&str, Value)> = vec![
        ("channelId", Value::str(format!("adxsdk_for_{}", profile.name.to_ascii_lowercase()))),
        ("appPackageName", Value::str(&profile.package)),
        ("appVersion", Value::str(&profile.version)),
        ("sdkVersion", Value::str("1.12.2")),
        ("osType", Value::str("ANDROID")),
        ("osVersion", Value::str(&props.android_version)),
        ("deviceModel", Value::str(&props.model)),
        ("timestamp", Value::from(ctx.now.0 / 1_000_000)),
        ("adCount", Value::from(2u32)),
        ("supportedAdTypes", Value::Array(vec![Value::str("SINGLE")])),
        ("userConsent", Value::str("false")),
    ];
    for field in &profile.pii_fields {
        match field {
            PiiField::DeviceType => fields.push(("deviceType", Value::str(&props.device_type))),
            PiiField::DeviceManufacturer => {
                fields.push(("deviceVendor", Value::str(&props.manufacturer)))
            }
            PiiField::Timezone => fields.push(("timezone", Value::str(&props.timezone))),
            PiiField::Resolution => {
                fields.push(("deviceScreenWidth", Value::from(props.resolution.0)));
                fields.push(("deviceScreenHeight", Value::from(props.resolution.1)));
            }
            PiiField::LocalIp => fields.push(("localIp", Value::str(props.local_ip.to_string()))),
            PiiField::Dpi => fields.push(("dpi", Value::from(props.dpi))),
            PiiField::RootedStatus => fields.push(("rooted", Value::Bool(props.rooted))),
            PiiField::Locale => fields.push(("languageCode", Value::str(&props.locale))),
            PiiField::Country => fields.push(("countryCode", Value::str(&props.country))),
            PiiField::Location => {
                fields.push(("latitude", Value::Number(props.location.0)));
                fields.push(("longitude", Value::Number(props.location.1)));
                fields.push(("positionTimestamp", Value::from(ctx.now.0 / 1_000_000)));
            }
            PiiField::ConnectionType => {
                fields.push(("connectionType", Value::str(props.connection.as_str())))
            }
            PiiField::NetworkType => {
                fields.push(("networkType", Value::str(props.network.as_str())))
            }
        }
    }
    if let Some(key) = profile.persistent_id_key.as_deref() {
        let id = persistent_id(ctx.data, key, ctx.seed);
        fields.push((key, Value::str(id)));
    }
    json::to_string(&Value::Object(
        fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BehaviorModel;

    fn profile(pii: &[PiiField], id_key: Option<&str>) -> BrowserProfile {
        let mut model = BehaviorModel::new("Opera", "75.1.3978.72329", "com.opera.browser")
            .leaks(pii);
        if let Some(key) = id_key {
            model = model.persistent_id(key);
        }
        model.materialize()
    }

    fn ctx<'a>(
        props: &'a DeviceProperties,
        data: &'a mut AppDataStore,
        profile: &'a BrowserProfile,
    ) -> PayloadCtx<'a> {
        PayloadCtx { props, data, profile, seed: 7, now: SimInstant(3_000_000) }
    }

    #[test]
    fn full_url_base64_roundtrips() {
        let props = DeviceProperties::testbed_tablet();
        let mut data = AppDataStore::new();
        let p = profile(&[], None);
        let call = NativeCall::ping("sba.yandex.net", "/report")
            .carrying(Payload::full_url_base64("url"));
        let visit = Url::parse("https://www.youtube.com/watch?v=abc").unwrap();
        let req = build_native_request(&call, &mut ctx(&props, &mut data, &p), Some(&visit), 0);
        let encoded = req.url.query_param("url").unwrap();
        let decoded = panoptes_http::codec::b64_decode_url(encoded).unwrap();
        assert_eq!(
            String::from_utf8(decoded).unwrap(),
            "https://www.youtube.com/watch?v=abc"
        );
    }

    #[test]
    fn hostname_plus_persistent_id_is_stable() {
        let props = DeviceProperties::testbed_tablet();
        let mut data = AppDataStore::new();
        let p = profile(&[], Some("yuid"));
        let call = NativeCall::ping("api.browser.yandex.ru", "/check")
            .carrying(Payload::hostname_plus_id("h", "uid"));
        let v1 = Url::parse("https://a.com/x").unwrap();
        let v2 = Url::parse("https://b.com/y").unwrap();
        let r1 = build_native_request(&call, &mut ctx(&props, &mut data, &p), Some(&v1), 0);
        let r2 = build_native_request(&call, &mut ctx(&props, &mut data, &p), Some(&v2), 0);
        assert_eq!(r1.url.query_param("h"), Some("a.com"));
        assert_eq!(r2.url.query_param("h"), Some("b.com"));
        let id1 = r1.url.query_param("uid").unwrap();
        assert_eq!(id1.len(), 64);
        assert_eq!(id1, r2.url.query_param("uid").unwrap(), "same id across visits");
    }

    #[test]
    fn domain_only_strips_path() {
        let props = DeviceProperties::testbed_tablet();
        let mut data = AppDataStore::new();
        let p = profile(&[], None);
        let call = NativeCall::ping("api.bing.com", "/report")
            .carrying(Payload::domain_only("d"));
        let visit = Url::parse("https://www.health-support001.org/health/depression-support").unwrap();
        let req = build_native_request(&call, &mut ctx(&props, &mut data, &p), Some(&visit), 0);
        assert_eq!(req.url.query_param("d"), Some("health-support001.org"));
        assert!(!req.url.to_string_full().contains("depression"));
    }

    #[test]
    fn ad_sdk_body_matches_listing1_shape() {
        let props = DeviceProperties::testbed_tablet();
        let mut data = AppDataStore::new();
        let p = profile(
            &[
                PiiField::DeviceManufacturer,
                PiiField::Resolution,
                PiiField::Location,
                PiiField::Country,
                PiiField::Locale,
            ],
            Some("operaId"),
        );
        let call = NativeCall::ping("s-odx.oleads.com", "/api/v1/sdk_fetch")
            .via_post()
            .carrying(Payload::AdSdkJson);
        let req = build_native_request(&call, &mut ctx(&props, &mut data, &p), None, 0);
        assert_eq!(req.method, Method::Post);
        let body = json::parse(std::str::from_utf8(&req.body).unwrap()).unwrap();
        assert_eq!(body.get("appPackageName").unwrap().as_str(), Some("com.opera.browser"));
        assert_eq!(body.get("deviceVendor").unwrap().as_str(), Some("Samsung"));
        assert_eq!(body.get("deviceScreenWidth").unwrap().as_i64(), Some(1200));
        assert_eq!(body.get("latitude").unwrap().as_f64(), Some(35.3387));
        assert_eq!(body.get("countryCode").unwrap().as_str(), Some("GR"));
        assert_eq!(body.get("userConsent").unwrap().as_str(), Some("false"));
        assert_eq!(body.get("operaId").unwrap().as_str().unwrap().len(), 64);
    }

    #[test]
    fn telemetry_carries_declared_pii_only() {
        let props = DeviceProperties::testbed_tablet();
        let mut data = AppDataStore::new();
        let p = profile(&[PiiField::Resolution, PiiField::NetworkType], None);
        let call = NativeCall::ping("vortex.data.microsoft.com", "/collect")
            .carrying(Payload::Telemetry);
        let req = build_native_request(&call, &mut ctx(&props, &mut data, &p), None, 0);
        assert_eq!(req.url.query_param("screen"), Some("1200x1920"));
        assert_eq!(req.url.query_param("networkType"), Some("WIFI"));
        assert_eq!(req.url.query_param("localIp"), None);
        assert_eq!(req.url.query_param("latitude"), None);
    }

    #[test]
    fn body_pad_inflates_post() {
        let props = DeviceProperties::testbed_tablet();
        let mut data = AppDataStore::new();
        let p = profile(&[], None);
        let call = NativeCall::ping("mtt.browser.qq.com", "/stat").padded(3000);
        let req = build_native_request(&call, &mut ctx(&props, &mut data, &p), None, 0);
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body.len(), 3000);
    }

    #[test]
    fn user_agent_always_present() {
        let props = DeviceProperties::testbed_tablet();
        let mut data = AppDataStore::new();
        let p = profile(&[], None);
        let req = build_native_request(
            &NativeCall::ping("x.com", "/"),
            &mut ctx(&props, &mut data, &p),
            None,
            0,
        );
        let ua = req.headers.get("user-agent").unwrap();
        assert!(ua.contains("Opera/75.1.3978.72329"));
        assert!(ua.contains("SM-T580"));
    }
}
