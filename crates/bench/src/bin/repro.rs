//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--popular N] [--sensitive N] [--seed S] [--only SECTION]
//! ```
//!
//! Sections: `table1 fig2 fig3 fig4 table2 fig5 leaks dns incognito
//! sensitive transfers idle-dest listing1`. Default: everything at paper
//! scale (500 + 500 sites, 10-minute idle).
//!
//! `--har DIR` additionally writes one HAR 1.2 file per browser campaign
//! into DIR, for inspection with off-the-shelf HAR tooling. `--json FILE`
//! writes the machine-readable study summary (every analysis result as
//! one JSON document).

use panoptes::campaign::run_crawl;
use panoptes_bench::experiments::{crawl_all, idle_all, Scale};
use panoptes_bench::render;
use panoptes_browsers::registry::profile_by_name;
use panoptes_device::DeviceProperties;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut only: Option<String> = None;
    let mut har_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--popular" => {
                i += 1;
                scale.popular = args[i].parse().expect("--popular N");
            }
            "--sensitive" => {
                i += 1;
                scale.sensitive = args[i].parse().expect("--sensitive N");
            }
            "--seed" => {
                i += 1;
                scale.seed = args[i].parse().expect("--seed S");
            }
            "--only" => {
                i += 1;
                only = Some(args[i].clone());
            }
            "--har" => {
                i += 1;
                har_dir = Some(args[i].clone());
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args[i].clone());
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--popular N] [--sensitive N] [--seed S] [--only SECTION] [--har DIR] [--json FILE] [--csv DIR]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let want = |section: &str| only.as_deref().is_none_or(|o| o == section);

    eprintln!(
        "# Panoptes reproduction — {} popular + {} sensitive sites, seed {:#x}",
        scale.popular, scale.sensitive, scale.seed
    );
    println!(
        "# Panoptes reproduction run ({} popular + {} sensitive sites, seed {:#x})\n",
        scale.popular, scale.sensitive, scale.seed
    );

    eprintln!("crawling 15 browsers...");
    let (world, results) = crawl_all(&scale);
    let props = DeviceProperties::testbed_tablet();

    if let Some(dir) = &har_dir {
        std::fs::create_dir_all(dir).expect("create --har directory");
        for r in &results {
            let path = format!("{dir}/{}.har", r.profile.name.replace(' ', "_").to_lowercase());
            std::fs::write(&path, panoptes_mitm::har::store_to_har(&r.store))
                .expect("write har file");
            eprintln!("wrote {path}");
        }
    }

    if want("table1") {
        println!("{}", render::table1(&results));
    }
    if want("fig2") {
        println!("{}", render::fig2(&results));
    }
    if want("fig3") {
        println!("{}", render::fig3(&results));
    }
    if want("fig4") {
        println!("{}", render::fig4(&results));
    }
    if want("table2") {
        println!("{}", render::table2_md(&results, &props));
    }
    if want("leaks") {
        println!("{}", render::leaks_md(&results));
        println!("{}", render::leak_summary_md(&results));
    }
    if want("dns") {
        println!("{}", render::dns_md(&results));
    }
    if want("sensitive") {
        println!("{}", render::sensitive_md(&results));
    }
    if want("transfers") {
        println!("{}", render::transfers_md(&results));
    }
    if want("listing1") {
        println!("{}", render::listing1(&results));
    }
    if want("identifiers") {
        println!("{}", render::identifiers_md(&results));
    }
    if want("cost") {
        println!("{}", render::cost_md(&results));
    }

    if want("incognito") {
        eprintln!("incognito re-crawls (Edge / Opera / UC International)...");
        let config = scale.config();
        let incog = config.clone().incognito();
        let pairs: Vec<_> = ["Edge", "Opera", "UC International"]
            .iter()
            .map(|name| {
                let p = profile_by_name(name).expect("known browser");
                let normal = run_crawl(&world, &p, &world.sites, &config);
                let incognito = run_crawl(&world, &p, &world.sites, &incog);
                (normal, incognito)
            })
            .collect();
        println!("{}", render::incognito_md(&pairs));
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create --csv directory");
        std::fs::write(format!("{dir}/fig2.csv"), render::fig2_csv(&results)).expect("fig2.csv");
        std::fs::write(format!("{dir}/fig3.csv"), render::fig3_csv(&results)).expect("fig3.csv");
        eprintln!("wrote {dir}/fig2.csv, {dir}/fig3.csv");
    }

    if want("fig5") || want("idle-dest") || json_path.is_some() || csv_dir.is_some() {
        eprintln!("idle experiment (15 browsers x {}s)...", scale.idle.as_secs());
        let idle = idle_all(&scale);
        if want("fig5") {
            println!("{}", render::fig5(&idle));
        }
        if want("idle-dest") {
            println!("{}", render::idle_dest_md(&idle));
        }
        if let Some(path) = &json_path {
            std::fs::write(path, panoptes_analysis::summary::study_report(&results, &idle))
                .expect("write --json file");
            eprintln!("wrote {path}");
        }
        if let Some(dir) = &csv_dir {
            std::fs::write(
                format!("{dir}/fig5.csv"),
                render::fig5_csv(&idle, panoptes_simnet::SimDuration::from_secs(10)),
            )
            .expect("fig5.csv");
            eprintln!("wrote {dir}/fig5.csv");
        }
    }
    eprintln!("done.");
}
