//! DNS: zone registry, the device's local stub resolver, and
//! DNS-over-HTTPS providers.
//!
//! The paper found that "8 out of all 15 mobile browsers in our dataset
//! query Cloudflare's or Google's third-party DNS-over-HTTPS services for
//! the visited domains with the rest (7) of them using the device's local
//! DNS stub resolver" (§3.2). Both paths are modelled:
//!
//! * **stub** lookups are plain UDP/53 exchanges answered from the zone —
//!   they never appear in the HTTP flow capture but are recorded in the
//!   network's DNS log;
//! * **DoH** lookups are real HTTPS requests to the provider's resolver
//!   endpoint, so they surface in the MITM capture as *native* browser
//!   traffic to a third party.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use panoptes_http::netaddr::IpAddr;
use panoptes_http::url::Url;
use panoptes_http::{Atom, Request};

/// A DNS zone: the authoritative host → address map for the simulated
/// Internet. Populated by `panoptes-web` when the world is built.
#[derive(Debug, Clone, Default)]
pub struct DnsZone {
    records: HashMap<String, IpAddr>,
}

impl DnsZone {
    /// An empty zone.
    pub fn new() -> DnsZone {
        DnsZone::default()
    }

    /// Registers (or replaces) an A record.
    pub fn insert(&mut self, host: &str, addr: IpAddr) {
        self.records.insert(host.to_ascii_lowercase(), addr);
    }

    /// Looks up an A record. Hosts on the request path are already
    /// lowercase (URL parsing lowercases them), so the common case is a
    /// borrowed probe; only mixed-case queries pay the lowercasing copy.
    pub fn lookup(&self, host: &str) -> Option<IpAddr> {
        if host.bytes().any(|b| b.is_ascii_uppercase()) {
            return self.records.get(&host.to_ascii_lowercase()).copied();
        }
        self.records.get(host).copied()
    }

    /// Number of registered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the zone is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates `(host, addr)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, IpAddr)> {
        self.records.iter().map(|(h, a)| (h.as_str(), *a))
    }
}

/// A public DNS-over-HTTPS provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DohProvider {
    /// Cloudflare (`cloudflare-dns.com`).
    Cloudflare,
    /// Google Public DNS (`dns.google`).
    Google,
}

impl DohProvider {
    /// The resolver endpoint hostname.
    pub fn host(self) -> &'static str {
        match self {
            DohProvider::Cloudflare => "cloudflare-dns.com",
            DohProvider::Google => "dns.google",
        }
    }

    /// Builds the HTTPS query request for `name` (RFC 8484's JSON-ish GET
    /// form, which is what appears in the flow capture).
    pub fn query_request(self, name: &str) -> Request {
        let url = Url::https(self.host())
            .with_path("/dns-query")
            .with_query_param("name", name)
            .with_query_param("type", "A");
        Request::get(url).with_header("accept", "application/dns-json")
    }
}

/// How a browser resolves names — the device stub or a DoH provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolverKind {
    /// The device's local stub resolver (UDP/53 to the gateway).
    LocalStub,
    /// DNS-over-HTTPS to a public provider.
    Doh(DohProvider),
}

impl ResolverKind {
    /// True when this resolver produces HTTPS traffic visible to the MITM.
    pub fn is_doh(self) -> bool {
        matches!(self, ResolverKind::Doh(_))
    }
}

/// One recorded DNS lookup (stub or DoH), for the §3.2 DNS analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsLogEntry {
    /// UID of the app that asked.
    pub uid: u32,
    /// The name queried.
    pub name: Atom,
    /// Which mechanism was used.
    pub resolver: ResolverKind,
}

/// Number of [`DnsLog`] shards. Writers from different fleet workers
/// hash to different shards, so an append rarely contends.
const DNS_LOG_SHARDS: usize = 8;

/// An append-only, sharded DNS query log.
///
/// Appends take one shard lock; reads return a memoised
/// [`DnsLogSnapshot`] (shared `Arc`, merged and ordered by a global
/// append sequence) instead of cloning the whole log under a lock —
/// the former `SimNet::dns_log()` behaviour this replaces.
#[derive(Debug, Default)]
pub struct DnsLog {
    shards: [Mutex<Vec<(u64, DnsLogEntry)>>; DNS_LOG_SHARDS],
    next_seq: AtomicU64,
    memo: Mutex<Option<(u64, DnsLogSnapshot)>>,
}

/// An immutable, cheaply clonable view of the DNS log in append order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DnsLogSnapshot(Arc<Vec<DnsLogEntry>>);

impl DnsLog {
    /// An empty log.
    pub fn new() -> DnsLog {
        DnsLog::default()
    }

    /// Appends one entry.
    pub fn push(&self, entry: DnsLogEntry) {
        panoptes_obs::count!("simnet.dns.queries", Deterministic);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.shards[(seq as usize) % DNS_LOG_SHARDS].lock().push((seq, entry));
    }

    /// Number of entries logged so far.
    pub fn len(&self) -> usize {
        self.next_seq.load(Ordering::Relaxed) as usize
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of all entries in append order. Memoised: repeated
    /// calls without intervening appends share one allocation.
    pub fn snapshot(&self) -> DnsLogSnapshot {
        let seq = self.next_seq.load(Ordering::Acquire);
        let mut memo = self.memo.lock();
        if let Some((at, snap)) = memo.as_ref() {
            if *at == seq {
                return snap.clone();
            }
        }
        let mut merged: Vec<(u64, DnsLogEntry)> = Vec::with_capacity(seq as usize);
        for shard in &self.shards {
            merged.extend(shard.lock().iter().cloned());
        }
        merged.sort_unstable_by_key(|(s, _)| *s);
        let snap = DnsLogSnapshot(Arc::new(merged.into_iter().map(|(_, e)| e).collect()));
        *memo = Some((seq, snap.clone()));
        snap
    }
}

impl DnsLogSnapshot {
    /// Builds a snapshot from already-ordered entries (e.g. parsed from
    /// an archive).
    pub fn from_entries(entries: Vec<DnsLogEntry>) -> DnsLogSnapshot {
        DnsLogSnapshot(Arc::new(entries))
    }

    /// Entries in append order.
    pub fn iter(&self) -> std::slice::Iter<'_, DnsLogEntry> {
        self.0.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Index<usize> for DnsLogSnapshot {
    type Output = DnsLogEntry;
    fn index(&self, i: usize) -> &DnsLogEntry {
        &self.0[i]
    }
}

impl<'a> IntoIterator for &'a DnsLogSnapshot {
    type Item = &'a DnsLogEntry;
    type IntoIter = std::slice::Iter<'a, DnsLogEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_roundtrip_case_insensitive() {
        let mut zone = DnsZone::new();
        zone.insert("Example.COM", IpAddr::new(198, 51, 100, 1));
        assert_eq!(zone.lookup("example.com"), Some(IpAddr::new(198, 51, 100, 1)));
        assert_eq!(zone.lookup("EXAMPLE.com"), Some(IpAddr::new(198, 51, 100, 1)));
        assert_eq!(zone.lookup("other.com"), None);
        assert_eq!(zone.len(), 1);
        assert!(!zone.is_empty());
    }

    #[test]
    fn insert_replaces() {
        let mut zone = DnsZone::new();
        zone.insert("a.com", IpAddr::new(1, 1, 1, 1));
        zone.insert("a.com", IpAddr::new(2, 2, 2, 2));
        assert_eq!(zone.lookup("a.com"), Some(IpAddr::new(2, 2, 2, 2)));
        assert_eq!(zone.len(), 1);
    }

    #[test]
    fn doh_query_shape() {
        let req = DohProvider::Google.query_request("www.youtube.com");
        assert_eq!(req.url.host(), "dns.google");
        assert_eq!(req.url.path(), "/dns-query");
        assert_eq!(req.url.query_param("name"), Some("www.youtube.com"));
        assert_eq!(req.headers.get("accept"), Some("application/dns-json"));
    }

    #[test]
    fn dns_log_preserves_append_order_across_shards() {
        let log = DnsLog::new();
        for i in 0..20u32 {
            log.push(DnsLogEntry {
                uid: i,
                name: Atom::intern(&format!("host{i}.example")),
                resolver: ResolverKind::LocalStub,
            });
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 20);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.uid, i as u32);
        }
        // Memoised: same snapshot while nothing is appended.
        let again = log.snapshot();
        assert_eq!(snap.len(), again.len());
        log.push(DnsLogEntry {
            uid: 99,
            name: Atom::intern("late.example"),
            resolver: ResolverKind::LocalStub,
        });
        assert_eq!(log.snapshot().len(), 21);
        assert_eq!(log.snapshot()[20].uid, 99);
    }

    #[test]
    fn resolver_kind_classification() {
        assert!(!ResolverKind::LocalStub.is_doh());
        assert!(ResolverKind::Doh(DohProvider::Cloudflare).is_doh());
        assert_eq!(DohProvider::Cloudflare.host(), "cloudflare-dns.com");
    }
}
