//! Brave 1.51.114 — privacy-marketed and, on the wire, genuinely quiet:
//! no per-visit phone-homes, no Table 2 PII, only update checks and the
//! privacy-preserving P3A ping.

use crate::model::BehaviorModel;
use crate::profile::NativeCall;

/// The Brave pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("Brave", "1.51.114", "com.brave.browser")
        .h3()
        .honors_consent()
        .startup(vec![
            NativeCall::ping("updates.brave.com", "/extensions"),
            NativeCall::ping("static1.brave.com", "/components"),
            NativeCall::ping("p3a.brave.com", "/p3a"),
        ])
        .idle_burst(vec![
            NativeCall::ping("static1.brave.com", "/components"),
            NativeCall::ping("updates.brave.com", "/extensions"),
        ])
        .idle_periodic(vec![
            (180, NativeCall::ping("p3a.brave.com", "/p3a")),
            (300, NativeCall::ping("updates.brave.com", "/extensions")),
        ])
}
