//! Property-based tests: the CIDR trie agrees with a brute-force
//! longest-prefix scan on arbitrary rule sets.

use proptest::prelude::*;

use panoptes_geo::{CidrTrie, Country, GeoDb};
use panoptes_http::netaddr::{Cidr, IpAddr};

proptest! {
    #[test]
    fn trie_matches_linear_scan(
        blocks in proptest::collection::vec((any::<u32>(), 0u8..=32, 0usize..10), 0..40),
        probes in proptest::collection::vec(any::<u32>(), 0..60),
    ) {
        let mut trie = CidrTrie::new();
        let mut reference: Vec<(Cidr, usize)> = Vec::new();
        for (base, prefix, value) in blocks {
            let cidr = Cidr::new(IpAddr(base), prefix);
            trie.insert(cidr, value);
            // Linear reference keeps only the latest value per exact prefix,
            // like the trie.
            reference.retain(|(c, _)| *c != cidr);
            reference.push((cidr, value));
        }
        for probe in probes {
            let ip = IpAddr(probe);
            let expected = reference
                .iter()
                .filter(|(c, _)| c.contains(ip))
                .max_by_key(|(c, _)| c.prefix)
                .map(|(_, v)| *v);
            prop_assert_eq!(trie.lookup(ip).copied(), expected, "{}", ip);
        }
    }

    #[test]
    fn standard_db_total_on_plan_hosts(index in 0u32..200) {
        // Any address allocated inside a plan block must geolocate to
        // that block's country.
        let db = GeoDb::standard();
        for (block, country) in panoptes_geo::db::ADDRESS_PLAN {
            let cidr = Cidr::parse(block).unwrap();
            let span: u64 = if cidr.prefix == 32 { 1 } else { 1 << (32 - cidr.prefix as u32) };
            let host = cidr.host((index as u64 % span) as u32);
            prop_assert_eq!(db.country_of(host), Some(Country::new(country)), "{}", block);
        }
    }

    #[test]
    fn lookup_never_panics(ip in any::<u32>()) {
        let db = GeoDb::standard();
        let _ = db.country_of(IpAddr(ip));
        let _ = db.is_outside_eu(IpAddr(ip));
    }
}
