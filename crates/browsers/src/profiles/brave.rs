//! Brave 1.51.114 — privacy-marketed and, on the wire, genuinely quiet:
//! no per-visit phone-homes, no Table 2 PII, only update checks and the
//! privacy-preserving P3A ping.

use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::ResolverKind;

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("updates.brave.com", "/extensions"),
    NativeCall::ping("static1.brave.com", "/components"),
    NativeCall::ping("p3a.brave.com", "/p3a"),
];

const PER_VISIT: &[NativeCall] = &[];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("static1.brave.com", "/components"),
    NativeCall::ping("updates.brave.com", "/extensions"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    (180, NativeCall::ping("p3a.brave.com", "/p3a")),
    (300, NativeCall::ping("updates.brave.com", "/extensions")),
];

const PII: &[PiiField] = &[];

/// Builds the Brave profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "Brave",
        version: "1.51.114",
        package: "com.brave.browser",
        instrumentation: Instrumentation::Cdp,
        supports_incognito: true,
        resolver: ResolverKind::LocalStub,
        adblock: false,
        attempts_h3: true,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: None,
        injects_js_collector: None,
        honors_telemetry_consent: true,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
