//! The study server daemon.
//!
//! ```text
//! serve [--port N] [--workers N] [--cache-budget-mb N] [--no-cache]
//!       [--max-active N] [--max-waiting N] [--narrate]
//!       [--trace] [--flightrec DIR] [--watchdog-secs N]
//! ```
//!
//! Serves `GET /study` (streamed study results, byte-identical to
//! offline `repro`), `GET /healthz`, and `GET /metrics` on
//! `127.0.0.1`. Runs until killed.
//!
//! Observability flags: `--trace` records request-scoped trace events
//! (served bytes are identical either way); `--flightrec DIR` arms the
//! stall watchdog and panic hook, writing post-mortems under `DIR`
//! (readable with `panoptes-doctor`); `--watchdog-secs N` sets the
//! no-progress deadline the watchdog enforces.

use panoptes_serve::server::{self, ServerConfig};

// The counting allocator makes the artifact cache's byte accounting
// live (without it every artifact is charged its floor estimate).
#[global_allocator]
static ALLOC: panoptes_bench::mem::CountingAlloc = panoptes_bench::mem::CountingAlloc;

fn main() {
    let mut port: u16 = 7340;
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next_number = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a number")))
        };
        match arg.as_str() {
            "--port" => port = next_number("--port") as u16,
            "--workers" => config.workers = (next_number("--workers") as usize).max(1),
            "--cache-budget-mb" => {
                config.cache_budget = Some(next_number("--cache-budget-mb") << 20);
            }
            "--no-cache" => config.cache_budget = None,
            "--max-active" => config.max_active = (next_number("--max-active") as usize).max(1),
            "--max-waiting" => config.max_waiting = next_number("--max-waiting") as usize,
            "--narrate" => config.narrate = true,
            "--trace" => config.trace = true,
            "--flightrec" => {
                let Some(dir) = args.next() else {
                    die("--flightrec needs a directory")
                };
                config.flightrec_dir = Some(std::path::PathBuf::from(dir));
            }
            "--watchdog-secs" => {
                config.watchdog_deadline = Some(std::time::Duration::from_secs(next_number(
                    "--watchdog-secs",
                )));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve [--port N] [--workers N] [--cache-budget-mb N] [--no-cache] \
                     [--max-active N] [--max-waiting N] [--narrate] \
                     [--trace] [--flightrec DIR] [--watchdog-secs N]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let cache_note = match config.cache_budget {
        Some(bytes) => format!("cache {} MiB", bytes >> 20),
        None => "cache disabled".to_string(),
    };
    let handle = match server::spawn(port, config.clone()) {
        Ok(handle) => handle,
        Err(e) => die(&format!("bind 127.0.0.1:{port} failed: {e}")),
    };
    eprintln!(
        "panoptes-serve listening on http://{} ({} workers, {cache_note}, {} active / {} waiting)",
        handle.addr, config.workers, config.max_active, config.max_waiting
    );
    loop {
        std::thread::park();
    }
}

fn die(message: &str) -> ! {
    eprintln!("serve: {message}");
    std::process::exit(2);
}
