//! Records the observability-layer cost as `BENCH_obs.json`, and
//! validates trace files for CI.
//!
//! The claim under test: **the disabled obs layer costs the pipeline
//! nothing** — every instrumentation point is one relaxed atomic load
//! and a not-taken branch, so a `repro` run without `--metrics` /
//! `--trace-out` is byte- and time-identical to the uninstrumented
//! code. Three measurements back it:
//!
//! * **disabled per-op cost** — a microbench of the disabled macro
//!   path (`count!` + `record!` + `gauge_add!` + an inert span), giving
//!   nanoseconds per instrumentation point;
//! * **overhead bound** — the capture+study path runs once with
//!   metrics+trace enabled to *count* how many instrumentation points
//!   the path actually crosses (counter deltas, histogram samples,
//!   gauge moves, trace events); the bound is
//!   `points x per_op_ns / disabled_path_wall`, asserted ≤ 2%. This
//!   overestimates on purpose: bulk `count!(.., n)` calls are charged
//!   `n` times;
//! * **A/B wall clock** — the same path timed disabled vs enabled,
//!   interleaved rep-by-rep (informational: host noise easily exceeds
//!   the bound, which is why the assertion uses the bound, not this);
//!
//! plus two byte-identity checks: the capture (flow-store JSONL) is
//! identical with the layer enabled and disabled, and a trace document
//! survives emit → parse → re-emit byte-identically.
//!
//! Usage: `bench_obs [--quick] [output.json]`
//!        `bench_obs --validate trace.jsonl` (CI trace-schema check)

use panoptes::fleet::FleetOptions;
use panoptes_analysis::engine::{analyze_study, AnalysisResources};
use panoptes_bench::ab::{self, AbConfig};
use panoptes_bench::experiments::{crawl_all_jobs, Scale};
use panoptes_obs::metrics::{MetricValue, MetricsSnapshot};
use panoptes_obs::{trace, METRICS, TRACE};

/// One representative instrumentation site of each kind — the exact
/// macro shapes the pipeline uses. `#[inline(never)]` so the disabled
/// branches can't be folded away across the timing loop.
#[inline(never)]
fn instrumentation_probe(i: u64) {
    panoptes_obs::count!("bench.obs.probe_counter", Runtime, i & 1);
    panoptes_obs::record!("bench.obs.probe_histogram", Runtime, i);
    panoptes_obs::gauge_add!("bench.obs.probe_gauge", 1 - ((i & 2) as i64));
    drop(trace::span("bench.obs.probe_span"));
}

/// Instrumentation points the probe crosses per call.
const PROBE_OPS: u64 = 4;

/// Total instrumentation points recorded in a snapshot delta,
/// deliberately overcounting bulk adds (a `count!(.., n)` is charged
/// `n`). Gauges don't expose an update count, so the known gauge-paired
/// counters are charged a second time below.
fn instrumentation_points(delta: &MetricsSnapshot) -> u64 {
    let mut points: u64 = delta
        .entries
        .iter()
        .map(|e| match &e.value {
            MetricValue::Counter(v) => *v,
            MetricValue::Gauge { .. } => 0,
            MetricValue::Histogram { count, .. } => *count,
        })
        .sum();
    // Every queue push/pop also moves the depth gauge.
    for name in ["simnet.queue.events_scheduled", "simnet.queue.events_fired"] {
        if let Some(e) = delta.entries.iter().find(|e| e.name == name) {
            if let MetricValue::Counter(v) = &e.value {
                points += v;
            }
        }
    }
    points
}

/// `--validate`: parses a trace JSONL file, checks the schema, and
/// asserts the re-emit is byte-identical. Exits non-zero on failure.
fn validate(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_obs --validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let events = match trace::parse_jsonl(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("bench_obs --validate: {path}: {e}");
            std::process::exit(1);
        }
    };
    let reemitted = trace::to_jsonl(&events);
    if reemitted != text {
        eprintln!("bench_obs --validate: {path}: re-emit is not byte-identical to the input");
        std::process::exit(1);
    }
    let starts = events.iter().filter(|e| e.kind == trace::EventKind::Start).count();
    let ends = events.iter().filter(|e| e.kind == trace::EventKind::End).count();
    let points = events.iter().filter(|e| e.kind == trace::EventKind::Point).count();
    if starts != ends {
        // Rings overwrite their oldest events under pressure, so a
        // start can legitimately outlive its end in a huge trace; in
        // the CI smoke trace every span must balance.
        eprintln!("bench_obs --validate: {path}: {starts} span starts vs {ends} ends");
        std::process::exit(1);
    }
    // Request-scoping invariants: a span's start and end must agree on
    // which request they served, and no span may parent on itself.
    let mut start_req = std::collections::HashMap::new();
    for e in &events {
        if e.kind == trace::EventKind::Start {
            start_req.insert(e.span, e.req);
        }
    }
    let mut scoped = 0usize;
    for e in &events {
        if e.req.is_some() {
            scoped += 1;
        }
        if e.kind == trace::EventKind::End {
            if let Some(req) = start_req.get(&e.span) {
                if *req != e.req {
                    eprintln!(
                        "bench_obs --validate: {path}: span {} ({}) starts in request \
                         {req:?} but ends in {:?}",
                        e.span, e.name, e.req
                    );
                    std::process::exit(1);
                }
            }
        }
        if e.parent == Some(e.span) {
            eprintln!(
                "bench_obs --validate: {path}: span {} ({}) parents on itself",
                e.span, e.name
            );
            std::process::exit(1);
        }
    }
    println!(
        "{path}: {} events ({starts} spans, {points} points, {scoped} request-scoped), \
         schema valid, round-trip byte-identical",
        events.len()
    );
    std::process::exit(0);
}

fn main() {
    let mut out_path = "BENCH_obs.json".to_string();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--validate" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("bench_obs --validate FILE");
                    std::process::exit(2);
                });
                validate(&path);
            }
            other => out_path = other.to_string(),
        }
    }
    let (scale, reps, probe_iters) = if quick {
        (Scale { popular: 8, sensitive: 5, ..Scale::quick() }, 2, 2_000_000u64)
    } else {
        (Scale::quick(), 5, 20_000_000u64)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let res = AnalysisResources::standard();
    let options = FleetOptions::with_jobs(2);
    panoptes_obs::disable(METRICS | TRACE);

    // The capture+study path under test. Returns the per-browser flow
    // stores as JSONL for the byte-identity check.
    let run_path = |exports: Option<&mut Vec<String>>| {
        let (_, results) = crawl_all_jobs(&scale, &options).expect("crawl fleet");
        std::hint::black_box(analyze_study(&results, &[], &res).crawls.len());
        if let Some(exports) = exports {
            *exports = results.iter().map(|r| r.store.export_jsonl()).collect();
        }
    };

    eprintln!("warm-up (builds the shared world)…");
    run_path(None);

    eprintln!("disabled per-op microbench ({probe_iters} probe calls)…");
    let probe_secs = ab::best_of(AbConfig::new(1, 3), || {
        for i in 0..probe_iters {
            instrumentation_probe(std::hint::black_box(i));
        }
    });
    let per_op_ns = probe_secs * 1e9 / (probe_iters * PROBE_OPS) as f64;

    eprintln!("byte-identity: capture with the layer off vs on…");
    let mut disabled_exports = Vec::new();
    run_path(Some(&mut disabled_exports));
    panoptes_obs::enable(METRICS | TRACE);
    let before = panoptes_obs::metrics::snapshot();
    let mut enabled_exports = Vec::new();
    run_path(Some(&mut enabled_exports));
    let delta = panoptes_obs::metrics::snapshot().delta(&before);
    let trace_jsonl = trace::export_jsonl();
    panoptes_obs::disable(METRICS | TRACE);
    assert_eq!(
        disabled_exports, enabled_exports,
        "capture must be byte-identical with the obs layer on"
    );
    let trace_events = trace_jsonl.lines().count() as u64;
    let roundtrip =
        trace::to_jsonl(&trace::parse_jsonl(&trace_jsonl).expect("trace parses"));
    assert_eq!(roundtrip, trace_jsonl, "trace round-trip must be byte-identical");

    let points = instrumentation_points(&delta) + trace_events;

    eprintln!("A/B wall clock: disabled vs enabled, interleaved ({reps} reps + 1 warmup)…");
    let wall = ab::interleaved(
        AbConfig::new(1, reps),
        "disabled",
        || {
            panoptes_obs::disable(METRICS | TRACE);
            run_path(None);
        },
        "enabled",
        || {
            panoptes_obs::enable(METRICS | TRACE);
            run_path(None);
            drop(trace::drain()); // keep the flush list bounded
        },
    );
    panoptes_obs::disable(METRICS | TRACE);
    let (disabled_secs, enabled_secs) = (wall.a.best(), wall.b.best());

    // The asserted claim: crossing every instrumentation point the path
    // has, at the measured disabled cost, is within 2% of the path.
    let bound_pct = 100.0 * (points as f64 * per_op_ns) / (disabled_secs * 1e9);
    let measured_pct = 100.0 * (enabled_secs - disabled_secs) / disabled_secs;
    assert!(
        bound_pct <= 2.0,
        "disabled-path overhead bound {bound_pct:.3}% exceeds 2% \
         ({points} points x {per_op_ns:.2} ns over {disabled_secs:.3}s)"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs\",\n",
            "  \"scale\": \"{scale}\",\n",
            "  \"host_cpus\": {host_cpus},\n",
            "  \"disabled_per_op_ns\": {per_op_ns:.3},\n",
            "  \"instrumentation_points\": {points},\n",
            "  \"trace_events\": {trace_events},\n",
            "  \"protocol\": {{ \"warmups\": 1, \"reps\": {reps}, \"estimator\": \"best\", \"interleaved\": true }},\n",
            "  \"path_disabled_secs\": {disabled_secs:.6},\n",
            "  \"path_disabled_mean_secs\": {disabled_mean:.6},\n",
            "  \"path_enabled_secs\": {enabled_secs:.6},\n",
            "  \"path_enabled_mean_secs\": {enabled_mean:.6},\n",
            "  \"enabled_measured_overhead_pct\": {measured_pct:.3},\n",
            "  \"disabled_overhead_bound_pct\": {bound_pct:.4},\n",
            "  \"asserted\": {{\n",
            "    \"disabled_overhead_le_2pct\": true,\n",
            "    \"captures_byte_identical\": true,\n",
            "    \"trace_roundtrip_byte_identical\": true\n",
            "  }},\n",
            "  \"note\": \"bound charges bulk count!(..,n) n times and every trace event; \
             measured A/B is informational (host noise dominates at this scale)\"\n",
            "}}\n",
        ),
        scale = if quick { "smoke" } else { "quick" },
        host_cpus = host_cpus,
        per_op_ns = per_op_ns,
        points = points,
        trace_events = trace_events,
        reps = reps,
        disabled_secs = disabled_secs,
        disabled_mean = wall.a.mean(),
        enabled_secs = enabled_secs,
        enabled_mean = wall.b.mean(),
        measured_pct = measured_pct,
        bound_pct = bound_pct,
    );

    std::fs::write(&out_path, &json).expect("write benchmark record");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
