//! §3.2's incognito experiment: "we find that these browsers that leak
//! the browsing history of their users, continue to do so, no matter
//! what mode the user is browsing on."

use panoptes::campaign::CampaignResult;

use crate::history::{detect_history_leaks, HistoryLeak, LeakGranularity};

/// Comparison of one browser's normal vs incognito campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct IncognitoRow {
    /// Browser name.
    pub browser: String,
    /// Worst granularity leaked in normal mode.
    pub normal: Option<LeakGranularity>,
    /// Worst granularity leaked in incognito mode.
    pub incognito: Option<LeakGranularity>,
    /// The paper's finding: leaking continued in incognito.
    pub still_leaks: bool,
}

/// Compares two campaigns of the same browser (normal, incognito).
pub fn compare(normal: &CampaignResult, incognito: &CampaignResult) -> IncognitoRow {
    assert_eq!(
        normal.profile.package, incognito.profile.package,
        "comparing different browsers"
    );
    compare_leaks(
        &normal.profile.name,
        &detect_history_leaks(normal),
        &detect_history_leaks(incognito),
    )
}

/// [`compare`] over already-detected leak sets (the fused study engine
/// detects each mode's leaks once and compares the results).
pub fn compare_leaks(
    browser: &str,
    normal: &[HistoryLeak],
    incognito: &[HistoryLeak],
) -> IncognitoRow {
    let n = normal.iter().map(|l| l.granularity).max();
    let i = incognito.iter().map(|l| l.granularity).max();
    IncognitoRow {
        browser: browser.to_string(),
        normal: n,
        incognito: i,
        still_leaks: n.is_some() && i == n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn edge_opera_uc_keep_leaking_in_incognito() {
        let world =
            World::build(&GeneratorConfig { popular: 5, sensitive: 3, ..Default::default() });
        let normal_cfg = CampaignConfig::default();
        let incog_cfg = CampaignConfig::default().incognito();
        // The three §3.2 incognito subjects (Yandex and QQ have no
        // incognito mode to test — footnote 5).
        for name in ["Edge", "Opera", "UC International"] {
            let p = profile_by_name(name).unwrap();
            let normal = run_crawl(&world, &p, &world.sites, &normal_cfg);
            let incognito = run_crawl(&world, &p, &world.sites, &incog_cfg);
            let row = compare(&normal, &incognito);
            assert!(row.still_leaks, "{name}: {row:?}");
        }
    }

    #[test]
    fn clean_browser_is_clean_in_both() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 2, ..Default::default() });
        let p = profile_by_name("Chrome").unwrap();
        let normal = run_crawl(&world, &p, &world.sites, &CampaignConfig::default());
        let incognito =
            run_crawl(&world, &p, &world.sites, &CampaignConfig::default().incognito());
        let row = compare(&normal, &incognito);
        assert_eq!(row.normal, None);
        assert_eq!(row.incognito, None);
        assert!(!row.still_leaks);
    }
}
