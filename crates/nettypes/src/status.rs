//! HTTP status codes.

/// An HTTP response status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK
    pub const OK: StatusCode = StatusCode(200);
    /// 204 No Content
    pub const NO_CONTENT: StatusCode = StatusCode(204);
    /// 301 Moved Permanently
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found
    pub const FOUND: StatusCode = StatusCode(302);
    /// 304 Not Modified
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// 400 Bad Request
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 403 Forbidden
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 502 Bad Gateway — what the MITM proxy returns when the upstream
    /// handshake fails.
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);

    /// True for 2xx codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// True for 3xx codes.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Canonical reason phrase for the codes this suite emits.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            502 => "Bad Gateway",
            _ => "Unknown",
        }
    }
}

impl std::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::NO_CONTENT.is_success());
        assert!(!StatusCode::FOUND.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(!StatusCode::NOT_FOUND.is_redirect());
    }

    #[test]
    fn display_includes_reason() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode(502).to_string(), "502 Bad Gateway");
    }
}
