//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--popular N] [--sensitive N] [--seed S] [--jobs N]
//!       [--only SECTION]
//! ```
//!
//! Sections: `table1 fig2 fig3 fig4 table2 fig5 leaks dns incognito
//! sensitive transfers idle-dest listing1`. Default: everything at paper
//! scale (500 + 500 sites, 10-minute idle).
//!
//! `--jobs N` runs the browser campaigns across an N-worker fleet
//! (default: the machine's available parallelism; `--jobs 1` forces the
//! legacy sequential path). Output is byte-identical for every N — the
//! fleet re-orders results into profile order before rendering.
//!
//! `--har DIR` additionally writes one HAR 1.2 file per browser campaign
//! into DIR, for inspection with off-the-shelf HAR tooling. `--json FILE`
//! writes the machine-readable study summary (every analysis result as
//! one JSON document).

use panoptes::campaign::run_crawl;
use panoptes::fleet::{self, FleetOptions, FleetUnit};
use panoptes_bench::experiments::{crawl_all, crawl_all_jobs, idle_all, idle_all_jobs, Scale};
use panoptes_bench::render;
use panoptes_browsers::registry::profile_by_name;
use panoptes_device::DeviceProperties;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut only: Option<String> = None;
    let mut har_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--jobs" => {
                i += 1;
                jobs = Some(args[i].parse().expect("--jobs N"));
            }
            "--popular" => {
                i += 1;
                scale.popular = args[i].parse().expect("--popular N");
            }
            "--sensitive" => {
                i += 1;
                scale.sensitive = args[i].parse().expect("--sensitive N");
            }
            "--seed" => {
                i += 1;
                scale.seed = args[i].parse().expect("--seed S");
            }
            "--only" => {
                i += 1;
                only = Some(args[i].clone());
            }
            "--har" => {
                i += 1;
                har_dir = Some(args[i].clone());
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args[i].clone());
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--popular N] [--sensitive N] [--seed S] [--jobs N] [--only SECTION] [--har DIR] [--json FILE] [--csv DIR]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let want = |section: &str| only.as_deref().is_none_or(|o| o == section);

    eprintln!(
        "# Panoptes reproduction — {} popular + {} sensitive sites, seed {:#x}",
        scale.popular, scale.sensitive, scale.seed
    );
    println!(
        "# Panoptes reproduction run ({} popular + {} sensitive sites, seed {:#x})\n",
        scale.popular, scale.sensitive, scale.seed
    );

    let fleet_options = match jobs {
        Some(n) => FleetOptions::with_jobs(n).verbose(),
        None => FleetOptions::default().verbose(),
    };
    let effective = fleet_options.effective_jobs(15);

    eprintln!("crawling 15 browsers ({effective} worker(s))...");
    let (world, results) = if jobs == Some(1) {
        // The legacy sequential path, kept reachable for A/B runs.
        crawl_all(&scale)
    } else {
        match crawl_all_jobs(&scale, &fleet_options) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("crawl fleet failed: {e}");
                std::process::exit(1);
            }
        }
    };
    let props = DeviceProperties::testbed_tablet();

    if let Some(dir) = &har_dir {
        std::fs::create_dir_all(dir).expect("create --har directory");
        for r in &results {
            let path = format!("{dir}/{}.har", r.profile.name.replace(' ', "_").to_lowercase());
            std::fs::write(&path, panoptes_mitm::har::store_to_har(&r.store))
                .expect("write har file");
            eprintln!("wrote {path}");
        }
    }

    if want("table1") {
        println!("{}", render::table1(&results));
    }
    if want("fig2") {
        println!("{}", render::fig2(&results));
    }
    if want("fig3") {
        println!("{}", render::fig3(&results));
    }
    if want("fig4") {
        println!("{}", render::fig4(&results));
    }
    if want("table2") {
        println!("{}", render::table2_md(&results, &props));
    }
    if want("leaks") {
        println!("{}", render::leaks_md(&results));
        println!("{}", render::leak_summary_md(&results));
    }
    if want("dns") {
        println!("{}", render::dns_md(&results));
    }
    if want("sensitive") {
        println!("{}", render::sensitive_md(&results));
    }
    if want("transfers") {
        println!("{}", render::transfers_md(&results));
    }
    if want("listing1") {
        println!("{}", render::listing1(&results));
    }
    if want("identifiers") {
        println!("{}", render::identifiers_md(&results));
    }
    if want("cost") {
        println!("{}", render::cost_md(&results));
    }

    if want("incognito") {
        eprintln!("incognito re-crawls (Edge / Opera / UC International)...");
        let config = scale.config();
        let incog = config.clone().incognito();
        let browsers = ["Edge", "Opera", "UC International"];
        let pairs: Vec<_> = if jobs == Some(1) {
            browsers
                .iter()
                .map(|name| {
                    let p = profile_by_name(name).expect("known browser");
                    let normal = run_crawl(&world, &p, &world.sites, &config);
                    let incognito = run_crawl(&world, &p, &world.sites, &incog);
                    (normal, incognito)
                })
                .collect()
        } else {
            // Six units (3 browsers x 2 modes) over one pool; the
            // incognito units override the campaign config per-unit.
            let units: Vec<FleetUnit> = browsers
                .iter()
                .flat_map(|name| {
                    let p = profile_by_name(name).expect("known browser");
                    [
                        FleetUnit::crawl(p.clone()),
                        FleetUnit::crawl(p).with_config(incog.clone()),
                    ]
                })
                .collect();
            let outputs =
                match fleet::run_units(&world, &world.sites, &config, &units, &fleet_options) {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("incognito fleet failed: {e}");
                        std::process::exit(1);
                    }
                };
            let mut crawls =
                outputs.into_iter().filter_map(panoptes::fleet::UnitOutput::into_crawl);
            browsers
                .iter()
                .map(|_| {
                    let normal = crawls.next().expect("normal crawl");
                    let incognito = crawls.next().expect("incognito crawl");
                    (normal, incognito)
                })
                .collect()
        };
        println!("{}", render::incognito_md(&pairs));
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create --csv directory");
        std::fs::write(format!("{dir}/fig2.csv"), render::fig2_csv(&results)).expect("fig2.csv");
        std::fs::write(format!("{dir}/fig3.csv"), render::fig3_csv(&results)).expect("fig3.csv");
        eprintln!("wrote {dir}/fig2.csv, {dir}/fig3.csv");
    }

    if want("fig5") || want("idle-dest") || json_path.is_some() || csv_dir.is_some() {
        eprintln!(
            "idle experiment (15 browsers x {}s, {effective} worker(s))...",
            scale.idle.as_secs()
        );
        let idle = if jobs == Some(1) {
            idle_all(&scale)
        } else {
            match idle_all_jobs(&scale, &fleet_options) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("idle fleet failed: {e}");
                    std::process::exit(1);
                }
            }
        };
        if want("fig5") {
            println!("{}", render::fig5(&idle));
        }
        if want("idle-dest") {
            println!("{}", render::idle_dest_md(&idle));
        }
        if let Some(path) = &json_path {
            std::fs::write(path, panoptes_analysis::summary::study_report(&results, &idle))
                .expect("write --json file");
            eprintln!("wrote {path}");
        }
        if let Some(dir) = &csv_dir {
            std::fs::write(
                format!("{dir}/fig5.csv"),
                render::fig5_csv(&idle, panoptes_simnet::SimDuration::from_secs(10)),
            )
            .expect("fig5.csv");
            eprintln!("wrote {dir}/fig5.csv");
        }
    }
    eprintln!("done.");
}
