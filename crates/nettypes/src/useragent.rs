//! User-Agent strings.
//!
//! The paper excludes the Android version and device model from its PII
//! analysis because *every* vendor reports them in the `User-Agent` header
//! for compatibility (§3.3). The builder here reproduces that baseline so
//! the PII analysis can apply the same exclusion.

/// Components of a mobile browser User-Agent string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserAgent {
    /// Browser product token, e.g. `Chrome`.
    pub product: String,
    /// Browser version, e.g. `113.0.5672.77`.
    pub version: String,
    /// Android version, e.g. `11`.
    pub android_version: String,
    /// Device model, e.g. `SM-T580`.
    pub device_model: String,
}

impl UserAgent {
    /// Builds the components for a browser on the paper's test device
    /// (Samsung SM-T580, Android 11).
    pub fn for_browser(product: &str, version: &str) -> UserAgent {
        UserAgent {
            product: product.to_string(),
            version: version.to_string(),
            android_version: "11".to_string(),
            device_model: "SM-T580".to_string(),
        }
    }

    /// Renders the Mozilla-compatible UA string.
    pub fn render(&self) -> String {
        format!(
            "Mozilla/5.0 (Linux; Android {}; {}) AppleWebKit/537.36 (KHTML, like Gecko) {}/{} Mobile Safari/537.36",
            self.android_version, self.device_model, self.product, self.version
        )
    }

    /// Extracts (android_version, device_model) from a rendered UA string;
    /// the "reported by default" fields the PII analysis must ignore.
    pub fn parse_default_fields(ua: &str) -> Option<(String, String)> {
        let inner = ua.split_once('(')?.1.split_once(')')?.0;
        let mut parts = inner.split(';').map(str::trim);
        let _linux = parts.next()?;
        let android = parts.next()?.strip_prefix("Android ")?.to_string();
        let model = parts.next()?.to_string();
        Some((android, model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_fields() {
        let ua = UserAgent::for_browser("Chrome", "113.0.5672.77").render();
        assert!(ua.contains("Android 11"));
        assert!(ua.contains("SM-T580"));
        assert!(ua.contains("Chrome/113.0.5672.77"));
    }

    #[test]
    fn parse_default_fields_roundtrip() {
        let ua = UserAgent::for_browser("Edge", "113.0.1774.38").render();
        let (android, model) = UserAgent::parse_default_fields(&ua).unwrap();
        assert_eq!(android, "11");
        assert_eq!(model, "SM-T580");
    }

    #[test]
    fn parse_rejects_non_ua() {
        assert!(UserAgent::parse_default_fields("curl/8.0").is_none());
    }
}
