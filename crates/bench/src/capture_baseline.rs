//! Frozen replica of the pre-refactor capture path — the *baseline*
//! side of `bench_capture`.
//!
//! Before the zero-allocation rework the capture path paid, per run and
//! per request, costs that the atoms / plan cache / route table removed:
//!
//! * **world generation per run** — every process (fleet worker, bench
//!   iteration, repeated study invocation) called `World::build` and
//!   regenerated the full site population from scratch;
//! * **O(hosts) install** — `World::install` looped `register_host` +
//!   `register_endpoint` over every host, two locked map inserts each,
//!   instead of swapping in one shared `Arc<RouteTable>`;
//! * **deep client-context clones** — `ClientTemplate::ctx` cloned the
//!   trust-root `Vec`, the pin list and the package `String` for every
//!   single request;
//! * **owned-`String` flow records** — the proxy's `record` allocated
//!   fresh `String`s for the package, host and every header name of
//!   every captured flow;
//! * **clone-on-read DNS log** — `Network::dns_log` copied the whole
//!   log `Vec` under its lock on every read;
//! * **deep request clone at the forward** — the proxy called
//!   `origin_fetch(ctx, req.clone())` so it could still record the
//!   request after moving it upstream: every header name and value, the
//!   body bytes and the URL were duplicated per captured flow;
//! * **per-handshake certificate minting** — `CertificateAuthority::
//!   issue` allocated a fresh subject `String` plus an issuer-id clone
//!   on *both* hops (forged leaf at the proxy, genuine leaf at the
//!   origin) of every request, with no per-host cache;
//! * **owned flow-context strings** — the two `FlowContext`s built per
//!   diverted request (client→proxy, proxy→origin) each carried an
//!   owned package `String` and SNI `String`;
//! * **assorted per-request churn** — the origin directory was probed
//!   with owned `(host, path)` tuple keys, the DNS zone probe
//!   lowercased the queried name, the wire-size accounting re-serialized
//!   the URL, and `Response::sized` zero-filled a fresh filler body per
//!   response.
//!
//! The helpers here reproduce those exact allocation patterns on top of
//! today's substrate so the benchmark's before/after comparison stays
//! runnable forever. Every clone in this module is deliberate: it *is*
//! the baseline (hence the `clone-ok` markers for
//! `tools/check_no_cloning.sh`).

use std::sync::{Arc, Mutex};

use panoptes_simnet::dns::DnsLogEntry;
use panoptes_simnet::net::Network;
use panoptes_simnet::tls::CaId;
use panoptes_web::origin::{Directory, OriginServer};
use panoptes_web::World;

/// Replica of the pre-atom `ClientTemplate`: owned `String` package,
/// plain `Vec` trust roots and pins (the old `TrustStore` / `PinPolicy`
/// held their lists inline, so cloning them copied every element).
pub struct OldClientTemplate {
    /// Kernel UID of the sending process.
    pub uid: u32,
    /// Package name as an owned `String`.
    pub package: String,
    /// Trusted roots as a plain `Vec` (deep-cloned per request).
    pub roots: Vec<CaId>,
    /// Pinned domains as owned `String`s (deep-cloned per request).
    pub pins: Vec<String>,
}

/// What the old `ClientTemplate::ctx` materialised per request.
pub struct OldClientSnapshot {
    /// Cloned package name.
    pub package: String,
    /// Cloned trust roots.
    pub roots: Vec<CaId>,
    /// Cloned pin list.
    pub pins: Vec<String>,
}

impl OldClientTemplate {
    /// The testbed browser identity the benchmark sends as.
    pub fn bench(uid: u32, package: &str) -> OldClientTemplate {
        OldClientTemplate {
            uid,
            package: package.to_string(),
            roots: vec![CaId::public_web_pki(), CaId::mitm()],
            pins: Vec::new(),
        }
    }

    /// Deep-clones the client identity, exactly like the old per-request
    /// `ctx()` did.
    pub fn deep_ctx(&self) -> OldClientSnapshot {
        OldClientSnapshot {
            package: self.package.clone(), // clone-ok: pre-refactor baseline
            roots: self.roots.clone(),     // clone-ok: pre-refactor baseline
            pins: self.pins.clone(),       // clone-ok: pre-refactor baseline
        }
    }
}

/// One captured exchange with every field as an owned allocation — the
/// shape the old `TransparentProxy::record` built per flow.
pub struct OldFlowRecord {
    /// Cloned package name.
    pub package: String,
    /// Cloned destination host.
    pub host: String,
    /// Re-serialized full URL.
    pub url: String,
    /// Header names and values, each an owned `String`.
    pub headers: Vec<(String, String)>,
    /// Response status.
    pub status: u16,
}

/// The old capture store: one `Vec` behind one lock, owned records.
#[derive(Default)]
pub struct OldFlowLog(Mutex<Vec<OldFlowRecord>>);

impl OldFlowLog {
    /// An empty log.
    pub fn new() -> OldFlowLog {
        OldFlowLog::default()
    }

    /// Records an exchange with the old path's per-flow allocations.
    pub fn record(
        &self,
        template: &OldClientTemplate,
        req: &panoptes_http::Request,
        status: u16,
    ) {
        let record = OldFlowRecord {
            package: template.package.clone(), // clone-ok: pre-refactor baseline
            host: req.url.host().to_string(),
            url: req.url.to_string_full(),
            headers: req
                .headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            status,
        };
        self.0.lock().expect("old flow log").push(record);
    }

    /// Number of recorded flows.
    pub fn len(&self) -> usize {
        self.0.lock().expect("old flow log").len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Installs `world` on `net` the pre-refactor way: rebuild the origin
/// handler, then two dynamic-map registrations per host.
pub fn install_old_style(net: &Network, world: &World) {
    let origin = Arc::new(OriginServer::new(Directory::from_sites(&world.sites)));
    for (host, ip) in world.hosts() {
        net.register_host(host, ip);
        net.register_endpoint(ip, origin.clone());
    }
}

/// Reads the DNS log the pre-refactor way: a full deep copy of every
/// entry per read (the old accessor cloned the `Vec` under its lock).
pub fn export_dns_log_cloning(net: &Network) -> Vec<DnsLogEntry> {
    net.dns_log().iter().cloned().collect() // clone-ok: pre-refactor baseline
}

/// Replays the request-side allocations the old path paid between
/// building a request and receiving its response.
pub fn replicate_request_overhead(req: &panoptes_http::Request) {
    use std::hint::black_box;
    let host = req.url.host();
    let path = req.url.path();
    // Building the request allocated an owned name and value String per
    // header field (both halves are interned atoms now), and cloning
    // the pre-parsed URL copied its hostname.
    for (n, v) in req.headers.iter() {
        black_box((n.to_string(), v.to_string()));
    }
    black_box(host.to_string());
    // The taint addon collected the stripped header values into an
    // owned Vec<String> before verifying the token.
    let stripped: Vec<String> =
        req.headers.get_all("x-panoptes-taint").map(str::to_string).collect();
    black_box(stripped.len());
    // The flow record stored the destination as a dotted-quad String.
    black_box("23.20.0.99".to_string());
    // The forward deep-cloned the request so `record` could still read
    // it after the origin consumed the original.
    let headers: Vec<(String, String)> = req
        .headers
        .iter()
        .map(|(n, v)| (n.to_string(), v.to_string()))
        .collect();
    black_box(headers.len());
    black_box(req.body.to_vec().len());
    black_box(req.url.to_string_full().len());
    // Wire-size accounting re-serialized the URL a second time.
    black_box(req.url.to_string_full().len());
    // Two flow contexts (client→proxy, proxy→origin), each with an owned
    // package and SNI string.
    black_box((host.to_string(), host.to_string()));
    // The DNS zone probe lowercased the queried name.
    black_box(host.to_ascii_lowercase().len());
    // Certificate minting on both hops: fresh subject + issuer-id clone,
    // no per-host cache.
    black_box((host.to_string(), "panoptes-mitm-ca".to_string()));
    black_box((host.to_string(), "public-web-pki".to_string()));
    // The origin directory was probed with owned (host, path) tuple keys
    // — once for the page lookup, once for the resource lookup.
    black_box((host.to_string(), path.to_string()));
    black_box((host.to_string(), path.to_string()));
}

/// Replays the response-side allocations the old path paid:
/// `Response::sized` zero-filled a fresh filler body per response, and
/// the origin re-derived every response header per request (an owned
/// name and value String each — content-length digits, content-type,
/// session cookie) instead of cloning a pre-rendered template.
pub fn replicate_response_overhead(resp: &panoptes_http::Response) {
    use std::hint::black_box;
    black_box(vec![b'.'; resp.body.len()].len());
    for (n, v) in resp.headers.iter() {
        black_box((n.to_string(), v.to_string()));
    }
    black_box(resp.body.len().to_string());
}
