//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--sites N] [--popular N] [--sensitive N] [--seed S]
//!       [--jobs N] [--overlap] [--population N] [--only SECTION]
//! ```
//!
//! Sections: `table1 fig2 fig3 fig4 table2 fig5 leaks dns incognito
//! sensitive transfers idle-dest listing1`. Default: everything at paper
//! scale (500 + 500 sites, 10-minute idle).
//!
//! `--sites N` grows the web beyond the paper's head set: sites past
//! `popular + sensitive` come from the generator's deterministic deep
//! tail (the head sites stay byte-identical, so `--sites 1000` at paper
//! scale IS the paper's exact web). Composes with `--jobs`/`--overlap`
//! like any other scale.
//!
//! `--jobs N` runs the browser campaigns across an N-worker fleet
//! (default: the machine's available parallelism; `--jobs 1` forces the
//! legacy sequential path). Every capture is analysed once by the fused
//! single-pass engine and all sections render from those analyses.
//! `--overlap` additionally removes the capture→analysis barrier: each
//! campaign streams to an analysis worker the moment it seals, running
//! crawl, idle and analysis on one worker pool. Output is byte-identical
//! for every N, with and without `--overlap` — results always come back
//! in profile order before rendering.
//!
//! `--population N` runs the study over an N-browser population: the
//! paper's 15 pinned browsers first, then deterministically sampled
//! variants from the behaviour-model space (seeded by `--seed`). The
//! default, `--population 15`, is exactly the paper set — output stays
//! byte-identical to a run without the flag.
//!
//! `--har DIR` additionally writes one HAR 1.2 file per browser campaign
//! into DIR, for inspection with off-the-shelf HAR tooling. `--json FILE`
//! writes the machine-readable study summary (every analysis result as
//! one JSON document).
//!
//! `--metrics` enables the panoptes-obs metrics layer and prints the
//! two-section run report (deterministic counts vs runtime timings) on
//! **stderr** after the run; `--trace-out FILE` enables the trace layer
//! and writes the span/event JSONL there. Both leave stdout — the
//! reproduction tables — byte-identical to a run without them.

use panoptes::campaign::run_crawl;
use panoptes::fleet::{self, FleetOptions, FleetUnit};
use panoptes_analysis::engine::{
    analyze_crawl, analyze_idle, analyze_study_jobs, AnalysisResources, CampaignAnalysis,
    IdleAnalysis, StudyAnalyses,
};
use panoptes_analysis::summary::study_report_from;
use panoptes_bench::experiments::{
    crawl_population, crawl_population_jobs, idle_population, idle_population_jobs,
    study_population_overlapped, Scale,
};
use panoptes_bench::render;
use panoptes_browsers::registry::profile_by_name;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut only: Option<String> = None;
    let mut har_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut jobs: Option<usize> = None;
    let mut overlap = false;
    let mut population: usize = 15;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut sites: Option<u32> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--sites" => {
                i += 1;
                sites = Some(args[i].parse().expect("--sites N"));
            }
            "--metrics" => metrics = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(args[i].clone());
            }
            "--jobs" => {
                i += 1;
                jobs = Some(args[i].parse().expect("--jobs N"));
            }
            "--overlap" => overlap = true,
            "--population" => {
                i += 1;
                population = args[i].parse().expect("--population N");
            }
            "--popular" => {
                i += 1;
                scale.popular = args[i].parse().expect("--popular N");
            }
            "--sensitive" => {
                i += 1;
                scale.sensitive = args[i].parse().expect("--sensitive N");
            }
            "--seed" => {
                i += 1;
                scale.seed = args[i].parse().expect("--seed S");
            }
            "--only" => {
                i += 1;
                only = Some(args[i].clone());
            }
            "--har" => {
                i += 1;
                har_dir = Some(args[i].clone());
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args[i].clone());
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--sites N] [--popular N] [--sensitive N] [--seed S] [--jobs N] [--overlap] [--population N] [--only SECTION] [--har DIR] [--json FILE] [--csv DIR] [--metrics] [--trace-out FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Applied after the loop so `--sites` composes with `--quick` /
    // `--popular` / `--sensitive` regardless of flag order.
    if let Some(n) = sites {
        scale = scale.with_sites(n);
    }
    let want = |section: &str| only.as_deref().is_none_or(|o| o == section);

    // Telemetry goes to stderr / the trace file only: stdout (the
    // reproduction tables) stays byte-identical with or without it.
    if metrics {
        panoptes_obs::enable(panoptes_obs::METRICS);
    }
    if trace_out.is_some() {
        panoptes_obs::enable(panoptes_obs::TRACE);
    }

    // The tail note appears only when a tail exists, so default runs
    // keep the byte-identical paper header.
    let tail_note =
        if scale.tail > 0 { format!(" + {} tail", scale.tail) } else { String::new() };
    eprintln!(
        "# Panoptes reproduction — {} popular + {} sensitive{} sites, seed {:#x}",
        scale.popular, scale.sensitive, tail_note, scale.seed
    );
    print!("{}", render::header_md(&scale));

    let fleet_options = match jobs {
        Some(n) => FleetOptions::with_progress(n),
        None => FleetOptions::default().verbose(),
    };
    let effective = fleet_options.effective_jobs(population);
    let res = AnalysisResources::standard();

    // In --overlap mode the idle campaigns run (and everything gets
    // analysed) on the same pool as the crawls, so their analyses are
    // ready before any rendering starts.
    let mut overlapped_idles: Option<Vec<IdleAnalysis>> = None;

    let (world, results, crawl_analyses) = if overlap {
        eprintln!(
            "overlapped study: crawl + idle + analysis, {population} browsers, {effective} worker(s)..."
        );
        match study_population_overlapped(&scale, &fleet_options, &res, population) {
            Ok((world, study)) => {
                overlapped_idles = Some(study.analyses.idles);
                (world, study.results.crawls, study.analyses.crawls)
            }
            Err(e) => {
                eprintln!("overlapped study failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        eprintln!("crawling {population} browsers ({effective} worker(s))...");
        let (world, results) = if jobs == Some(1) {
            // The legacy sequential path, kept reachable for A/B runs.
            crawl_population(&scale, population)
        } else {
            match crawl_population_jobs(&scale, &fleet_options, population) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("crawl fleet failed: {e}");
                    std::process::exit(1);
                }
            }
        };
        let analyses: Vec<CampaignAnalysis> = if jobs == Some(1) {
            results.iter().map(|r| analyze_crawl(r, &res)).collect()
        } else {
            match analyze_study_jobs(&results, &[], &res, &fleet_options) {
                Ok(s) => s.crawls,
                Err(e) => {
                    eprintln!("analysis fleet failed: {e}");
                    std::process::exit(1);
                }
            }
        };
        (world, results, analyses)
    };

    if let Some(dir) = &har_dir {
        std::fs::create_dir_all(dir).expect("create --har directory");
        for r in &results {
            let path = format!("{dir}/{}.har", r.profile.name.replace(' ', "_").to_lowercase());
            std::fs::write(&path, panoptes_mitm::har::store_to_har(&r.store))
                .expect("write har file");
            eprintln!("wrote {path}");
        }
    }

    // Sections print through the shared document builders (also used
    // by the study server) so the two output paths cannot drift.
    for (name, text) in render::crawl_sections(&results, &crawl_analyses) {
        if want(name) {
            print!("{text}");
        }
    }

    if want("incognito") {
        eprintln!("incognito re-crawls (Edge / Opera / UC International)...");
        let config = scale.config();
        let incog = config.clone().incognito();
        let browsers = ["Edge", "Opera", "UC International"];
        let raw_pairs: Vec<_> = if jobs == Some(1) {
            browsers
                .iter()
                .map(|name| {
                    let p = profile_by_name(name).expect("known browser");
                    let normal = run_crawl(&world, &p, &world.sites, &config);
                    let incognito = run_crawl(&world, &p, &world.sites, &incog);
                    (normal, incognito)
                })
                .collect()
        } else {
            // Six units (3 browsers x 2 modes) over one pool; the
            // incognito units override the campaign config per-unit.
            let units: Vec<FleetUnit> = browsers
                .iter()
                .flat_map(|name| {
                    let p = profile_by_name(name).expect("known browser");
                    [
                        FleetUnit::crawl(p.clone()),
                        FleetUnit::crawl(p).with_config(incog.clone()),
                    ]
                })
                .collect();
            let outputs =
                match fleet::run_units(&world, &world.sites, &config, &units, &fleet_options) {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("incognito fleet failed: {e}");
                        std::process::exit(1);
                    }
                };
            let mut crawls =
                outputs.into_iter().filter_map(panoptes::fleet::UnitOutput::into_crawl);
            browsers
                .iter()
                .map(|_| {
                    let normal = crawls.next().expect("normal crawl");
                    let incognito = crawls.next().expect("incognito crawl");
                    (normal, incognito)
                })
                .collect()
        };
        let pairs: Vec<_> = raw_pairs
            .iter()
            .map(|(n, i)| (analyze_crawl(n, &res), analyze_crawl(i, &res)))
            .collect();
        print!("{}", render::incognito_section(&pairs).1);
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create --csv directory");
        std::fs::write(format!("{dir}/fig2.csv"), render::fig2_csv(&crawl_analyses))
            .expect("fig2.csv");
        std::fs::write(format!("{dir}/fig3.csv"), render::fig3_csv(&crawl_analyses))
            .expect("fig3.csv");
        eprintln!("wrote {dir}/fig2.csv, {dir}/fig3.csv");
    }

    if want("fig5") || want("idle-dest") || json_path.is_some() || csv_dir.is_some() {
        let idle_analyses: Vec<IdleAnalysis> = match overlapped_idles.take() {
            Some(analyses) => analyses, // already captured and analysed
            None => {
                eprintln!(
                    "idle experiment ({population} browsers x {}s, {effective} worker(s))...",
                    scale.idle.as_secs()
                );
                let idle = if jobs == Some(1) {
                    idle_population(&scale, population)
                } else {
                    match idle_population_jobs(&scale, &fleet_options, population) {
                        Ok(out) => out,
                        Err(e) => {
                            eprintln!("idle fleet failed: {e}");
                            std::process::exit(1);
                        }
                    }
                };
                if jobs == Some(1) {
                    idle.iter().map(analyze_idle).collect()
                } else {
                    match analyze_study_jobs(&[], &idle, &res, &fleet_options) {
                        Ok(s) => s.idles,
                        Err(e) => {
                            eprintln!("idle analysis fleet failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
        };
        for (name, text) in render::idle_sections(&idle_analyses) {
            if want(name) {
                print!("{text}");
            }
        }
        if let Some(dir) = &csv_dir {
            std::fs::write(
                format!("{dir}/fig5.csv"),
                render::fig5_csv(&idle_analyses, panoptes_simnet::SimDuration::from_secs(10)),
            )
            .expect("fig5.csv");
            eprintln!("wrote {dir}/fig5.csv");
        }
        if let Some(path) = &json_path {
            let study = StudyAnalyses { crawls: crawl_analyses, idles: idle_analyses };
            std::fs::write(path, study_report_from(&study)).expect("write --json file");
            eprintln!("wrote {path}");
        }
    }
    if metrics {
        eprint!("{}", panoptes_obs::report::render(&panoptes_obs::metrics::snapshot()));
    }
    if let Some(path) = &trace_out {
        // All worker scopes have joined by now, so the export sees
        // every thread's ring.
        let jsonl = panoptes_obs::trace::export_jsonl();
        std::fs::write(path, &jsonl).expect("write --trace-out file");
        eprintln!("wrote {path} ({} trace events)", jsonl.lines().count());
    }
    eprintln!("done.");
}
