//! Property tests for the behaviour-model sampler (DESIGN.md §9):
//! determinism across runs and worker counts, collision-free naming
//! against the pinned paper set for arbitrary seeds, and the coherence
//! invariants every sampled model must satisfy — including the two the
//! issue calls out by name (incognito browsers never persist IDs
//! through a strictly-private channel set; pinned browsers never accept
//! MITM leaf certificates).

use proptest::prelude::*;

use panoptes_browsers::registry::pinned_models;
use panoptes_browsers::{BrowserSpace, IncognitoAxis};
use panoptes_simnet::tls::{
    handshake, CaId, CertificateAuthority, PinPolicy, TlsOutcome, TrustStore,
};

proptest! {
    /// Same seed ⇒ the byte-identical variant list, whether sampled in
    /// one pass or assembled from per-index chunks across 1..8 worker
    /// threads (the fleet's unit-parallel access pattern).
    #[test]
    fn same_seed_same_variants_across_jobs(seed in any::<u64>(), n in 1usize..48) {
        let sequential = BrowserSpace::sample(seed, n);
        prop_assert_eq!(&sequential, &BrowserSpace::sample(seed, n));
        for jobs in 1..=8usize {
            let chunked: Vec<_> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..jobs)
                    .map(|w| {
                        scope.spawn(move || {
                            (w..n)
                                .step_by(jobs)
                                .map(|i| (i, BrowserSpace::variant(seed, i)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut indexed: Vec<_> =
                    workers.into_iter().flat_map(|w| w.join().expect("worker")).collect();
                indexed.sort_by_key(|(i, _)| *i);
                indexed.into_iter().map(|(_, m)| m).collect()
            });
            prop_assert_eq!(&sequential, &chunked, "jobs={}", jobs);
        }
    }

    /// For any seed, sampled names never collide with each other or
    /// with a pinned paper browser (pinned names never carry the -NNN
    /// index suffix sampled names always end in).
    #[test]
    fn no_pinned_name_collisions(seed in any::<u64>()) {
        let pinned: Vec<String> = pinned_models().into_iter().map(|m| m.name).collect();
        let mut names: Vec<String> =
            BrowserSpace::sample(seed, 64).into_iter().map(|m| m.name).collect();
        for name in &names {
            prop_assert!(!pinned.contains(name), "sampled {} shadows a paper browser", name);
        }
        let total = names.len();
        names.sort();
        names.dedup();
        prop_assert_eq!(names.len(), total);
    }

    /// Every sampled model satisfies the full coherence contract.
    #[test]
    fn sampled_models_are_coherent(seed in any::<u64>(), index in 0usize..4096) {
        let model = BrowserSpace::variant(seed, index);
        prop_assert_eq!(model.coherence_errors(), Vec::<String>::new());
    }

    /// A sampled browser whose native calls all respect incognito can
    /// never carry a persistent identifier — there would be no channel
    /// left to persist it through.
    #[test]
    fn strictly_private_variants_never_persist_ids(seed in any::<u64>(), index in 0usize..4096) {
        let model = BrowserSpace::variant(seed, index);
        let strictly_private = model.incognito == IncognitoAxis::Offered
            && model.all_calls().all(|c| c.respects_incognito);
        if strictly_private {
            prop_assert!(
                model.persistent_key().is_none(),
                "{} persists an ID with no incognito-surviving channel",
                model.name
            );
        }
    }

    /// A sampled browser that pins a domain must reject the MITM
    /// proxy's substituted leaf for that domain (the §2.2 pinned-opaque
    /// flows), while still completing direct handshakes.
    #[test]
    fn pinned_variants_reject_mitm_leaves(seed in any::<u64>(), index in 0usize..4096) {
        let model = BrowserSpace::variant(seed, index);
        let profile = model.materialize();
        let mut trust = TrustStore::system();
        trust.install(CaId::mitm());
        let pinned: Vec<&str> = profile.pinned_domains.iter().map(String::as_str).collect();
        let pins = PinPolicy::pin(&pinned);
        let mitm = CertificateAuthority::new(CaId::mitm());
        let origin = CertificateAuthority::new(CaId::public_web_pki());
        for domain in &profile.pinned_domains {
            let host = format!("update.{domain}");
            prop_assert_eq!(
                handshake(&trust, &pins, &host, &mitm.issue(&host), true),
                TlsOutcome::PinnedRejected,
                "{} accepted a MITM leaf for pinned {}", profile.name, host
            );
            prop_assert_eq!(
                handshake(&trust, &pins, &host, &origin.issue(&host), false),
                TlsOutcome::DirectOk,
                "{} broke direct TLS to its own pinned {}", profile.name, host
            );
        }
    }
}

/// The pinned paper browsers satisfy the same cert-pinning property as
/// the sampled ones (Samsung is the paper's pinning browser).
#[test]
fn pinned_paper_browsers_reject_mitm_leaves() {
    let mut trust = TrustStore::system();
    trust.install(CaId::mitm());
    let mitm = CertificateAuthority::new(CaId::mitm());
    let mut saw_pinning_browser = false;
    for model in pinned_models() {
        let profile = model.materialize();
        let pinned: Vec<&str> = profile.pinned_domains.iter().map(String::as_str).collect();
        let pins = PinPolicy::pin(&pinned);
        for domain in &profile.pinned_domains {
            saw_pinning_browser = true;
            assert_eq!(
                handshake(&trust, &pins, domain, &mitm.issue(domain), true),
                TlsOutcome::PinnedRejected,
                "{} accepted a MITM leaf for pinned {domain}",
                profile.name
            );
        }
    }
    assert!(saw_pinning_browser, "at least one paper browser pins (Samsung)");
}
