//! Yandex 23.3.7.24 — the paper's headline case (§3.2): on *every* page
//! visit it sends the full visited URL, Base64-encoded, to
//! `sba.yandex.net`, plus the visited hostname together with a persistent
//! identifier to `api.browser.yandex.ru` — so the vendor can track the
//! user across cookie wipes, IP changes, Tor or VPNs. No incognito mode
//! exists (footnote 5). Fig 2 ratio ≈ 0.39; Fig 3 ≈ 16% ad domains;
//! servers in Russia (§3.4).

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::{DohProvider, ResolverKind};

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, Payload, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("browser-updates.yandex.net", "/check"),
    NativeCall::ping("zen.yandex.ru", "/api/v3/launcher/export"),
    NativeCall::ping("favicon.yandex.net", "/favicon"),
    NativeCall::ping("suggest.yandex.net", "/suggest-ff.cgi"),
    NativeCall::ping("translate.yandex.net", "/api/v1/langs"),
    NativeCall::ping("sync.yandex.net", "/v1/sync"),
    NativeCall::ping("push.yandex.ru", "/v2/register"),
    NativeCall::ping("clck.yandex.ru", "/click"),
    NativeCall::ping("alice.yandex.net", "/v1/config"),
    NativeCall::ping("weather.yandex.ru", "/v2/informer"),
    NativeCall::ping("afisha.yandex.ru", "/api/events"),
    NativeCall::ping("market.yandex.ru", "/api/teaser"),
    NativeCall::ping("disk.yandex.net", "/v1/status"),
    NativeCall::ping("maps.yandex.ru", "/api/tiles"),
    NativeCall::ping("news.yandex.ru", "/api/v2/rubric"),
    NativeCall::ping("music.yandex.ru", "/api/landing"),
    NativeCall::ping("taxi.yandex.ru", "/api/promo"),
    NativeCall::ping("an.yandex.ru", "/meta"),
    NativeCall::ping("googleads.g.doubleclick.net", "/pagead/id"),
    NativeCall::ping("t.appsflyer.com", "/api/v1/android"),
];

const PER_VISIT: &[NativeCall] = &[
    // The Base64-encoded full URL — path, query parameters and all.
    NativeCall {
        host: "sba.yandex.net",
        path: "/safety/check",
        method: Method::Get,
        payload: Payload::FullUrlBase64 { param: "url" },
        body_pad: 0,
        count: 1,
        respects_incognito: false,
    },
    // The hostname + persistent identifier pair.
    NativeCall {
        host: "api.browser.yandex.ru",
        path: "/v1/history",
        method: Method::Get,
        payload: Payload::HostnamePlusId { host_param: "host", id_param: "yandexuid" },
        body_pad: 0,
        count: 1,
        respects_incognito: false,
    },
    // Metrica telemetry with the Table 2 fields.
    NativeCall {
        host: "mc.yandex.ru",
        path: "/watch/browser",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 100,
        count: 2,
        respects_incognito: false,
    },
    NativeCall::ping("zen.yandex.ru", "/api/v3/next"),
];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("zen.yandex.ru", "/api/v3/launcher/export"),
    NativeCall::ping("favicon.yandex.net", "/favicon"),
    NativeCall::ping("suggest.yandex.net", "/suggest-ff.cgi"),
    NativeCall::ping("weather.yandex.ru", "/v2/informer"),
    NativeCall::ping("news.yandex.ru", "/api/v2/rubric"),
    NativeCall::ping("market.yandex.ru", "/api/teaser"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    (45, NativeCall {
        host: "mc.yandex.ru",
        path: "/watch/browser",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 100,
        count: 1,
        respects_incognito: false,
    }),
    (60, NativeCall::ping("zen.yandex.ru", "/api/v3/next")),
    (240, NativeCall::ping("browser-updates.yandex.net", "/check")),
    (180, NativeCall::ping("an.yandex.ru", "/meta")),
];

const PII: &[PiiField] = &[
    PiiField::DeviceType,
    PiiField::DeviceManufacturer,
    PiiField::Resolution,
    PiiField::Dpi,
    PiiField::Locale,
    PiiField::NetworkType,
];

/// Builds the Yandex profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "Yandex",
        version: "23.3.7.24",
        package: "com.yandex.browser",
        instrumentation: Instrumentation::Cdp,
        supports_incognito: false,
        resolver: ResolverKind::Doh(DohProvider::Google),
        adblock: false,
        attempts_h3: true,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: Some("yandexuid"),
        injects_js_collector: None,
        honors_telemetry_consent: false,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
