//! End-to-end browser behaviour against a small simulated world and a
//! live MITM proxy: the full §2 pipeline below the campaign layer.

use std::sync::Arc;

use panoptes_browsers::browser::{Browser, BrowsingMode, Env};
use panoptes_browsers::registry::profile_by_name;
use panoptes_device::Device;
use panoptes_http::codec::b64_decode_url;
use panoptes_instrument::tap::TaintInjector;
use panoptes_mitm::{FlowClass, FlowStore, TaintAddon, TransparentProxy, TAINT_HEADER};
use panoptes_simnet::clock::{SimClock, SimDuration};
use panoptes_simnet::tls::{CaId, CertificateAuthority};
use panoptes_simnet::Network;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

const PROXY_PORT: u16 = 8080;
const TOKEN: &str = "campaign-token-1";

struct Rig {
    net: Network,
    store: Arc<FlowStore>,
    world: World,
    device: Device,
    clock: SimClock,
}

fn rig() -> Rig {
    let device = Device::testbed();
    let net = Network::new(
        CertificateAuthority::new(CaId::public_web_pki()),
        device.local_ip(),
    );
    let world = World::build(&GeneratorConfig { popular: 6, sensitive: 4, ..Default::default() });
    world.install(&net);

    let store = Arc::new(FlowStore::new());
    let mut proxy = TransparentProxy::new(store.clone());
    proxy.install_addon(Box::new(TaintAddon::new(TOKEN)));
    net.register_proxy(PROXY_PORT, Arc::new(proxy), TransparentProxy::certificate_authority());

    Rig { net, store, world, device, clock: SimClock::new() }
}

fn launch(rig: &mut Rig, name: &str, mode: BrowsingMode) -> Browser {
    let profile = profile_by_name(name).unwrap();
    let uid = rig.device.packages.install(&profile.package);
    rig.net.with_filter(|f| f.install_panoptes_rules(uid, PROXY_PORT));
    Browser::launch(profile, uid, 42, mode)
}

fn env<'a>(rig: &'a mut Rig, package: &str) -> Env<'a> {
    let data = rig.device.packages.data_mut(package).unwrap();
    Env {
        net: &rig.net,
        clock: &mut rig.clock,
        props: &rig.device.props,
        data,
        tap: Some(Arc::new(TaintInjector::new(TAINT_HEADER, TOKEN))),
    }
}

#[test]
fn chrome_visit_splits_engine_and_native() {
    let mut rig = rig();
    let mut chrome = launch(&mut rig, "Chrome", BrowsingMode::Normal);
    let site = rig.world.sites[0].clone();
    let outcome = {
        let mut e = env(&mut rig, "com.android.chrome");
        chrome.startup(&mut e);
        chrome.visit(&mut e, &site)
    };

    assert!(outcome.engine.sent as usize >= site.page.request_count() - 2);
    let engine = rig.store.engine_flows();
    let native = rig.store.native_flows();
    assert!(!engine.is_empty(), "engine flows captured");
    assert!(!native.is_empty(), "native flows captured (startup + safebrowsing)");
    // Engine flows lost their taint before hitting upstream and are
    // recorded without it.
    for f in &engine {
        assert!(f.header(TAINT_HEADER).is_none());
    }
    // Chrome's native flows leak nothing about the visit.
    for f in &native {
        assert!(!f.url.contains(site.domain.as_str()), "chrome native leaked: {}", f.url);
    }
}

#[test]
fn yandex_leaks_full_url_and_persistent_id() {
    let mut rig = rig();
    let mut yandex = launch(&mut rig, "Yandex", BrowsingMode::Normal);
    let site = rig.world.sites[1].clone();
    {
        let mut e = env(&mut rig, "com.yandex.browser");
        yandex.visit(&mut e, &site);
    }
    let native = rig.store.native_flows();
    let sba: Vec<_> = native.iter().filter(|f| f.host == "sba.yandex.net").collect();
    assert_eq!(sba.len(), 1);
    let url = panoptes_http::Url::parse(&sba[0].url).unwrap();
    let encoded = url.query_param("url").unwrap();
    let decoded = String::from_utf8(b64_decode_url(encoded).unwrap()).unwrap();
    assert_eq!(decoded, site.url_string(), "full URL recovered from Base64 param");

    let api: Vec<_> = native.iter().filter(|f| f.host == "api.browser.yandex.ru").collect();
    assert_eq!(api.len(), 1);
    let url = panoptes_http::Url::parse(&api[0].url).unwrap();
    assert_eq!(url.query_param("host"), Some(site.host.as_str()));
    assert_eq!(url.query_param("yandexuid").unwrap().len(), 64);
}

#[test]
fn yandex_id_is_stable_across_visits_and_reset_clears_it() {
    let mut rig = rig();
    let mut yandex = launch(&mut rig, "Yandex", BrowsingMode::Normal);
    let (s0, s1) = (rig.world.sites[0].clone(), rig.world.sites[1].clone());
    {
        let mut e = env(&mut rig, "com.yandex.browser");
        yandex.visit(&mut e, &s0);
        yandex.visit(&mut e, &s1);
    }
    let ids: Vec<String> = rig
        .store
        .native_flows()
        .iter()
        .filter(|f| f.host == "api.browser.yandex.ru")
        .map(|f| {
            panoptes_http::Url::parse(&f.url).unwrap().query_param("yandexuid").unwrap().to_string()
        })
        .collect();
    assert_eq!(ids.len(), 2);
    assert_eq!(ids[0], ids[1], "persistent across visits (and cookie wipes)");

    rig.device.packages.factory_reset("com.yandex.browser");
    assert!(rig
        .device
        .packages
        .app("com.yandex.browser")
        .unwrap()
        .data
        .is_factory_fresh());
}

#[test]
fn uc_exfiltrates_via_tainted_js_injection() {
    let mut rig = rig();
    let mut uc = launch(&mut rig, "UC International", BrowsingMode::Normal);
    let site = rig.world.sites[2].clone();
    {
        let mut e = env(&mut rig, "com.UCMobile.intl");
        uc.visit(&mut e, &site);
    }
    // The collector flow exists, carries the URL + city + ISP — but is
    // classified ENGINE because the injected JS runs in the page.
    let collectors: Vec<_> = rig
        .store
        .all()
        .into_iter()
        .filter(|f| f.host == "collect.ucweb.com")
        .collect();
    assert_eq!(collectors.len(), 1);
    assert_eq!(collectors[0].class, FlowClass::Engine);
    let url = panoptes_http::Url::parse(&collectors[0].url).unwrap();
    assert!(url.query_param("url").unwrap().contains(&site.domain));
    assert_eq!(url.query_param("city"), Some("Heraklion"));
    assert_eq!(url.query_param("isp"), Some("FORTHnet"));
    // Its *native* traffic carries no URL.
    for f in rig.store.native_flows() {
        assert!(!f.url.contains(site.domain.as_str()));
    }
}

#[test]
fn edge_keeps_reporting_domains_in_incognito() {
    let mut rig = rig();
    let mut edge = launch(&mut rig, "Edge", BrowsingMode::Incognito);
    let site = rig.world.sites[3].clone();
    {
        let mut e = env(&mut rig, "com.microsoft.emmx");
        edge.visit(&mut e, &site);
    }
    let bing: Vec<_> = rig
        .store
        .native_flows()
        .into_iter()
        .filter(|f| f.host == "api.bing.com")
        .collect();
    assert_eq!(bing.len(), 1, "Edge reports the visited domain even in incognito");
    assert!(bing[0].url.contains(&site.domain));
}

#[test]
fn coccoc_blocks_ads_in_engine_but_phones_home() {
    let mut rig = rig();
    let mut coccoc = launch(&mut rig, "CocCoc", BrowsingMode::Normal);
    // Pick a popular site with ad embeds.
    let site = rig
        .world
        .sites
        .iter()
        .find(|s| s.page.resources.iter().any(|r| r.kind == panoptes_web::ResourceKind::Ad))
        .unwrap()
        .clone();
    let outcome = {
        let mut e = env(&mut rig, "com.coccoc.trinhduyet");
        coccoc.visit(&mut e, &site)
    };
    assert!(outcome.engine.adblocked > 0, "easylist blocked engine-side ads");
    // Engine flows contain no ad-network hosts.
    let list = panoptes_blocklist::data::steven_black_excerpt();
    for f in rig.store.engine_flows() {
        assert!(!list.contains(&f.host), "{} slipped through the blocker", f.host);
    }
    // ... while native telemetry still flows to the vendor.
    assert!(rig
        .store
        .native_flows()
        .iter()
        .any(|f| f.host == "log.coccoc.com"));
}

#[test]
fn quic_fallback_happens_once_per_host() {
    let mut rig = rig();
    let mut chrome = launch(&mut rig, "Chrome", BrowsingMode::Normal);
    let site = rig.world.sites[0].clone();
    let outcome = {
        let mut e = env(&mut rig, "com.android.chrome");
        chrome.visit(&mut e, &site)
    };
    assert!(outcome.engine.h3_fallbacks > 0, "h3 attempts were dropped and retried");
    assert!(rig.net.stats().dropped as u32 >= outcome.engine.h3_fallbacks);
}

#[test]
fn samsung_pinned_update_flow_is_opaque() {
    let mut rig = rig();
    let mut samsung = launch(&mut rig, "Samsung", BrowsingMode::Normal);
    {
        let mut e = env(&mut rig, "com.sec.android.app.sbrowser");
        samsung.startup(&mut e);
    }
    let pinned = rig.store.by_class(FlowClass::PinnedOpaque);
    assert_eq!(pinned.len(), 1);
    assert_eq!(pinned[0].host, "su.samsungdm.com");
    assert_eq!(pinned[0].status, 0);
}

#[test]
fn doh_browsers_query_over_https_stub_browsers_do_not() {
    let mut rig = rig();
    let mut edge = launch(&mut rig, "Edge", BrowsingMode::Normal);
    let site = rig.world.sites[0].clone();
    {
        let mut e = env(&mut rig, "com.microsoft.emmx");
        edge.visit(&mut e, &site);
    }
    let doh_flows = rig
        .store
        .native_flows()
        .into_iter()
        .filter(|f| f.host == "cloudflare-dns.com")
        .count();
    assert!(doh_flows > 0, "Edge resolves over DoH — visible as native HTTPS");

    let mut rig2 = self::rig();
    let mut chrome = launch(&mut rig2, "Chrome", BrowsingMode::Normal);
    let site2 = rig2.world.sites[0].clone();
    {
        let mut e = env(&mut rig2, "com.android.chrome");
        chrome.visit(&mut e, &site2);
    }
    let doh_flows2 = rig2
        .store
        .all()
        .into_iter()
        .filter(|f| f.host.contains("dns"))
        .count();
    assert_eq!(doh_flows2, 0, "Chrome uses the local stub");
    assert!(!rig2.net.dns_log().is_empty(), "stub queries logged");
}

#[test]
fn idle_run_produces_time_stamped_chatter() {
    let mut rig = rig();
    let mut opera = launch(&mut rig, "Opera", BrowsingMode::Normal);
    let sent = {
        let mut e = env(&mut rig, "com.opera.browser");
        opera.idle(&mut e, SimDuration::from_secs(600))
    };
    assert!(sent > 50, "Opera's news feed makes it chatty, got {sent}");
    let natives = rig.store.native_flows();
    let news = natives.iter().filter(|f| f.host == "news.opera-api.com").count();
    assert!(news >= 40, "linear feed refreshes, got {news}");
    // Timestamps span the 10 minutes.
    let max_t = natives.iter().map(|f| f.time_us).max().unwrap();
    assert!(max_t >= 590_000_000, "events reach the end of the window");
}

#[test]
fn incognito_requires_support() {
    let profile = profile_by_name("Yandex").unwrap();
    let result = std::panic::catch_unwind(|| {
        Browser::launch(profile, 10000, 1, BrowsingMode::Incognito)
    });
    assert!(result.is_err(), "Yandex has no incognito mode (footnote 5)");
}
