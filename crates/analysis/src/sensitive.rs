//! §3.2's sensitive-content check: the history-leaking browsers
//! "continue to leak the entire URL the user visits" even for sites in
//! Google Ads' blocked sensitive categories (religion, sexuality,
//! politics, health) — no local filtering at all.

use std::collections::BTreeSet;

use panoptes::campaign::CampaignResult;

use crate::engine::CrawlContext;
use crate::facts::{capture_facts, FlowView};

/// One browser's sensitive-leak row.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitiveRow {
    /// Browser name.
    pub browser: String,
    /// Sensitive URLs visited in the campaign.
    pub sensitive_visits: usize,
    /// How many of them were observed leaking in full (path included).
    pub sensitive_urls_leaked: usize,
    /// Example leaked URL (the smoking gun for the report).
    pub example: Option<String>,
}

/// Mergeable accumulator form of the §3.2 sensitive-content detector:
/// the leaked-URL set is an order-insensitive union, so any sharding of
/// the capture merges back to the sequential row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SensitivePartial {
    leaked: BTreeSet<String>,
}

impl SensitivePartial {
    /// Folds one captured flow into the accumulator.
    pub fn observe(&mut self, view: &FlowView<'_>, ctx: &CrawlContext<'_>) {
        if ctx.visited_domains.contains(view.registrable_domain()) {
            return; // first-party traffic is not a leak
        }
        for (_, decoded_values) in view.decoded_observations() {
            self.scan_values(decoded_values, ctx);
        }
    }

    /// Tests one observation's decodings against the sensitive ground
    /// truth. Shared between [`observe`](Self::observe) and the fused
    /// engine pass.
    pub(crate) fn scan_values(&mut self, decoded_values: &[String], ctx: &CrawlContext<'_>) {
        for decoded in decoded_values {
            // The ground truth holds full visit URLs, which always
            // contain a `/`; skip the set hash for values that cannot
            // match.
            if decoded.contains('/')
                && ctx.sensitive_urls.contains(decoded.as_str())
                && !self.leaked.contains(decoded.as_str())
            {
                self.leaked.insert(decoded.clone());
            }
        }
    }

    /// Absorbs a later shard's accumulator.
    pub fn merge(&mut self, other: SensitivePartial) {
        self.leaked.extend(other.leaked);
    }

    /// Finalises the browser's sensitive-leak row.
    pub fn finish(self, browser: &str, sensitive_visits: usize) -> SensitiveRow {
        let example = self.leaked.iter().next().cloned();
        SensitiveRow {
            browser: browser.to_string(),
            sensitive_visits,
            sensitive_urls_leaked: self.leaked.len(),
            example,
        }
    }
}

/// Checks whether sensitive visits leak in full detail.
pub fn sensitive_row(result: &CampaignResult) -> SensitiveRow {
    let ctx = CrawlContext::of(result);
    let mut partial = SensitivePartial::default();
    let snap = result.store.snapshot(); // multipass-ok: legacy standalone detector
    let facts = capture_facts(&snap);
    for view in facts.views(snap.all()) {
        partial.observe(&view, &ctx);
    }
    partial.finish(&result.profile.name, ctx.sensitive_urls.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn full_url_leakers_spare_nothing_sensitive() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 8, ..Default::default() });
        let config = CampaignConfig::default();
        for name in ["Yandex", "QQ", "UC International"] {
            let result =
                run_crawl(&world, &profile_by_name(name).unwrap(), &world.sites, &config);
            let row = sensitive_row(&result);
            assert_eq!(row.sensitive_visits, 8, "{name}");
            assert_eq!(
                row.sensitive_urls_leaked, 8,
                "{name}: no local filtering of sensitive categories"
            );
            let example = row.example.unwrap();
            assert!(
                example.contains("/health/")
                    || example.contains("/religion/")
                    || example.contains("/sexuality/")
                    || example.contains("/society/"),
                "{example}"
            );
        }
    }

    #[test]
    fn domain_only_leakers_do_not_leak_full_sensitive_urls() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 6, ..Default::default() });
        let result = run_crawl(
            &world,
            &profile_by_name("Edge").unwrap(),
            &world.sites,
            &CampaignConfig::default(),
        );
        let row = sensitive_row(&result);
        assert_eq!(row.sensitive_urls_leaked, 0, "Edge reports domains, not full URLs");
    }
}
