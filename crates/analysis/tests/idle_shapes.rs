//! Figure 5's shape claim, checked across the whole dataset: "the
//! activity of most browsers grows exponentially within the first minute
//! ... before they reach a relative plateau", with Opera's News feed as
//! the named linear exception.

use panoptes::config::CampaignConfig;
use panoptes::idle::run_idle;
use panoptes_analysis::idle::timeline;
use panoptes_browsers::registry::all_profiles;
use panoptes_simnet::clock::SimDuration;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

#[test]
fn most_browsers_front_load_opera_is_linear() {
    let world = World::build(&GeneratorConfig { popular: 3, sensitive: 2, ..Default::default() });
    let config = CampaignConfig::default();
    // A uniform (linear) emitter puts 60/600 = 10% of its requests in
    // the first minute.
    let uniform = 0.10;

    let mut front_loaded = 0;
    let mut opera_share = None;
    for profile in all_profiles() {
        let result = run_idle(&world, &profile, SimDuration::from_secs(600), &config);
        let tl = timeline(&result, SimDuration::from_secs(10));
        assert!(tl.total() > 0, "{} sent nothing while idle", profile.name);
        // Cumulative series is monotone by construction.
        for w in tl.cumulative.windows(2) {
            assert!(w[1].1 >= w[0].1, "{}", profile.name);
        }
        let share = tl.first_minute_share();
        if profile.name == "Opera" {
            opera_share = Some(share);
        } else if share > uniform * 1.5 {
            front_loaded += 1;
        }
    }
    // "Most browsers": at least 12 of the other 14 are clearly
    // front-loaded (burst then plateau).
    assert!(front_loaded >= 12, "only {front_loaded} browsers front-loaded");
    // Opera is near-uniform — the linear curve.
    let opera = opera_share.expect("opera measured");
    assert!(
        opera < uniform * 1.5,
        "Opera should be linear, got first-minute share {opera:.2}"
    );
}

#[test]
fn idle_timelines_are_deterministic() {
    let world = World::build(&GeneratorConfig { popular: 2, sensitive: 1, ..Default::default() });
    let config = CampaignConfig::default();
    let profile = panoptes_browsers::registry::profile_by_name("Edge").unwrap();
    let a = run_idle(&world, &profile, SimDuration::from_secs(300), &config);
    let b = run_idle(&world, &profile, SimDuration::from_secs(300), &config);
    assert_eq!(
        timeline(&a, SimDuration::from_secs(10)),
        timeline(&b, SimDuration::from_secs(10))
    );
}
