//! Property-based tests for the blocklist engines.

use proptest::prelude::*;

use panoptes_blocklist::{FilterList, HostsList};

proptest! {
    #[test]
    fn hosts_contains_is_subdomain_closed(
        entry in "[a-z]{1,8}\\.[a-z]{2,3}",
        label in "[a-z]{1,8}",
        deeper in "[a-z]{1,8}",
    ) {
        let mut list = HostsList::new();
        list.add(&entry);
        let sub = format!("{label}.{entry}");
        let deep = format!("{deeper}.{label}.{entry}");
        let fake = format!("{label}{entry}");
        prop_assert!(list.contains(&entry));
        prop_assert!(list.contains(&sub));
        prop_assert!(list.contains(&deep));
        // Superstring hosts are NOT matched.
        prop_assert!(!list.contains(&fake));
    }

    #[test]
    fn hosts_parse_never_panics(text in "\\PC{0,500}") {
        let _ = HostsList::parse(&text);
    }

    #[test]
    fn filterlist_parse_never_panics(text in "\\PC{0,500}") {
        let _ = FilterList::parse(&text);
    }

    #[test]
    fn domain_anchor_semantics(
        domain in "[a-z]{1,8}\\.(com|net|org)",
        sub in "[a-z]{1,8}",
        path in "[a-z0-9/]{0,20}",
    ) {
        let list = FilterList::parse(&format!("||{domain}^"));
        let url = format!("https://{domain}/{path}");
        prop_assert!(list.should_block(&domain, &url));
        let sub_host = format!("{sub}.{domain}");
        let sub_url = format!("https://{sub_host}/{path}");
        prop_assert!(list.should_block(&sub_host, &sub_url));
        // A look-alike superstring must not be blocked.
        let fake = format!("{sub}{domain}");
        let fake_url = format!("https://{fake}/");
        prop_assert!(!list.should_block(&fake, &fake_url));
    }

    #[test]
    fn exception_always_wins(domain in "[a-z]{1,8}\\.com") {
        let list = FilterList::parse(&format!("||{domain}^\n@@||{domain}^"));
        let url = format!("https://{domain}/x");
        prop_assert!(!list.should_block(&domain, &url));
    }
}

/// One random filterlist line covering every rule form the parser
/// understands: anchors, bare tokens, exceptions, options, comments.
fn arb_rule_line() -> impl Strategy<Value = String> {
    let domain = "[a-z]{1,6}\\.(com|net|org)";
    let token = "[a-z/^.=-]{1,8}";
    prop_oneof![
        domain.prop_map(|d| format!("||{d}^")),
        domain.prop_map(|d| format!("||{d}")),
        domain.prop_map(|d| format!("@@||{d}^")),
        domain.prop_map(|d| format!("||{d}^$third-party")),
        token.prop_map(|t| t.to_string()),
        token.prop_map(|t| format!("@@{t}")),
        token.prop_map(|t| format!("{t}$script")),
        Just("! a comment".to_string()),
        Just("||^".to_string()),
        Just("^".to_string()),
    ]
}

proptest! {
    /// The tentpole equivalence: the indexed engine and the reference
    /// linear scan agree on every (rules, host, url) — including probes
    /// built from the list's own domains so block/exception paths are
    /// actually exercised, not just misses.
    #[test]
    fn indexed_engine_matches_linear_scan(
        lines in proptest::collection::vec(arb_rule_line(), 0..40),
        sub in "[a-z]{1,6}",
        host in "[a-z]{1,8}\\.(com|net|org)",
        path in "[a-zA-Z0-9/^.=-]{0,24}",
    ) {
        let list = FilterList::parse(&lines.join("\n"));

        let mut probes: Vec<(String, String)> = Vec::new();
        probes.push((host.clone(), format!("https://{host}/{path}")));
        // Recombine the generated rules into hosts that should hit.
        for line in &lines {
            let body = line.trim_start_matches("@@");
            if let Some(domain) =
                body.strip_prefix("||").map(|d| d.split('$').next().unwrap().trim_end_matches('^'))
            {
                if !domain.is_empty() {
                    probes.push((domain.to_string(), format!("https://{domain}/{path}")));
                    let subbed = format!("{sub}.{domain}");
                    probes.push((subbed.clone(), format!("https://{subbed}/{path}")));
                    let fake = format!("{sub}{domain}");
                    probes.push((fake.clone(), format!("https://{fake}/{path}")));
                }
            } else if !body.starts_with('!') {
                let token = body.split('$').next().unwrap();
                probes.push((host.clone(), format!("https://{host}/{token}/{path}")));
            }
        }

        for (h, u) in &probes {
            let reference = list.should_block_linear(h, u);
            prop_assert_eq!(
                list.should_block(h, u),
                reference,
                "compiled engine diverged on host={} url={} rules={:?}", h, u, lines
            );
            prop_assert_eq!(
                list.should_block_indexed(h, u),
                reference,
                "indexed engine diverged on host={} url={} rules={:?}", h, u, lines
            );
        }
    }

    /// Hostile-input equivalence: arbitrary rule sets against URLs with
    /// mixed case, separators, percent-escapes, repeated fragments and
    /// non-ASCII — the compiled DFA (which lowercases on the fly and
    /// walks raw bytes) must still decide exactly like the reference
    /// scan, and so must the PR-2 indexed engine.
    #[test]
    fn engines_agree_on_hostile_urls(
        lines in proptest::collection::vec(arb_rule_line(), 0..40),
        host in "[a-zA-Z0-9.-]{1,24}",
        url in "[ -~éß°\u{2603}]{0,60}",
        stutter in "[a-z^/.]{0,6}",
    ) {
        let list = FilterList::parse(&lines.join("\n"));
        // Repeat a fragment so partial-match resets inside the DFA are
        // exercised (aaab-style prefixes that almost match).
        let url = format!("https://{host}/{url}{stutter}{stutter}{url}");
        let reference = list.should_block_linear(&host, &url);
        prop_assert_eq!(
            list.should_block(&host, &url),
            reference,
            "compiled engine diverged on host={} url={} rules={:?}", host, url, lines
        );
        prop_assert_eq!(
            list.should_block_indexed(&host, &url),
            reference,
            "indexed engine diverged on host={} url={} rules={:?}", host, url, lines
        );
    }

    /// Dedupe is pure: a list parsed from duplicated text decides
    /// exactly like the original.
    #[test]
    fn duplicated_text_decides_identically(
        lines in proptest::collection::vec(arb_rule_line(), 0..20),
        host in "[a-z]{1,8}\\.(com|net|org)",
        path in "[a-z0-9/]{0,16}",
    ) {
        let once = FilterList::parse(&lines.join("\n"));
        let doubled = FilterList::parse(&format!("{}\n{}", lines.join("\n"), lines.join("\n")));
        prop_assert_eq!(once.len(), doubled.len(), "dedupe removes the copies");
        let url = format!("https://{host}/{path}");
        prop_assert_eq!(once.should_block(&host, &url), doubled.should_block(&host, &url));
    }
}
