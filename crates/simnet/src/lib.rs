//! # panoptes-simnet
//!
//! A deterministic, event-driven network simulator standing in for the
//! paper's physical testbed (an Android tablet on a real network behind a
//! transparent mitmproxy). Everything here is virtual: time, DNS, TLS and
//! packet routing — which is what makes every experiment in the
//! reproduction exactly repeatable from a seed.
//!
//! The simulator follows the smoltcp school of design from the networking
//! guides: a single-threaded, event-driven core with no hidden global
//! state, no wall-clock access, and explicit data flow.
//!
//! Key pieces:
//!
//! * [`clock`] — virtual instants/durations and the campaign clock,
//! * [`event`] — a time-ordered event queue with stable FIFO tie-breaking,
//! * [`dns`] — a zone registry, the device's local stub resolver and
//!   DNS-over-HTTPS providers (whose queries surface as HTTPS flows —
//!   the "8 of 15 browsers use Cloudflare/Google DoH" finding of §3.2),
//! * [`tls`] — certificates, trust stores, SNI handshakes and certificate
//!   pinning (pinned flows bypass the MITM, footnote 3 of the paper),
//! * [`filter`] — the iptables-like per-UID REDIRECT/DROP rule table of
//!   §2.2, including the HTTP/3 (QUIC) block,
//! * [`net`] — the fabric gluing it together: endpoint registry, transport
//!   decisions, latency model and traffic statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod dns;
pub mod event;
pub mod filter;
pub mod net;
pub mod tls;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use dns::{DnsLog, DnsLogSnapshot};
pub use event::EventQueue;
pub use net::{FlowContext, HttpHandler, NetError, Network, RouteTable, TransportReport};
