//! A binary trie over IPv4 CIDR blocks with longest-prefix-match lookup.

use panoptes_http::netaddr::{Cidr, IpAddr};

/// One trie node; children indexed by the next address bit.
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn empty() -> Node<T> {
        Node { value: None, children: [None, None] }
    }
}

/// A longest-prefix-match map from CIDR blocks to values.
pub struct CidrTrie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for CidrTrie<T> {
    fn default() -> Self {
        CidrTrie { root: Node::empty(), len: 0 }
    }
}

impl<T> CidrTrie<T> {
    /// An empty trie.
    pub fn new() -> CidrTrie<T> {
        CidrTrie::default()
    }

    /// Inserts `value` for `block`, replacing any value previously stored
    /// at exactly that prefix.
    pub fn insert(&mut self, block: Cidr, value: T) {
        let mut node = &mut self.root;
        for depth in 0..block.prefix {
            let bit = ((block.base.0 >> (31 - depth)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(|| Box::new(Node::empty()));
        }
        if node.value.is_none() {
            self.len += 1;
        }
        node.value = Some(value);
    }

    /// Longest-prefix lookup: the value of the most specific block
    /// containing `ip`.
    pub fn lookup(&self, ip: IpAddr) -> Option<&T> {
        let mut best: Option<&T> = None;
        let mut node = &self.root;
        if let Some(v) = &node.value {
            best = Some(v);
        }
        for depth in 0..32 {
            let bit = ((ip.0 >> (31 - depth)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Cidr {
        Cidr::parse(s).unwrap()
    }

    fn ip(s: &str) -> IpAddr {
        IpAddr::parse(s).unwrap()
    }

    #[test]
    fn basic_lookup() {
        let mut trie = CidrTrie::new();
        trie.insert(cidr("10.0.0.0/8"), "ten");
        assert_eq!(trie.lookup(ip("10.1.2.3")), Some(&"ten"));
        assert_eq!(trie.lookup(ip("11.1.2.3")), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut trie = CidrTrie::new();
        trie.insert(cidr("10.0.0.0/8"), "broad");
        trie.insert(cidr("10.5.0.0/16"), "narrow");
        trie.insert(cidr("10.5.5.0/24"), "narrowest");
        assert_eq!(trie.lookup(ip("10.1.0.1")), Some(&"broad"));
        assert_eq!(trie.lookup(ip("10.5.9.1")), Some(&"narrow"));
        assert_eq!(trie.lookup(ip("10.5.5.200")), Some(&"narrowest"));
    }

    #[test]
    fn exact_slash32() {
        let mut trie = CidrTrie::new();
        trie.insert(cidr("8.8.8.8/32"), "dns");
        assert_eq!(trie.lookup(ip("8.8.8.8")), Some(&"dns"));
        assert_eq!(trie.lookup(ip("8.8.8.9")), None);
    }

    #[test]
    fn default_route() {
        let mut trie = CidrTrie::new();
        trie.insert(cidr("0.0.0.0/0"), "anywhere");
        trie.insert(cidr("192.168.0.0/16"), "lan");
        assert_eq!(trie.lookup(ip("1.2.3.4")), Some(&"anywhere"));
        assert_eq!(trie.lookup(ip("192.168.3.4")), Some(&"lan"));
    }

    #[test]
    fn insert_replaces_same_prefix() {
        let mut trie = CidrTrie::new();
        trie.insert(cidr("10.0.0.0/8"), 1);
        trie.insert(cidr("10.0.0.0/8"), 2);
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.lookup(ip("10.0.0.1")), Some(&2));
    }

    #[test]
    fn empty_trie() {
        let trie: CidrTrie<()> = CidrTrie::new();
        assert!(trie.is_empty());
        assert_eq!(trie.lookup(ip("1.1.1.1")), None);
    }
}
