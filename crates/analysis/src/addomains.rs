//! Figure 3: the share of distinct native-contact domains that are
//! third-party ad/analytics domains, "as classified by the popular
//! Steven Black host list" (§3.1).

use std::collections::BTreeSet;

use panoptes::campaign::CampaignResult;
use panoptes_blocklist::data::steven_black_excerpt;
use panoptes_blocklist::HostsList;
use panoptes_mitm::{Flow, FlowClass};

/// One browser's Figure 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct AdDomainRow {
    /// Browser name.
    pub browser: String,
    /// Distinct hosts contacted natively.
    pub native_hosts: Vec<String>,
    /// The subset classified ad/analytics-related.
    pub ad_hosts: Vec<String>,
    /// `ad_hosts / native_hosts` as a percentage.
    pub ad_percent: f64,
}

/// Computes the Figure 3 row for one campaign against the bundled list.
pub fn ad_domain_row(result: &CampaignResult) -> AdDomainRow {
    ad_domain_row_with(result, &steven_black_excerpt())
}

/// Mergeable accumulator form of the Figure 3 detector: the distinct
/// native-host set is an order-insensitive union, so sharded merges are
/// exactly the sequential set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdDomainPartial {
    hosts: BTreeSet<String>,
}

impl AdDomainPartial {
    /// Folds one captured flow into the accumulator.
    pub fn observe(&mut self, flow: &Flow) {
        if flow.class == FlowClass::Native && !self.hosts.contains(flow.host.as_str()) {
            self.hosts.insert(flow.host.to_string());
        }
    }

    /// Absorbs a later shard's accumulator.
    pub fn merge(&mut self, other: AdDomainPartial) {
        self.hosts.extend(other.hosts);
    }

    /// Finalises the browser's Figure 3 row against `list`.
    pub fn finish(self, browser: &str, list: &HostsList) -> AdDomainRow {
        let ad_hosts: Vec<String> =
            self.hosts.iter().filter(|h| list.contains(h)).cloned().collect();
        let percent = if self.hosts.is_empty() {
            0.0
        } else {
            100.0 * ad_hosts.len() as f64 / self.hosts.len() as f64
        };
        AdDomainRow {
            browser: browser.to_string(),
            native_hosts: self.hosts.into_iter().collect(),
            ad_hosts,
            ad_percent: percent,
        }
    }
}

/// Computes the row against a caller-provided hosts list.
pub fn ad_domain_row_with(result: &CampaignResult, list: &HostsList) -> AdDomainRow {
    let mut partial = AdDomainPartial::default();
    for f in result.store.snapshot().iter() { // multipass-ok: legacy standalone detector
        partial.observe(f);
    }
    partial.finish(&result.profile.name, list)
}

/// Figure 3 over a set of campaigns, in input order.
pub fn figure3(results: &[CampaignResult]) -> Vec<AdDomainRow> {
    results.iter().map(ad_domain_row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn kiwi_is_ad_heavy_chrome_is_clean() {
        let world =
            World::build(&GeneratorConfig { popular: 6, sensitive: 3, ..Default::default() });
        let config = CampaignConfig::default();
        let kiwi = ad_domain_row(&run_crawl(
            &world,
            &profile_by_name("Kiwi").unwrap(),
            &world.sites,
            &config,
        ));
        assert!(
            (30.0..=50.0).contains(&kiwi.ad_percent),
            "kiwi ≈40%, got {:.1} ({:?})",
            kiwi.ad_percent,
            kiwi.ad_hosts
        );
        assert!(kiwi.ad_hosts.iter().any(|h| h.contains("rubiconproject")));

        let chrome = ad_domain_row(&run_crawl(
            &world,
            &profile_by_name("Chrome").unwrap(),
            &world.sites,
            &config,
        ));
        assert_eq!(chrome.ad_percent, 0.0, "{:?}", chrome.ad_hosts);
    }
}
