//! Table 2: PII and device-specific information leaked natively.
//!
//! §3.3: "we use keyword matching (via regex) and heuristics to extract
//! potential Personally Identifying Information (PII) and
//! device-specific information the browsers may leak via the URL
//! parameters of the natively generated requests. We exclude the Android
//! version and the device model ... as such information is reported by
//! default ... through the HTTP User-Agent header."
//!
//! The detectors below combine a value match (against the known device
//! state — ReCon-style) with key-name hints where the value alone is
//! ambiguous (e.g. DPI numbers).

use panoptes::campaign::CampaignResult;
use panoptes_browsers::PiiField;
use panoptes_device::DeviceProperties;

use crate::facts::capture_facts;

/// One browser's Table 2 row: which fields were observed leaking, with
/// an example destination per field.
#[derive(Debug, Clone, PartialEq)]
pub struct PiiRow {
    /// Browser name.
    pub browser: String,
    /// `(field, example destination host)` for each leaked field.
    pub leaked: Vec<(PiiField, String)>,
}

impl PiiRow {
    /// Whether `field` was observed.
    pub fn leaks(&self, field: PiiField) -> bool {
        self.leaked.iter().any(|(f, _)| *f == field)
    }
}

fn key_hint(key: &str, hints: &[&str]) -> bool {
    let key = key.to_ascii_lowercase();
    hints.iter().any(|h| key.contains(h))
}

/// Tests one observation against one field, given the device's ground
/// truth.
fn matches_field(field: PiiField, key: &str, value: &str, props: &DeviceProperties) -> bool {
    match field {
        PiiField::DeviceType => value.eq_ignore_ascii_case(&props.device_type),
        PiiField::DeviceManufacturer => {
            value.eq_ignore_ascii_case(&props.manufacturer)
                && key_hint(key, &["vendor", "manuf", "brand", "make"])
        }
        PiiField::Timezone => value == props.timezone,
        PiiField::Resolution => {
            value == props.resolution_string()
                || (key_hint(key, &["width"]) && value == props.resolution.0.to_string())
                || (key_hint(key, &["height"]) && value == props.resolution.1.to_string())
        }
        PiiField::LocalIp => value == props.local_ip.to_string(),
        PiiField::Dpi => key_hint(key, &["dpi", "density"]) && value == props.dpi.to_string(),
        PiiField::RootedStatus => {
            key_hint(key, &["root"]) && matches!(value, "true" | "1" | "TRUE")
        }
        PiiField::Locale => value == props.locale,
        PiiField::Country => {
            value == props.country && key_hint(key, &["country", "geo", "region"])
        }
        PiiField::Location => {
            let Ok(v) = value.parse::<f64>() else { return false };
            (key_hint(key, &["lat"]) && (v - props.location.0).abs() < 0.05)
                || (key_hint(key, &["lon", "lng"]) && (v - props.location.1).abs() < 0.05)
        }
        PiiField::ConnectionType => value == props.connection.as_str(),
        PiiField::NetworkType => value == props.network.as_str(),
    }
}

/// Scans a campaign's *native* flows for the Table 2 fields.
pub fn pii_row(result: &CampaignResult, props: &DeviceProperties) -> PiiRow {
    let mut leaked: Vec<(PiiField, String)> = Vec::new();
    let snap = result.store.snapshot();
    let facts = capture_facts(&snap);
    for view in facts.views(snap.native()) {
        for obs in view.observations() {
            for field in PiiField::ALL {
                if leaked.iter().any(|(f, _)| *f == field) {
                    continue;
                }
                if matches_field(field, &obs.key, &obs.value, props) {
                    leaked.push((field, view.host.to_string()));
                }
            }
        }
    }
    leaked.sort_by_key(|(f, _)| PiiField::ALL.iter().position(|x| x == f));
    PiiRow { browser: result.profile.name.to_string(), leaked }
}

/// Table 2 over a set of campaigns (device props shared — one testbed).
pub fn table2(results: &[CampaignResult], props: &DeviceProperties) -> Vec<PiiRow> {
    results.iter().map(|r| pii_row(r, props)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    fn row(name: &str) -> PiiRow {
        let world =
            World::build(&GeneratorConfig { popular: 5, sensitive: 3, ..Default::default() });
        let result = run_crawl(
            &world,
            &profile_by_name(name).unwrap(),
            &world.sites,
            &CampaignConfig::default(),
        );
        pii_row(&result, &DeviceProperties::testbed_tablet())
    }

    #[test]
    fn whale_row_matches_table2() {
        let whale = row("Whale");
        for field in [
            PiiField::Resolution,
            PiiField::LocalIp,
            PiiField::RootedStatus,
            PiiField::Locale,
            PiiField::Country,
            PiiField::NetworkType,
        ] {
            assert!(whale.leaks(field), "whale should leak {field:?}: {:?}", whale.leaked);
        }
        assert!(!whale.leaks(PiiField::Location));
        assert!(!whale.leaks(PiiField::Dpi));
    }

    #[test]
    fn opera_leaks_coordinates_to_ad_server() {
        let opera = row("Opera");
        assert!(opera.leaks(PiiField::Location), "{:?}", opera.leaked);
        let (_, dest) =
            opera.leaked.iter().find(|(f, _)| *f == PiiField::Location).unwrap();
        assert_eq!(dest, "s-odx.oleads.com", "shared with the ad server, not the vendor (§3.3)");
    }

    #[test]
    fn chrome_and_brave_leak_nothing() {
        for name in ["Chrome", "Brave", "DuckDuckGo", "Dolphin", "Kiwi"] {
            let r = row(name);
            assert!(r.leaked.is_empty(), "{name}: {:?}", r.leaked);
        }
    }

    #[test]
    fn field_detectors_are_value_grounded() {
        let props = DeviceProperties::testbed_tablet();
        assert!(matches_field(PiiField::Timezone, "tz", "Europe/Athens", &props));
        assert!(!matches_field(PiiField::Timezone, "tz", "Europe/Berlin", &props));
        assert!(matches_field(PiiField::Resolution, "screen", "1200x1920", &props));
        assert!(matches_field(PiiField::Resolution, "deviceScreenWidth", "1200", &props));
        assert!(!matches_field(PiiField::Resolution, "slot", "1200", &props));
        assert!(matches_field(PiiField::Dpi, "dpi", "224", &props));
        assert!(!matches_field(PiiField::Dpi, "count", "224", &props));
        assert!(matches_field(PiiField::Location, "latitude", "35.3387", &props));
        assert!(!matches_field(PiiField::Location, "latitude", "48.85", &props));
        assert!(matches_field(PiiField::Country, "countryCode", "GR", &props));
        assert!(!matches_field(PiiField::Country, "param", "GR", &props));
    }
}
