//! # panoptes-browsers
//!
//! Behavioural models of the 15 mobile browsers the paper measures
//! (Table 1). Each model has two halves, mirroring the split Panoptes
//! exists to measure:
//!
//! * a **web engine** ([`engine::WebEngine`]) that loads pages — fetching
//!   the document, subresources and third-party embeds, resolving names
//!   through the browser's chosen mechanism (stub vs DoH), optionally
//!   enforcing a filterlist (CocCoc), attempting HTTP/3 and falling back
//!   when the filter drops it, and running every *website-initiated*
//!   request through the instrumentation tap (which taints it);
//! * a set of **native behaviours** ([`profile::BrowserProfile`]) — the
//!   requests the app itself sends: update checks, telemetry, start-page
//!   refreshes, phone-home history reporting (§3.2), ad-SDK beacons
//!   (Listing 1), and idle-time chatter (§3.5). Native requests are never
//!   tainted; that is precisely how the MITM addon recognizes them.
//!
//! The per-browser behaviours are *calibrated to the paper's findings*:
//! who leaks the full URL, who attaches a persistent identifier, which
//! PII fields each vendor transmits (Table 2), which third-party ad
//! servers each contacts (Figure 3), and how chatty each browser is
//! (Figures 2, 4, 5). The measurement pipeline then *rediscovers* those
//! findings from the wire.
//!
//! Both halves are generated from one **behaviour-model space**
//! ([`model::BehaviorModel`]): the 15 paper browsers are pinned points
//! in that space ([`registry::pinned_models`]), and the deterministic
//! sampler ([`space::BrowserSpace`]) mints arbitrarily many more
//! coherent variants for population-scale studies
//! ([`registry::population`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod engine;
pub mod identifiers;
pub mod model;
pub mod payload;
pub mod profile;
pub mod profiles;
pub mod registry;
pub mod space;

pub use browser::{Browser, BrowsingMode, VisitOutcome};
pub use model::{BehaviorModel, ConsentAxis, IdentifierAxis, IncognitoAxis};
pub use profile::{BrowserProfile, IdleProfile, NativeCall, Payload, PiiField};
pub use registry::{all_profiles, pinned_models, population, profile_by_name};
pub use space::BrowserSpace;
