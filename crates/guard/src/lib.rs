//! # panoptes-guard
//!
//! A countermeasure prototype for the tracking the paper exposes. §4 of
//! the paper observes that "traditional tracker/ad-blocking extensions
//! cannot constitute a useful countermeasure" against *native* tracking,
//! and points to OS-level interception (NoMoAds) and PII-rewriting
//! (ReCon) as the viable designs. This crate is that design, built on the
//! same interception machinery Panoptes measures with:
//!
//! * [`policy::GuardPolicy`] — what to enforce: block native requests to
//!   ad/tracker hosts (hosts-list), block known history-leak endpoints,
//!   redact browsing-history values (plain / percent / Base64-encoded
//!   URLs) and device PII from query strings and JSON bodies;
//! * [`addon::GuardAddon`] — a [`panoptes_mitm::Addon`] that runs *after*
//!   the taint splitter, acts only on native flows, and either blocks
//!   (the proxy answers `403` locally, flow recorded as
//!   [`panoptes_mitm::FlowClass::Blocked`]) or rewrites the request
//!   before it leaves the device.
//!
//! The feedback loop with the measurement side is deliberate: run a
//! Panoptes study, feed the detected leak endpoints into a policy, and
//! the same browsers crawl clean — see `tests/guard_effect.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use panoptes_guard::GuardPolicy;
//!
//! let mut policy = GuardPolicy::strict(&["sba.yandex.net"], &[]);
//! policy.block_endpoint("wup.browser.qq.com");
//! assert!(policy.should_block("sba.yandex.net"));
//! assert!(policy.should_block("x.bidswitch.net")); // hosts-list
//! assert!(!policy.should_block("update.vivaldi.com"));
//! // History values are scrubbed whatever their encoding:
//! assert!(policy.redact_value("https://a.com/secret").is_some());
//! assert!(policy.redact_value("WIFI").is_none());
//! ```

pub mod addon;
pub mod policy;

pub use addon::GuardAddon;
pub use policy::{GuardPolicy, GuardStats};
