//! A from-scratch JSON value model, parser and writer.
//!
//! Used in two places the paper's pipeline needs it:
//!
//! 1. **Flow persistence** — Panoptes stores intercepted requests "in
//!    different local databases" (§2.3); our flow stores serialize to
//!    JSONL through this module.
//! 2. **Ad-SDK body inspection** — the PII analysis of §3.3 parses JSON
//!    request bodies like the Opera `sdk_fetch` call in Listing 1 to
//!    extract leaked fields (`latitude`, `deviceModel`, `operaId`, ...).
//!
//! The object representation preserves insertion order so serialized flows
//! are deterministic and diffable.

mod parse;
mod write;

pub use parse::{parse, JsonError};
pub use write::{to_string, to_string_pretty};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers round-trip up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object value from key/value pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object entries if the value is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Recursively visits every `(path, leaf)` pair; paths use dot
    /// notation with `[i]` for array indices. This is what the PII
    /// scanner walks.
    pub fn walk_leaves<'a>(&'a self, f: &mut impl FnMut(&str, &'a Value)) {
        fn inner<'a>(v: &'a Value, path: &mut String, f: &mut impl FnMut(&str, &'a Value)) {
            match v {
                Value::Object(pairs) => {
                    for (k, child) in pairs {
                        let saved = path.len();
                        if !path.is_empty() {
                            path.push('.');
                        }
                        path.push_str(k);
                        inner(child, path, f);
                        path.truncate(saved);
                    }
                }
                Value::Array(items) => {
                    for (i, child) in items.iter().enumerate() {
                        let saved = path.len();
                        path.push_str(&format!("[{i}]"));
                        inner(child, path, f);
                        path.truncate(saved);
                    }
                }
                leaf => f(path, leaf),
            }
        }
        let mut path = String::new();
        inner(self, &mut path, f);
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_get_and_accessors() {
        let v = Value::object(vec![
            ("name", Value::str("opera")),
            ("lat", Value::Number(48.85)),
            ("count", Value::Number(3.0)),
            ("ok", Value::Bool(true)),
            ("tags", Value::Array(vec![Value::str("a")])),
        ]);
        assert_eq!(v.get("name").unwrap().as_str(), Some("opera"));
        assert_eq!(v.get("lat").unwrap().as_f64(), Some(48.85));
        assert_eq!(v.get("count").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("lat").unwrap().as_i64(), None);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn walk_leaves_paths() {
        let v = Value::object(vec![
            ("a", Value::object(vec![("b", Value::Number(1.0))])),
            ("list", Value::Array(vec![Value::str("x"), Value::str("y")])),
        ]);
        let mut seen = Vec::new();
        v.walk_leaves(&mut |path, leaf| seen.push((path.to_string(), leaf.clone())));
        assert_eq!(seen[0].0, "a.b");
        assert_eq!(seen[1].0, "list[0]");
        assert_eq!(seen[2].0, "list[1]");
    }
}
