//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len())].clone()
    }
}

/// Picks one element of `options` uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty list");
    Select(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_every_option() {
        let mut rng = TestRng::from_seed(17);
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
