//! Umbrella crate for the Panoptes suite.
//!
//! Re-exports every workspace crate under one roof so the root-level
//! `examples/` and `tests/` can exercise the whole system through a single
//! dependency. Library users should depend on the individual crates.

pub use panoptes;
pub use panoptes_analysis as analysis;
pub use panoptes_blocklist as blocklist;
pub use panoptes_browsers as browsers;
pub use panoptes_device as device;
pub use panoptes_geo as geo;
pub use panoptes_guard as guard;
pub use panoptes_http as http;
pub use panoptes_instrument as instrument;
pub use panoptes_mitm as mitm;
pub use panoptes_simnet as simnet;
pub use panoptes_web as web;
