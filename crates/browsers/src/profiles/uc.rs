//! UC International 13.4.2.1307 — the stealthiest history leak in the
//! paper (§3.2): it does *not* phone home natively; instead it injects an
//! obfuscated JavaScript snippet into every page, which exfiltrates the
//! visited URL together with the user's city-level geolocation and ISP —
//! as tainted *engine* traffic, to servers in Canada (§3.4). Its native
//! telemetry carries only locale and network type (Table 2). Panoptes
//! instruments it by hooking an internal API with Frida (§2.3).

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::ResolverKind;

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, Payload, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("puds.ucweb.com", "/upgrade/check"),
    NativeCall::ping("api.ucweb.com", "/v1/config"),
];

const PER_VISIT: &[NativeCall] = &[
    NativeCall {
        host: "track.ucweb.com",
        path: "/v1/stat",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 120,
        count: 2,
        respects_incognito: false,
    },
    NativeCall::ping("api.ucweb.com", "/v1/config"),
];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("api.ucweb.com", "/v1/newtab"),
    NativeCall::ping("api.ucweb.com", "/v1/config"),
    NativeCall::ping("puds.ucweb.com", "/upgrade/check"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    (90, NativeCall::ping("track.ucweb.com", "/v1/heartbeat")),
    (300, NativeCall::ping("puds.ucweb.com", "/upgrade/check")),
];

const PII: &[PiiField] = &[PiiField::Locale, PiiField::NetworkType];

/// Builds the UC International profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "UC International",
        version: "13.4.2.1307",
        package: "com.UCMobile.intl",
        instrumentation: Instrumentation::FridaInternalApi,
        supports_incognito: true,
        resolver: ResolverKind::LocalStub,
        adblock: false,
        attempts_h3: false,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: None,
        injects_js_collector: Some("collect.ucweb.com"),
        honors_telemetry_consent: false,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
