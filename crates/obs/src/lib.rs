//! # panoptes-obs
//!
//! Observability for the measurement instrument itself. Panoptes is a
//! measurement rig, yet before this crate its own runtime was
//! unmeasured: the only visibility into a study run was unstructured
//! progress lines. This crate threads two first-class signals through
//! the whole capture→analysis pipeline:
//!
//! * **metrics** ([`metrics`]) — a sharded registry of counters,
//!   gauges and fixed-log2-bucket histograms. Every metric is declared
//!   with a [`metrics::MetricClass`]: *deterministic* metrics are pure
//!   functions of the workload (event/flow/detector tallies — byte-
//!   identical across worker counts and with/without the
//!   capture→analysis overlap), *runtime* metrics describe how this
//!   particular execution went (timings, shard topology, process-
//!   lifetime cache state) and are excluded from the byte-identity
//!   guarantee. [`report::render`] keeps the two sections strictly
//!   apart so the deterministic half can be asserted byte-identical.
//! * **traces** ([`trace`]) — `tracing`-style spans and point events
//!   with **dual timestamps** (wall-clock nanoseconds since process
//!   start *and* the virtual sim-clock microseconds, when the caller
//!   is inside a campaign), recorded into a lock-free ring buffer per
//!   worker thread and exported as JSONL (`repro --trace-out`).
//! * **request contexts** ([`ctx`]) — a copyable per-request capsule
//!   (request id + parent span) handed explicitly across thread
//!   boundaries so every trace event on the serve path carries the
//!   request it served. Allocation-free end to end.
//!
//! Both layers are **zero-overhead when disabled**: every
//! instrumentation macro compiles to a single relaxed atomic load and
//! a branch (no handle resolution, no formatting, no allocation) until
//! [`enable`] turns the layer on. `repro` runs without `--metrics` /
//! `--trace-out` are therefore byte- and allocation-identical to the
//! uninstrumented pipeline; `bench_obs` pins the disabled-path cost
//! below 2% of the capture and study paths.
//!
//! The [`progress`] module is the third, always-compiled-in piece: the
//! structured, tear-free progress sink the fleet narrates through
//! (colour only on a TTY with `NO_COLOR` unset).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};

pub mod ctx;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod trace;

/// Flag bit: the metrics layer records counter/gauge/histogram updates.
pub const METRICS: u8 = 1 << 0;
/// Flag bit: the trace layer records spans and events.
pub const TRACE: u8 = 1 << 1;

/// The global layer switch. A single `AtomicU8` so the disabled hot
/// path is one relaxed load and a branch, for both layers at once.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Turns the given layers on (`METRICS`, `TRACE`, or both OR-ed).
pub fn enable(flags: u8) {
    ENABLED.fetch_or(flags, Ordering::Relaxed);
}

/// Turns the given layers off.
pub fn disable(flags: u8) {
    ENABLED.fetch_and(!flags, Ordering::Relaxed);
}

/// True when any of the given layers is on. This is THE disabled-path
/// cost: one relaxed load, one mask, one branch.
#[inline(always)]
pub fn enabled(flags: u8) -> bool {
    ENABLED.load(Ordering::Relaxed) & flags != 0
}

/// True when the metrics layer is on.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    enabled(METRICS)
}

/// True when the trace layer is on.
#[inline(always)]
pub fn trace_enabled() -> bool {
    enabled(TRACE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_are_independent_bits() {
        // Runs against the global switch, so restore the state we found.
        let before = ENABLED.load(Ordering::Relaxed);
        enable(METRICS);
        assert!(metrics_enabled());
        enable(TRACE);
        assert!(trace_enabled() && metrics_enabled());
        disable(METRICS);
        assert!(trace_enabled());
        disable(TRACE);
        ENABLED.store(before, Ordering::Relaxed);
    }
}
