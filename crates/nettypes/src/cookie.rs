//! Cookies and a per-domain cookie jar.
//!
//! Browsers in the simulation keep ordinary engine-side cookie state; the
//! point the paper makes (§3.2) is that clearing this state does *not*
//! defeat native tracking because vendors attach their own persistent
//! identifiers outside the cookie jar. The jar models the part the user
//! *can* clear.

use std::collections::HashMap;

/// A single cookie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Domain the cookie is scoped to (registrable domain, host-only
    /// semantics are not modelled).
    pub domain: String,
    /// Whether the cookie survives the session (incognito drops them all
    /// regardless).
    pub persistent: bool,
}

impl Cookie {
    /// Parses a `Set-Cookie` header value in the context of `origin_domain`.
    /// Returns `None` for syntactically empty cookies.
    pub fn parse_set_cookie(value: &str, origin_domain: &str) -> Option<Cookie> {
        let mut parts = value.split(';').map(str::trim);
        let (name, val) = parts.next()?.split_once('=')?;
        if name.is_empty() {
            return None;
        }
        let mut domain = origin_domain.to_string();
        let mut persistent = false;
        for attr in parts {
            let (k, v) = attr.split_once('=').unwrap_or((attr, ""));
            match k.to_ascii_lowercase().as_str() {
                "domain" => domain = v.trim_start_matches('.').to_ascii_lowercase(),
                "max-age" | "expires" => persistent = true,
                _ => {}
            }
        }
        Some(Cookie {
            name: name.to_string(),
            value: val.to_string(),
            domain,
            persistent,
        })
    }

    /// Serializes for a `Cookie` request header fragment.
    pub fn pair(&self) -> String {
        format!("{}={}", self.name, self.value)
    }
}

/// A cookie jar indexed by cookie domain.
///
/// The naive jar — one flat `Vec`, scanned per request and `retain`ed
/// per `Set-Cookie` — is quadratic over a long crawl: by the 100k-site
/// world a single browser holds ~10⁵ cookies and issues ~10⁶ requests.
/// This layout keeps cookies in insertion-ordered slots (tombstoned on
/// replacement) with a per-domain index over slot numbers, so a lookup
/// touches only the few label-suffixes of the request host and a store
/// touches only its own domain's bucket. The rendered `Cookie` header
/// is byte-identical to the flat scan: matches are emitted in ascending
/// slot order, which *is* insertion order.
#[derive(Debug, Clone, Default)]
pub struct CookieJar {
    /// Insertion-ordered storage; `None` marks a replaced/expired slot.
    slots: Vec<Option<Cookie>>,
    /// Cookie domain → live slot numbers (each bucket stays sorted
    /// because slots are assigned in increasing order).
    by_domain: HashMap<String, Vec<u32>>,
    live: usize,
}

impl CookieJar {
    /// Creates an empty jar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a cookie, replacing any same-name cookie for the same domain.
    pub fn store(&mut self, cookie: Cookie) {
        // Keep tombstones from accumulating past the live population:
        // compaction preserves insertion order, so headers are unchanged.
        if self.slots.len() > 32 && self.slots.len() >= 2 * self.live {
            let kept: Vec<Cookie> = self.slots.drain(..).flatten().collect();
            self.rebuild(kept);
        }
        let slots = &self.slots;
        let bucket = self.by_domain.entry(cookie.domain.clone()).or_default();
        if let Some(pos) = bucket
            .iter()
            .position(|&i| slots[i as usize].as_ref().is_some_and(|c| c.name == cookie.name))
        {
            let idx = bucket.remove(pos);
            self.slots[idx as usize] = None;
            self.live -= 1;
        }
        let idx = self.slots.len() as u32;
        self.by_domain.entry(cookie.domain.clone()).or_default().push(idx);
        self.slots.push(Some(cookie));
        self.live += 1;
    }

    /// Returns the `Cookie` header value for a request to `host`, matching
    /// the cookie domain as a suffix label match. `None` when no cookies
    /// apply.
    ///
    /// Only the label-suffixes of `host` (`a.b.com` → `a.b.com`,
    /// `b.com`, `com`) can hold matching cookies, so the lookup probes
    /// that handful of buckets instead of scanning the jar.
    pub fn header_for(&self, host: &str) -> Option<String> {
        if self.live == 0 {
            return None;
        }
        let mut matches: Vec<u32> = Vec::new();
        for suffix in domain_suffixes(host) {
            if let Some(bucket) = self.by_domain.get(suffix) {
                matches.extend_from_slice(bucket);
            }
        }
        if matches.is_empty() {
            return None;
        }
        matches.sort_unstable();
        let pairs: Vec<String> = matches
            .iter()
            .filter_map(|&i| self.slots[i as usize].as_ref())
            .map(Cookie::pair)
            .collect();
        Some(pairs.join("; "))
    }

    /// Drops every cookie (what "Clear browsing data" or leaving incognito
    /// does).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.by_domain.clear();
        self.live = 0;
    }

    /// Drops session cookies only.
    pub fn clear_session(&mut self) {
        let kept: Vec<Cookie> =
            self.slots.drain(..).flatten().filter(|c| c.persistent).collect();
        self.rebuild(kept);
    }

    /// Reindexes from an insertion-ordered live set.
    fn rebuild(&mut self, cookies: Vec<Cookie>) {
        self.by_domain.clear();
        self.live = cookies.len();
        self.slots = cookies
            .into_iter()
            .enumerate()
            .map(|(idx, c)| {
                self.by_domain.entry(c.domain.clone()).or_default().push(idx as u32);
                Some(c)
            })
            .collect();
    }

    /// Number of cookies held.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// The label-suffixes of `host` that a cookie domain can equal under
/// [`domain_matches`]: the host itself, then everything after each dot.
fn domain_suffixes(host: &str) -> impl Iterator<Item = &str> {
    std::iter::once(host).chain(host.match_indices('.').map(move |(i, _)| &host[i + 1..]))
}

/// Label-suffix domain match: `sub.example.com` matches `example.com`
/// but `evilexample.com` does not. Reference predicate for the indexed
/// lookup — the tests assert [`domain_suffixes`]-based probing renders
/// exactly what a flat scan under this predicate would.
#[cfg_attr(not(test), allow(dead_code))]
fn domain_matches(host: &str, cookie_domain: &str) -> bool {
    host == cookie_domain
        || (host.len() > cookie_domain.len()
            && host.ends_with(cookie_domain)
            && host.as_bytes()[host.len() - cookie_domain.len() - 1] == b'.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_set_cookie() {
        let c = Cookie::parse_set_cookie("sid=abc123; Path=/; HttpOnly", "example.com").unwrap();
        assert_eq!(c.name, "sid");
        assert_eq!(c.value, "abc123");
        assert_eq!(c.domain, "example.com");
        assert!(!c.persistent);
    }

    #[test]
    fn parse_persistent_and_domain_attrs() {
        let c = Cookie::parse_set_cookie(
            "uid=x; Domain=.Tracker.NET; Max-Age=31536000",
            "sub.tracker.net",
        )
        .unwrap();
        assert_eq!(c.domain, "tracker.net");
        assert!(c.persistent);
    }

    #[test]
    fn rejects_empty_name() {
        assert!(Cookie::parse_set_cookie("=v", "e.com").is_none());
        assert!(Cookie::parse_set_cookie("novalue", "e.com").is_none());
    }

    #[test]
    fn jar_replaces_same_name_same_domain() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::parse_set_cookie("a=1", "e.com").unwrap());
        jar.store(Cookie::parse_set_cookie("a=2", "e.com").unwrap());
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.header_for("e.com"), Some("a=2".to_string()));
    }

    #[test]
    fn domain_suffix_matching() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::parse_set_cookie("t=1; Domain=tracker.net", "tracker.net").unwrap());
        assert_eq!(jar.header_for("cdn.tracker.net"), Some("t=1".to_string()));
        assert_eq!(jar.header_for("eviltracker.net"), None);
        assert_eq!(jar.header_for("other.com"), None);
    }

    #[test]
    fn indexed_header_matches_flat_scan_order() {
        // The domain-indexed jar must render the exact bytes the old
        // flat insertion-order scan did, including after replacements
        // and compaction.
        let mut jar = CookieJar::new();
        let mut flat: Vec<Cookie> = Vec::new();
        let sets = [
            ("a=1", "example.com"),
            ("t=x; Domain=tracker.net", "cdn.tracker.net"),
            ("b=2", "example.com"),
            ("a=9", "example.com"), // replaces a=1: moves to the end
            ("u=z; Domain=example.com", "www.example.com"),
        ];
        for (value, origin) in sets {
            let c = Cookie::parse_set_cookie(value, origin).unwrap();
            flat.retain(|f| !(f.name == c.name && f.domain == c.domain));
            flat.push(c.clone());
            jar.store(c);
        }
        // Force many replacements so compaction kicks in.
        for i in 0..100 {
            let c = Cookie::parse_set_cookie(&format!("churn={i}"), "churn.org").unwrap();
            flat.retain(|f| !(f.name == c.name && f.domain == c.domain));
            flat.push(c.clone());
            jar.store(c);
        }
        for host in ["example.com", "www.example.com", "cdn.tracker.net", "churn.org", "no.match"]
        {
            let scan: Vec<String> = flat
                .iter()
                .filter(|c| domain_matches(host, &c.domain))
                .map(Cookie::pair)
                .collect();
            let expect = (!scan.is_empty()).then(|| scan.join("; "));
            assert_eq!(jar.header_for(host), expect, "host {host}");
        }
        assert_eq!(jar.len(), flat.len());
    }

    #[test]
    fn clear_session_keeps_persistent() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::parse_set_cookie("s=1", "e.com").unwrap());
        jar.store(Cookie::parse_set_cookie("p=1; Max-Age=60", "e.com").unwrap());
        jar.clear_session();
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.header_for("e.com"), Some("p=1".to_string()));
        jar.clear();
        assert!(jar.is_empty());
    }
}
