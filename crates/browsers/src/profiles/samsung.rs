//! Samsung Internet 20.0.6.5 — modest native traffic; transmits only the
//! locale (Table 2). Pins its update domain (`samsungdm.com`), so those
//! flows reach the capture only as opaque pinned connections — the
//! lower-bound caveat of the paper's footnote 3, reproduced.

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};

/// The Samsung Internet pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("Samsung", "20.0.6.5", "com.sec.android.app.sbrowser")
        .h3()
        .honors_consent()
        .pins("samsungdm.com")
        .leaks(&[PiiField::Locale])
        .startup(vec![
            NativeCall::ping("browser-api.samsung.com", "/v1/features"),
            // Pinned: the proxy will only see an aborted TLS handshake.
            NativeCall::ping("su.samsungdm.com", "/update/check"),
        ])
        .per_visit(vec![NativeCall::ping("browser-api.samsung.com", "/v1/config")
            .carrying(Payload::Telemetry)
            .respecting_incognito()])
        .idle_burst(vec![
            NativeCall::ping("browser-api.samsung.com", "/v1/quickaccess"),
            NativeCall::ping("browser-api.samsung.com", "/v1/features"),
        ])
        .idle_periodic(vec![
            (240, NativeCall::ping("browser-api.samsung.com", "/v1/quickaccess")),
            (300, NativeCall::ping("su.samsungdm.com", "/update/check")),
        ])
}
