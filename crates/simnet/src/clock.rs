//! Virtual time.
//!
//! Panoptes' crawl logic is full of wall-clock waits — "60 seconds since
//! the visit started", "an additional period of 5 seconds", "leave them
//! idle for 10 minutes" (§2.1, §3.5). In the reproduction all of these run
//! on a virtual clock so a 10-minute idle experiment completes in
//! microseconds and is bit-for-bit repeatable.

use std::fmt;

/// A point in virtual time, microseconds since the campaign epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimInstant(pub u64);

/// A span of virtual time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Whole seconds (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Milliseconds (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl SimInstant {
    /// The campaign epoch.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Instant advanced by `d`.
    pub fn plus(self, d: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(d.0))
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        self.plus(rhs)
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.0 as f64 / 1_000_000.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
    }
}

/// The campaign clock: monotonically advancing virtual time.
#[derive(Debug, Default)]
pub struct SimClock {
    now: SimInstant,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advances by `d` and returns the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimInstant {
        self.now = self.now.plus(d);
        self.now
    }

    /// Jumps directly to `t`; panics if `t` is in the past — virtual time
    /// never runs backwards.
    pub fn advance_to(&mut self, t: SimInstant) {
        assert!(t >= self.now, "clock cannot run backwards ({t} < {})", self.now);
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimInstant::EPOCH + SimDuration::from_secs(60);
        assert_eq!(t.0, 60_000_000);
        assert_eq!(t.since(SimInstant::EPOCH), SimDuration::from_secs(60));
        assert_eq!(SimInstant::EPOCH.since(t), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(1500).as_secs(),
            1,
        );
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
    }

    #[test]
    fn clock_advances() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
        clock.advance(SimDuration::from_secs(5));
        clock.advance(SimDuration::from_millis(250));
        assert_eq!(clock.now().0, 5_250_000);
        clock.advance_to(SimInstant(6_000_000));
        assert_eq!(clock.now().0, 6_000_000);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_backwards_jump() {
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_secs(10));
        clock.advance_to(SimInstant(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimInstant(1_500_000).to_string(), "t+1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }
}
