//! Microbenchmarks of the substrates the pipeline leans on: the taint
//! addon's per-request cost, codec/URL parsing throughput, blocklist and
//! CIDR-trie lookups, and JSON handling. These quantify the DESIGN.md
//! claim that the measurement layer adds negligible per-flow overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use panoptes_blocklist::data::steven_black_excerpt;
use panoptes_blocklist::filterlist::easylist_excerpt;
use panoptes_geo::GeoDb;
use panoptes_http::codec::{b64_decode_url, b64_encode_url, percent_encode_component};
use panoptes_http::json;
use panoptes_http::netaddr::IpAddr;
use panoptes_http::url::Url;
use panoptes_http::Request;
use panoptes_mitm::addon::{Addon, Verdict};
use panoptes_mitm::{FlowClass, InterceptedRequest, TaintAddon, TAINT_HEADER};
use panoptes_simnet::net::FlowContext;
use panoptes_simnet::SimInstant;

fn flow_ctx() -> FlowContext {
    FlowContext {
        time: SimInstant::EPOCH,
        uid: 10001,
        app_package: "com.bench".into(),
        src_ip: IpAddr::new(192, 168, 1, 50),
        dst_ip: IpAddr::new(23, 20, 0, 11),
        dst_port: 443,
        sni: "www.example.com".into(),
        version: panoptes_http::request::HttpVersion::H2,
        intercepted: true,
    }
}

fn taint_addon_per_request(c: &mut Criterion) {
    let addon = TaintAddon::new("bench-token");
    let ctx = flow_ctx();
    let mut group = c.benchmark_group("taint_addon");
    group.throughput(Throughput::Elements(1));
    group.bench_function("tainted", |b| {
        b.iter(|| {
            let mut req = Request::get(Url::parse("https://www.example.com/a").unwrap())
                .with_header(TAINT_HEADER, "bench-token")
                .with_header("user-agent", "bench");
            let mut class = FlowClass::Native;
            let mut verdict = Verdict::Forward;
            addon.on_request(&mut InterceptedRequest {
                ctx: &ctx,
                request: &mut req,
                class: &mut class,
                verdict: &mut verdict,
            });
            black_box(class)
        })
    });
    group.bench_function("native", |b| {
        b.iter(|| {
            let mut req = Request::get(Url::parse("https://www.example.com/a").unwrap());
            let mut class = FlowClass::Native;
            let mut verdict = Verdict::Forward;
            addon.on_request(&mut InterceptedRequest {
                ctx: &ctx,
                request: &mut req,
                class: &mut class,
                verdict: &mut verdict,
            });
            black_box(class)
        })
    });
    group.finish();
}

fn url_parse(c: &mut Criterion) {
    let url = "https://www.youtube.com/watch?v=dQw4w9WgXcQ&t=42s&list=PL123";
    let mut group = c.benchmark_group("url");
    group.throughput(Throughput::Bytes(url.len() as u64));
    group.bench_function("parse", |b| b.iter(|| Url::parse(black_box(url)).unwrap()));
    let parsed = Url::parse(url).unwrap();
    group.bench_function("serialize", |b| b.iter(|| black_box(&parsed).to_string_full()));
    group.finish();
}

fn base64_roundtrip(c: &mut Criterion) {
    let payload = "https://www.health-support013.org/health/depression-support?session=12345";
    let encoded = b64_encode_url(payload.as_bytes());
    let mut group = c.benchmark_group("base64");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("encode", |b| b.iter(|| b64_encode_url(black_box(payload.as_bytes()))));
    group.bench_function("decode", |b| b.iter(|| b64_decode_url(black_box(&encoded)).unwrap()));
    group.finish();
}

fn percent_encoding(c: &mut Criterion) {
    let value = "https://example.com/path?a=1&b=two three";
    c.bench_function("percent_encode_component", |b| {
        b.iter(|| percent_encode_component(black_box(value)))
    });
}

fn hosts_list_lookup(c: &mut Criterion) {
    let list = steven_black_excerpt();
    c.bench_function("hosts_list_contains", |b| {
        b.iter(|| {
            black_box(list.contains("stats.g.doubleclick.net"))
                ^ black_box(list.contains("www.wikipedia.org"))
        })
    });
}

fn filterlist_match(c: &mut Criterion) {
    let list = easylist_excerpt();
    c.bench_function("easylist_should_block", |b| {
        b.iter(|| {
            black_box(list.should_block(
                "fastlane.rubiconproject.com",
                "https://fastlane.rubiconproject.com/a/api/fastlane.json",
            )) ^ black_box(
                list.should_block("www.example.com", "https://www.example.com/article"),
            )
        })
    });
}

fn geo_lookup(c: &mut Criterion) {
    let db = GeoDb::standard();
    let ips = [
        IpAddr::new(77, 88, 0, 11),
        IpAddr::new(101, 226, 0, 20),
        IpAddr::new(23, 20, 0, 99),
        IpAddr::new(9, 9, 9, 9),
    ];
    c.bench_function("geo_country_of", |b| {
        b.iter(|| {
            let mut hits = 0;
            for ip in ips {
                if db.country_of(black_box(ip)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn json_parse_listing1(c: &mut Criterion) {
    let body = r#"{"channelId":"adxsdk_for_opera","appPackageName":"com.opera.browser","appVersion":"75.1.3978.72329","sdkVersion":"1.12.2","osType":"ANDROID","osVersion":"11","deviceVendor":"Samsung","deviceModel":"SM-T580","deviceScreenWidth":1200,"deviceScreenHeight":1920,"latitude":35.3387,"longitude":25.1442,"operaId":"2e5d1382f2dd484e9d035619c8a908ddd5de945b100bc9e66582e2ed4ab0b2ab","connectionType":"WIFI","userConsent":"false","timestamp":1683927615,"supportedAdTypes":["SINGLE"]}"#;
    let mut group = c.benchmark_group("json");
    group.throughput(Throughput::Bytes(body.len() as u64));
    group.bench_function("parse_listing1", |b| b.iter(|| json::parse(black_box(body)).unwrap()));
    let value = json::parse(body).unwrap();
    group.bench_function("serialize_listing1", |b| b.iter(|| json::to_string(black_box(&value))));
    group.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default();
    targets =
        taint_addon_per_request,
        url_parse,
        base64_roundtrip,
        percent_encoding,
        hosts_list_lookup,
        filterlist_match,
        geo_lookup,
        json_parse_listing1,
}
criterion_main!(substrates);
