//! JSON serialization (compact and pretty).

use super::Value;

/// Serializes `value` compactly (no whitespace) — the JSONL flow-store
/// format.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, None, 0, &mut out);
    out
}

/// Serializes `value` with two-space indentation, for human-readable
/// reports.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, Some(2), 0, &mut out);
    out
}

fn write_value(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN; degrade safely.
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;

    #[test]
    fn compact_output() {
        let v = Value::object(vec![
            ("a", Value::Number(1.0)),
            ("b", Value::Array(vec![Value::str("x"), Value::Null])),
        ]);
        assert_eq!(to_string(&v), r#"{"a":1,"b":["x",null]}"#);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&Value::Number(42.0)), "42");
        assert_eq!(to_string(&Value::Number(-7.0)), "-7");
        assert_eq!(to_string(&Value::Number(1.5)), "1.5");
    }

    #[test]
    fn escapes_roundtrip_through_parser() {
        let v = Value::str("line\nquote\"back\\slash\ttab\u{1}");
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::object(vec![("k", Value::Array(vec![Value::Number(1.0)]))]);
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"k\": [\n    1\n  ]\n"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Value::Array(vec![])), "[]");
        assert_eq!(to_string(&Value::Object(vec![])), "{}");
        assert_eq!(to_string_pretty(&Value::Object(vec![])), "{}");
    }

    #[test]
    fn nonfinite_degrades_to_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn roundtrip_structured() {
        let v = Value::object(vec![
            ("url", Value::str("https://e.com/p?a=b")),
            ("bytes", Value::Number(8192.0)),
            ("native", Value::Bool(true)),
            ("nested", Value::object(vec![("deep", Value::Null)])),
        ]);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
    }
}
