//! Property-based tests for the site generator and the plan cache.

use std::sync::Arc;

use proptest::prelude::*;

use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

/// Deterministic fingerprint of a built world: every site's URL plus its
/// subresource URLs in rank order, and the full host→IP table.
fn fingerprint(world: &World) -> (Vec<String>, Vec<(String, String)>) {
    let mut urls = Vec::new();
    for site in &world.sites {
        urls.push(site.url_string());
        for r in &site.page.resources {
            urls.push(r.url_string());
        }
    }
    let hosts = world.hosts().map(|(h, ip)| (h.to_string(), ip.to_string())).collect();
    (urls, hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generator is a pure function of its configuration: two cold
    /// builds from the same seed produce the identical world.
    #[test]
    fn build_is_deterministic(seed in 0u64..1000, popular in 1u32..12, sensitive in 0u32..8, tail in 0u32..6) {
        let config = GeneratorConfig { seed, popular, sensitive, tail };
        prop_assert_eq!(fingerprint(&World::build(&config)), fingerprint(&World::build(&config)));
    }

    /// The plan cache is transparent: the warm shared world is
    /// indistinguishable from a cold build, and repeat lookups hand back
    /// the same shared plan instead of regenerating.
    #[test]
    fn plan_cache_matches_cold_build(seed in 0u64..1000, popular in 1u32..12, sensitive in 0u32..8, tail in 0u32..6) {
        let config = GeneratorConfig { seed, popular, sensitive, tail };
        let cold = World::build(&config);
        let warm = World::shared(&config);
        prop_assert_eq!(fingerprint(&cold), fingerprint(&warm));
        prop_assert!(Arc::ptr_eq(&warm, &World::shared(&config)));
    }
}
