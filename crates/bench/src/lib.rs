//! # panoptes-bench
//!
//! The reproduction harness: shared experiment drivers used both by the
//! `repro` binary (which regenerates every table and figure of the paper
//! as Markdown) and by the Criterion benchmarks (one bench target per
//! artefact).

// `deny` rather than `forbid`: the `mem` module scopes one `allow` for
// its counting `GlobalAlloc` shim; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod capture;
pub mod capture_baseline;
pub mod experiments;
pub mod mem;
pub mod perf;
pub mod render;
