//! Offline shim for `parking_lot` 0.12.
//!
//! Wraps `std::sync` primitives behind parking_lot's `Result`-free API.
//! Lock poisoning is deliberately ignored (parking_lot has no poisoning
//! either): the fleet executor isolates panicking campaign units and
//! must still be able to read state guarded by locks a panicking thread
//! once held.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison-tolerant.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose guards are not `Result`-wrapped.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Poison-tolerant.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard. Poison-tolerant.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
