//! The declarative browser-profile model.
//!
//! A [`BrowserProfile`] is pure data: what the app is (Table 1 of the
//! paper), how it can be instrumented (§2.1/§2.3), how its engine is
//! configured, and — the core of the reproduction — the catalogue of
//! native requests it sends at startup, per page visit, and while idle.
//! `payload.rs` turns the catalogue into concrete [`panoptes_http::Request`]s.

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::ResolverKind;

/// Device/user attributes a browser may leak — the exact columns of the
/// paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PiiField {
    /// Device type (tablet/phone).
    DeviceType,
    /// Device manufacturer.
    DeviceManufacturer,
    /// IANA timezone.
    Timezone,
    /// Screen resolution.
    Resolution,
    /// LAN address.
    LocalIp,
    /// Screen density.
    Dpi,
    /// Whether the device is rooted.
    RootedStatus,
    /// BCP-47 locale.
    Locale,
    /// Country code.
    Country,
    /// Latitude/longitude fix.
    Location,
    /// Metered/unmetered connection.
    ConnectionType,
    /// Wi-Fi vs cellular.
    NetworkType,
}

impl PiiField {
    /// All twelve fields in Table 2 column order.
    pub const ALL: [PiiField; 12] = [
        PiiField::DeviceType,
        PiiField::DeviceManufacturer,
        PiiField::Timezone,
        PiiField::Resolution,
        PiiField::LocalIp,
        PiiField::Dpi,
        PiiField::RootedStatus,
        PiiField::Locale,
        PiiField::Country,
        PiiField::Location,
        PiiField::ConnectionType,
        PiiField::NetworkType,
    ];

    /// Column header used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PiiField::DeviceType => "Device Type",
            PiiField::DeviceManufacturer => "Device Manuf.",
            PiiField::Timezone => "Timezone",
            PiiField::Resolution => "Resolution",
            PiiField::LocalIp => "Local IP",
            PiiField::Dpi => "DPI",
            PiiField::RootedStatus => "Rooted Status",
            PiiField::Locale => "Locale",
            PiiField::Country => "Country",
            PiiField::Location => "Location (lat & long)",
            PiiField::ConnectionType => "Connection Type",
            PiiField::NetworkType => "Network Type",
        }
    }
}

/// What a native request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Nothing interesting — plain ping / content fetch.
    None,
    /// The full visited URL, Base64-encoded in a query parameter — the
    /// Yandex `sba.yandex.net` pattern (§3.2).
    FullUrlBase64 {
        /// Query parameter name carrying the encoded URL.
        param: &'static str,
    },
    /// The visited hostname plus a persistent per-install identifier —
    /// the Yandex `api.browser.yandex.ru` pattern (§3.2).
    HostnamePlusId {
        /// Query parameter carrying the hostname.
        host_param: &'static str,
        /// Query parameter carrying the persistent identifier.
        id_param: &'static str,
    },
    /// The full visited URL in the clear — the QQ pattern (§3.2).
    FullUrlPlain {
        /// Query parameter carrying the URL.
        param: &'static str,
    },
    /// Only the visited registrable domain — the Edge→Bing and
    /// Opera→Sitecheck pattern (§3.2).
    DomainOnly {
        /// Query parameter carrying the domain.
        param: &'static str,
    },
    /// A JSON ad-SDK body carrying PII fields (Listing 1's
    /// `s-odx.oleads.com` shape). Fields come from the profile's
    /// `pii_fields`.
    AdSdkJson,
    /// Vendor telemetry with PII attached as query parameters.
    Telemetry,
}

/// One native request in a browser's catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeCall {
    /// Destination host.
    pub host: &'static str,
    /// Destination path.
    pub path: &'static str,
    /// HTTP method.
    pub method: Method,
    /// What the request carries.
    pub payload: Payload,
    /// Extra body padding in bytes (volume calibration — Figure 4; the
    /// QQ telemetry bodies are what make its native volume 42% of the
    /// engine's).
    pub body_pad: u32,
    /// How many copies are sent per trigger (request-count calibration —
    /// Figure 2).
    pub count: u32,
    /// Whether the call is suppressed in incognito mode. The paper found
    /// the history-leaking browsers keep leaking in incognito, so their
    /// calls set `false`.
    pub respects_incognito: bool,
}

impl NativeCall {
    /// A simple GET ping.
    pub const fn ping(host: &'static str, path: &'static str) -> NativeCall {
        NativeCall {
            host,
            path,
            method: Method::Get,
            payload: Payload::None,
            body_pad: 0,
            count: 1,
            respects_incognito: false,
        }
    }
}

/// Shape of a browser's idle-time chatter (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleProfile {
    /// Start-page refresh burst fired with exponentially increasing gaps
    /// over the first minute (favicons, thumbnails, DNS warmup — the
    /// paper's explanation for the early exponential growth).
    pub burst: &'static [NativeCall],
    /// Steady-state pings: `(interval_seconds, call)` — the plateau. A
    /// dense interval (Opera's news feed) produces the linear curve the
    /// paper singles out.
    pub periodic: &'static [(u64, NativeCall)],
}

impl IdleProfile {
    /// A silent browser.
    pub const QUIET: IdleProfile = IdleProfile { burst: &[], periodic: &[] };
}

/// A complete browser model.
#[derive(Debug, Clone)]
pub struct BrowserProfile {
    /// Display name (Table 1).
    pub name: &'static str,
    /// Version measured by the paper (Table 1).
    pub version: &'static str,
    /// Android package name.
    pub package: &'static str,
    /// How Panoptes instruments it (§2.1/§2.3).
    pub instrumentation: Instrumentation,
    /// Whether the browser offers an incognito mode (Yandex and QQ do
    /// not — footnote 5).
    pub supports_incognito: bool,
    /// Name-resolution mechanism (§3.2: 8 DoH users, 7 stub users).
    pub resolver: ResolverKind,
    /// Engine-side easylist enforcement (CocCoc).
    pub adblock: bool,
    /// Whether the engine races HTTP/3 (QUIC) first.
    pub attempts_h3: bool,
    /// Domains the app pins certificates for (these flows escape the
    /// MITM — footnote 3).
    pub pinned_domains: &'static [&'static str],
    /// PII fields this vendor transmits (Table 2 row).
    pub pii_fields: &'static [PiiField],
    /// Key under which the vendor stores its persistent identifier, if
    /// it uses one (Yandex).
    pub persistent_id_key: Option<&'static str>,
    /// Whether the browser injects a JavaScript snippet into every page
    /// that exfiltrates via *engine* traffic (UC International, §3.2).
    pub injects_js_collector: Option<&'static str>,
    /// Whether declining the setup wizard's telemetry prompt actually
    /// silences the vendor's [`Payload::Telemetry`] calls. The paper's
    /// Listing 1 shows the other case: Opera's ad SDK fires with
    /// `"userConsent":"false"` — consent recorded, not honoured.
    pub honors_telemetry_consent: bool,
    /// Native requests at app launch.
    pub startup: &'static [NativeCall],
    /// Native requests on every page visit.
    pub per_visit: &'static [NativeCall],
    /// Idle-time behaviour.
    pub idle: IdleProfile,
}

impl BrowserProfile {
    /// True when this browser reports the page the user visits (any
    /// granularity) to a remote server.
    pub fn reports_history(&self) -> bool {
        self.per_visit.iter().any(|c| {
            matches!(
                c.payload,
                Payload::FullUrlBase64 { .. }
                    | Payload::FullUrlPlain { .. }
                    | Payload::HostnamePlusId { .. }
                    | Payload::DomainOnly { .. }
            )
        }) || self.injects_js_collector.is_some()
    }

    /// True when the browser leaks the *full URL* (path + query), the
    /// distinction §4 emphasizes over domain-only leaks.
    pub fn reports_full_url(&self) -> bool {
        self.per_visit.iter().any(|c| {
            matches!(c.payload, Payload::FullUrlBase64 { .. } | Payload::FullUrlPlain { .. })
        }) || self.injects_js_collector.is_some()
    }

    /// Whether the profile leaks a given Table 2 field.
    pub fn leaks(&self, field: PiiField) -> bool {
        self.pii_fields.contains(&field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pii_all_has_twelve_distinct_labels() {
        let labels: Vec<&str> = PiiField::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), 12);
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn ping_constructor_defaults() {
        let call = NativeCall::ping("h.com", "/p");
        assert_eq!(call.method, Method::Get);
        assert_eq!(call.payload, Payload::None);
        assert_eq!(call.count, 1);
        assert!(!call.respects_incognito);
    }

    #[test]
    fn history_classification() {
        const LEAKY: &[NativeCall] = &[NativeCall {
            host: "sba.yandex.net",
            path: "/r",
            method: Method::Get,
            payload: Payload::FullUrlBase64 { param: "url" },
            body_pad: 0,
            count: 1,
            respects_incognito: false,
        }];
        let profile = BrowserProfile {
            name: "Test",
            version: "1",
            package: "t",
            instrumentation: Instrumentation::Cdp,
            supports_incognito: true,
            resolver: ResolverKind::LocalStub,
            adblock: false,
            attempts_h3: false,
            pinned_domains: &[],
            pii_fields: &[],
            persistent_id_key: None,
            injects_js_collector: None,
            honors_telemetry_consent: false,
            startup: &[],
            per_visit: LEAKY,
            idle: IdleProfile::QUIET,
        };
        assert!(profile.reports_history());
        assert!(profile.reports_full_url());
        let quiet = BrowserProfile { per_visit: &[], ..profile };
        assert!(!quiet.reports_history());
    }
}
