//! Robustness to the workload seed: the paper's *qualitative* findings
//! must not depend on which synthetic web was generated. Two disjoint
//! seeds produce different sites, different page structures and
//! different identifiers — and identical conclusions.

use panoptes_suite::analysis::dns::doh_split;
use panoptes_suite::analysis::history::{summarize_leaks, LeakGranularity};
use panoptes_suite::analysis::pii::table2;
use panoptes_suite::analysis::study::run_full_crawl;
use panoptes_suite::device::DeviceProperties;
use panoptes_suite::panoptes::campaign::CampaignResult;
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

fn study(seed: u64) -> Vec<CampaignResult> {
    let world = World::build(&GeneratorConfig { popular: 6, sensitive: 4, seed, tail: 0 });
    let config = CampaignConfig { seed, ..Default::default() };
    run_full_crawl(&world, &world.sites, &config)
}

#[test]
fn qualitative_findings_are_seed_invariant() {
    let seed_a = study(0xA11CE);
    let seed_b = study(0xB0B);

    // The generated webs differ...
    let url_a = &seed_a[0].visits[5].url;
    let url_b = &seed_b[0].visits[5].url;
    assert_eq!(url_a, url_b, "site names are seed-independent by design");
    // ...but identifiers and page structures differ:
    assert_ne!(
        seed_a[0].store.export_jsonl(),
        seed_b[0].store.export_jsonl(),
        "captures must differ across seeds"
    );

    for (a, b) in seed_a.iter().zip(&seed_b) {
        assert_eq!(a.profile.name, b.profile.name);
        let la = summarize_leaks(a);
        let lb = summarize_leaks(b);
        assert_eq!(la.worst, lb.worst, "{}: leak class flipped across seeds", a.profile.name);
        assert_eq!(
            la.destinations, lb.destinations,
            "{}: destinations changed",
            a.profile.name
        );
        assert_eq!(la.persistent, lb.persistent, "{}", a.profile.name);
        assert_eq!(la.via_injection, lb.via_injection, "{}", a.profile.name);
    }

    // The DoH split and the Table 2 matrix are identical too.
    let (_, doh_a, stub_a) = doh_split(&seed_a);
    let (_, doh_b, stub_b) = doh_split(&seed_b);
    assert_eq!((doh_a, stub_a), (doh_b, stub_b));

    let props = DeviceProperties::testbed_tablet();
    let t2_a = table2(&seed_a, &props);
    let t2_b = table2(&seed_b, &props);
    for (ra, rb) in t2_a.iter().zip(&t2_b) {
        let fields_a: Vec<_> = ra.leaked.iter().map(|(f, _)| *f).collect();
        let fields_b: Vec<_> = rb.leaked.iter().map(|(f, _)| *f).collect();
        assert_eq!(fields_a, fields_b, "{}: Table 2 row changed across seeds", ra.browser);
    }
}

#[test]
fn yandex_identifier_differs_across_seeds_but_class_does_not() {
    // The persistent identifier is per-install (seeded), so two installs
    // carry different IDs — yet both are detected as persistent tracking.
    let a = study(1);
    let b = study(2);
    let find_id = |results: &[CampaignResult]| -> String {
        results
            .iter()
            .find(|r| r.profile.name == "Yandex")
            .and_then(|r| {
                panoptes_suite::analysis::history::detect_history_leaks(r)
                    .into_iter()
                    .find_map(|l| l.persistent_id)
            })
            .expect("yandex id detected")
    };
    let id_a = find_id(&a);
    let id_b = find_id(&b);
    assert_ne!(id_a, id_b, "different installs, different identifiers");
    assert_eq!(id_a.len(), 64);
    // And the granularity classification is stable.
    for results in [&a, &b] {
        let yandex = results.iter().find(|r| r.profile.name == "Yandex").unwrap();
        assert_eq!(summarize_leaks(yandex).worst, Some(LeakGranularity::FullUrl));
    }
}
