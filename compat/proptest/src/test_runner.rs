//! The deterministic case runner behind the `proptest!` macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config { cases }
    }
}

/// The generator handed to strategies. Deterministic per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform draw in `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        use rand::Rng;
        assert!(n > 0, "below(0)");
        self.0.gen_range(0..n)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Runs `body` once per case with a deterministic per-case generator.
/// On panic, reports the test name, case index, and seed, then rethrows.
pub fn run<F: FnMut(&mut TestRng)>(name: &str, config: &Config, mut body: F) {
    let base = fnv1a(name);
    for case in 0..config.cases {
        let seed = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!(
                "proptest property '{name}' failed at case {case}/{} (seed {seed:#018x})",
                config.cases
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic_per_case() {
        let mut first: Vec<u64> = Vec::new();
        run("runner_det", &Config::with_cases(5), |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        run("runner_det", &Config::with_cases(5), |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
        // Distinct cases see distinct streams.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn failing_case_reports_and_rethrows() {
        let result = std::panic::catch_unwind(|| {
            run("runner_fail", &Config::with_cases(3), |_| panic!("expected"));
        });
        assert!(result.is_err());
    }
}
