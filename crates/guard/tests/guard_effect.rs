//! The countermeasure evaluation: the measure → derive policy → enforce
//! loop. A Panoptes study identifies the leaks; its findings compile into
//! a [`GuardPolicy`]; the same browsers then crawl clean.

use std::sync::Arc;

use panoptes::campaign::{run_crawl, run_crawl_with, CampaignResult};
use panoptes::config::CampaignConfig;
use panoptes_analysis::addomains::ad_domain_row;
use panoptes_analysis::history::{detect_history_leaks, leaks_anything};
use panoptes_analysis::pii::pii_row;
use panoptes_browsers::registry::profile_by_name;
use panoptes_browsers::BrowserProfile;
use panoptes_device::DeviceProperties;
use panoptes_guard::{GuardAddon, GuardPolicy};
use panoptes_mitm::FlowClass;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

fn world() -> World {
    World::build(&GeneratorConfig { popular: 8, sensitive: 6, ..Default::default() })
}

/// Device PII values the redaction policy scrubs (what a deployment
/// would read from its own device).
fn pii_values() -> Vec<String> {
    GuardPolicy::pii_values(&DeviceProperties::testbed_tablet())
}

fn crawl_guarded(
    world: &World,
    profile: &BrowserProfile,
    policy: GuardPolicy,
) -> (CampaignResult, Arc<GuardAddon>) {
    let guard = Arc::new(GuardAddon::new(policy));
    let handle = guard.clone();
    let result = run_crawl_with(
        world,
        profile,
        &world.sites,
        &CampaignConfig::default(),
        move |proxy| proxy.install_addon(Box::new(handle)),
    );
    (result, guard)
}

#[test]
fn measure_then_enforce_eliminates_yandex_leaks() {
    let w = world();
    let yandex = profile_by_name("Yandex").unwrap();

    // 1. Measure: the unguarded crawl finds the leaks.
    let unguarded = run_crawl(&w, &yandex, &w.sites, &CampaignConfig::default());
    let leaks = detect_history_leaks(&unguarded);
    assert!(!leaks.is_empty());

    // 2. Compile the findings into a policy.
    let mut policy = GuardPolicy::strict(&[], &pii_values());
    for leak in &leaks {
        policy.block_endpoint(&leak.destination);
    }

    // 3. Enforce: the guarded crawl leaks nothing.
    let (guarded, guard) = crawl_guarded(&w, &yandex, policy);
    assert!(
        !leaks_anything(&guarded),
        "leaks survived the guard: {:?}",
        detect_history_leaks(&guarded)
    );
    assert!(guard.stats().blocked as usize >= w.sites.len(), "one sba block per visit at least");
    // Blocked flows are visible in the capture as such.
    assert!(!guarded.store.by_class(FlowClass::Blocked).is_empty());
}

#[test]
fn redaction_alone_stops_qq_without_blocking() {
    let w = world();
    let qq = profile_by_name("QQ").unwrap();
    // No blocking: only history redaction. The wup report still reaches
    // its vendor, but the URL parameter is scrubbed.
    let policy = GuardPolicy {
        redact_history: true,
        ..GuardPolicy::none()
    };
    let (guarded, guard) = crawl_guarded(&w, &qq, policy);
    assert!(!leaks_anything(&guarded), "{:?}", detect_history_leaks(&guarded));
    assert!(guard.stats().redacted_values as usize >= w.sites.len());
    assert_eq!(guard.stats().blocked, 0);
    // The vendor endpoint still received (sanitized) requests.
    let wup = guarded
        .store
        .native_flows()
        .into_iter()
        .filter(|f| f.host == "wup.browser.qq.com")
        .count();
    assert_eq!(wup, w.sites.len());
}

#[test]
fn hosts_list_blocking_cleans_kiwi_ad_traffic() {
    let w = world();
    let kiwi = profile_by_name("Kiwi").unwrap();
    let unguarded = run_crawl(&w, &kiwi, &w.sites, &CampaignConfig::default());
    assert!(ad_domain_row(&unguarded).ad_percent > 30.0);

    let (guarded, _) = crawl_guarded(&w, &kiwi, GuardPolicy::strict(&[], &[]));
    let row = ad_domain_row(&guarded);
    assert_eq!(row.ad_percent, 0.0, "surviving ad hosts: {:?}", row.ad_hosts);
    // Utility traffic is untouched.
    assert!(guarded
        .store
        .native_flows()
        .iter()
        .any(|f| f.host == "update.kiwibrowser.com"));
}

#[test]
fn pii_redaction_clears_the_whale_table2_row() {
    let w = world();
    let whale = profile_by_name("Whale").unwrap();
    let props = DeviceProperties::testbed_tablet();

    let unguarded = run_crawl(&w, &whale, &w.sites, &CampaignConfig::default());
    assert!(!pii_row(&unguarded, &props).leaked.is_empty());

    // Scrub every Table 2 value the device knows about itself.
    let policy =
        GuardPolicy { redact_values: GuardPolicy::pii_values(&props), ..GuardPolicy::none() };
    let (guarded, guard) = crawl_guarded(&w, &whale, policy);
    let row = pii_row(&guarded, &props);
    assert!(row.leaked.is_empty(), "still leaking: {:?}", row.leaked);
    assert!(guard.stats().redacted_values > 0);
}

#[test]
fn guard_does_not_break_the_web() {
    // Engine traffic must be fully unaffected even under the strictest
    // policy — the guard scopes to native flows.
    let w = world();
    let chrome = profile_by_name("Chrome").unwrap();
    let unguarded = run_crawl(&w, &chrome, &w.sites, &CampaignConfig::default());
    let (guarded, _) = crawl_guarded(&w, &chrome, GuardPolicy::strict(&[], &pii_values()));
    assert_eq!(
        unguarded.store.engine_flows().len(),
        guarded.store.engine_flows().len(),
        "page loads changed under guard"
    );
    // DoH browsers keep resolving.
    let edge = profile_by_name("Edge").unwrap();
    let (guarded_edge, _) = crawl_guarded(&w, &edge, GuardPolicy::strict(&[], &[]));
    assert!(guarded_edge
        .store
        .native_flows()
        .iter()
        .any(|f| f.host == "cloudflare-dns.com"));
}
