//! Figure 5 and §3.5: idle-time native activity.
//!
//! Figure 5 plots, per browser, the cumulative number of native requests
//! over a 10-minute idle window: "the activity of most browsers grows
//! exponentially within the first minute ... before they reach a
//! relative plateau", with Opera's News feed producing a linear climb.
//! §3.5 additionally reports destination shares (Dolphin: 46% to
//! Facebook Graph; Mint 8%; CocCoc 6.7% to adjust.com; Opera 21.9% to
//! doubleclick.net and 1.7% to appsflyer).

use std::collections::BTreeMap;

use panoptes::idle::IdleResult;
use panoptes_http::url::registrable_domain;
use panoptes_mitm::{Flow, FlowClass};
use panoptes_simnet::clock::SimDuration;

/// One browser's Figure 5 series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleTimeline {
    /// Browser name.
    pub browser: String,
    /// Bucket width in seconds.
    pub bucket_secs: u64,
    /// `(end-of-bucket second, cumulative native requests)` samples.
    pub cumulative: Vec<(u64, u64)>,
}

impl IdleTimeline {
    /// Cumulative count at the end of the window.
    pub fn total(&self) -> u64 {
        self.cumulative.last().map(|(_, n)| *n).unwrap_or(0)
    }

    /// Cumulative count at (or before) `secs` into the window.
    pub fn at(&self, secs: u64) -> u64 {
        self.cumulative
            .iter()
            .take_while(|(t, _)| *t <= secs)
            .map(|(_, n)| *n)
            .last()
            .unwrap_or(0)
    }

    /// The "front-loading" of the curve: fraction of all requests that
    /// landed in the first minute. Burst-then-plateau browsers score
    /// high; Opera's linear feed scores near `60/duration`.
    pub fn first_minute_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.at(60) as f64 / total as f64
    }
}

/// Mergeable accumulator form of the idle detectors: per-second offset
/// counts feed [`IdlePartial::timeline`], per-domain counts feed
/// [`IdlePartial::destination_shares`] — both derived from one pass over
/// the capture instead of one pass each.
///
/// The asymmetry of the legacy detectors is preserved deliberately: the
/// timeline drops flows past the idle window, while destination shares
/// count every in-window-or-later native flow (matching `timeline` /
/// `destination_shares` exactly, bucket for bucket and byte for byte).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdlePartial {
    /// Seconds-since-idle-start → native flow count (no upper bound).
    offsets: BTreeMap<u64, u64>,
    /// Registrable destination domain → native flow count.
    domains: BTreeMap<String, u64>,
    /// All native flows at or after idle start.
    total: u64,
}

impl IdlePartial {
    /// Folds one captured flow into the accumulator. `start_us` is the
    /// idle window's start timestamp; launch traffic before it is
    /// excluded.
    pub fn observe(&mut self, flow: &Flow, start_us: u64) {
        if flow.class != FlowClass::Native || flow.time_us < start_us {
            return;
        }
        let offset_secs = (flow.time_us - start_us) / 1_000_000;
        *self.offsets.entry(offset_secs).or_default() += 1;
        *self.domains.entry(registrable_domain(&flow.host)).or_default() += 1;
        self.total += 1;
    }

    /// Absorbs a later shard's accumulator.
    pub fn merge(&mut self, other: IdlePartial) {
        for (offset, n) in other.offsets {
            *self.offsets.entry(offset).or_default() += n;
        }
        for (domain, n) in other.domains {
            *self.domains.entry(domain).or_default() += n;
        }
        self.total += other.total;
    }

    /// Finalises the Figure 5 cumulative timeline at `bucket` width over
    /// an idle window of `duration`.
    pub fn timeline(&self, browser: &str, bucket: SimDuration, duration: SimDuration) -> IdleTimeline {
        let bucket_secs = bucket.as_secs().max(1);
        let total_secs = duration.as_secs();
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for (&offset_secs, &n) in &self.offsets {
            if offset_secs > total_secs {
                continue;
            }
            let bucket_end = ((offset_secs / bucket_secs) + 1) * bucket_secs;
            *counts.entry(bucket_end).or_default() += n;
        }
        let mut cumulative = Vec::new();
        let mut running = 0u64;
        let mut t = bucket_secs;
        while t <= total_secs {
            running += counts.get(&t).copied().unwrap_or(0);
            cumulative.push((t, running));
            t += bucket_secs;
        }
        IdleTimeline { browser: browser.to_string(), bucket_secs, cumulative }
    }

    /// Finalises the §3.5 destination shares, largest first.
    pub fn destination_shares(&self) -> Vec<DestinationShare> {
        let total = self.total;
        let mut shares: Vec<DestinationShare> = self
            .domains
            .iter()
            .map(|(domain, &count)| DestinationShare {
                domain: domain.clone(),
                count,
                percent: if total == 0 { 0.0 } else { 100.0 * count as f64 / total as f64 },
            })
            .collect();
        shares.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.domain.cmp(&b.domain)));
        shares
    }
}

/// Builds the accumulator for one idle capture (one pass).
fn idle_partial(result: &IdleResult) -> IdlePartial {
    let mut partial = IdlePartial::default();
    let start = result.idle_start.0;
    for flow in result.store.snapshot().iter() { // multipass-ok: legacy standalone detector
        partial.observe(flow, start);
    }
    partial
}

/// Buckets an idle capture into a cumulative timeline. Only flows inside
/// the idle window count (launch traffic is excluded).
pub fn timeline(result: &IdleResult, bucket: SimDuration) -> IdleTimeline {
    idle_partial(result).timeline(&result.profile.name, bucket, result.duration)
}

/// One destination's share of a browser's idle natives (§3.5).
#[derive(Debug, Clone, PartialEq)]
pub struct DestinationShare {
    /// Registrable domain of the destination.
    pub domain: String,
    /// Requests to it during the idle window.
    pub count: u64,
    /// Share of all idle natives, in percent.
    pub percent: f64,
}

/// Destination shares of the idle window, largest first.
pub fn destination_shares(result: &IdleResult) -> Vec<DestinationShare> {
    idle_partial(result).destination_shares()
}

/// Convenience: one domain's share in percent.
pub fn share_of(result: &IdleResult, domain: &str) -> f64 {
    destination_shares(result)
        .into_iter()
        .find(|s| s.domain == domain)
        .map(|s| s.percent)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::config::CampaignConfig;
    use panoptes::idle::run_idle;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    fn idle(name: &str) -> IdleResult {
        let world =
            World::build(&GeneratorConfig { popular: 3, sensitive: 2, ..Default::default() });
        run_idle(
            &world,
            &profile_by_name(name).unwrap(),
            SimDuration::from_secs(600),
            &CampaignConfig::default(),
        )
    }

    #[test]
    fn burst_browsers_are_front_loaded_opera_is_linear() {
        let edge = timeline(&idle("Edge"), SimDuration::from_secs(10));
        let opera = timeline(&idle("Opera"), SimDuration::from_secs(10));
        assert!(edge.total() > 0 && opera.total() > 0);
        // Edge: burst + slow plateau ⇒ clearly front-loaded relative to
        // uniform (60s/600s = 10%).
        assert!(
            edge.first_minute_share() > 0.2,
            "edge share {}",
            edge.first_minute_share()
        );
        // Opera: dominated by the constant news cadence ⇒ near-uniform.
        assert!(
            opera.first_minute_share() < 0.2,
            "opera share {}",
            opera.first_minute_share()
        );
        // Cumulative curves never decrease.
        for w in opera.cumulative.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn dolphin_share_matches_paper() {
        let result = idle("Dolphin");
        let share = share_of(&result, "facebook.com");
        assert!(
            (40.0..=52.0).contains(&share),
            "Dolphin → Facebook Graph ≈46%, got {share:.1}"
        );
    }

    #[test]
    fn opera_ad_shares_match_paper() {
        let result = idle("Opera");
        let dc = share_of(&result, "doubleclick.net");
        let af = share_of(&result, "appsflyer.com");
        assert!((17.0..=27.0).contains(&dc), "doubleclick ≈21.9%, got {dc:.1}");
        assert!((0.5..=4.0).contains(&af), "appsflyer ≈1.7%, got {af:.1}");
    }

    #[test]
    fn coccoc_adjust_share_matches_paper() {
        let result = idle("CocCoc");
        let share = share_of(&result, "adjust.com");
        assert!((3.0..=11.0).contains(&share), "adjust ≈6.7%, got {share:.1}");
    }
}
