//! The study server's headline guarantee, enforced end-to-end over
//! real TCP: the bytes a served study streams (concatenated
//! `header`/`section` event payloads) are **identical** to what the
//! offline `repro` pipeline prints for the same parameters — for
//! concurrent requests with distinct seeds, whichever offline worker
//! count (`--jobs 1` or `--jobs 8`) is used as the reference — and a
//! client that disconnects mid-stream neither poisons the shared
//! cache nor leaks worker-pool lanes.

use std::time::{Duration, Instant};

use panoptes::campaign::CampaignResult;
use panoptes::fleet::{self, FleetOptions, FleetUnit, UnitOutput};
use panoptes_analysis::engine::{analyze_crawl, analyze_idle, AnalysisResources};
use panoptes_bench::experiments::{crawl_population_jobs, idle_population_jobs};
use panoptes_bench::render;
use panoptes_browsers::registry::profile_by_name;
use panoptes_serve::client;
use panoptes_serve::server::{self, ServerConfig};
use panoptes_serve::study::StudyParams;

/// A small-but-complete study: every section renders, runs in
/// milliseconds.
fn params(seed: u64) -> StudyParams {
    StudyParams { seed, popular: 6, sensitive: 4, tail: 0, population: 5, idle_secs: 60 }
}

fn query(p: &StudyParams) -> String {
    format!(
        "/study?seed={:#x}&popular={}&sensitive={}&population={}&idle={}",
        p.seed, p.popular, p.sensitive, p.population, p.idle_secs
    )
}

/// The offline reference: the exact flow `repro --jobs N` takes
/// (fleet crawls, fused analysis, the three §3.2 incognito re-crawl
/// pairs, the idle experiment), rendered through the shared document
/// builders.
fn offline_doc(p: &StudyParams, jobs: usize) -> String {
    let scale = p.scale();
    let options = FleetOptions::with_jobs(jobs);
    let res = AnalysisResources::standard();
    let (world, results) =
        crawl_population_jobs(&scale, &options, p.population).expect("offline crawl fleet");
    let crawl_analyses: Vec<_> = results.iter().map(|r| analyze_crawl(r, &res)).collect();

    let config = scale.config();
    let incog = config.clone().incognito();
    let browsers = ["Edge", "Opera", "UC International"];
    let units: Vec<FleetUnit> = browsers
        .iter()
        .map(|name| profile_by_name(name).expect("pinned browser"))
        .flat_map(|prof| {
            [FleetUnit::crawl(prof.clone()), FleetUnit::crawl(prof).with_config(incog.clone())]
        })
        .collect();
    let outputs = fleet::run_units(&world, &world.sites, &config, &units, &options)
        .expect("offline incognito fleet");
    let crawls: Vec<CampaignResult> =
        outputs.into_iter().filter_map(UnitOutput::into_crawl).collect();
    let pairs: Vec<_> = crawls
        .chunks(2)
        .map(|pair| (analyze_crawl(&pair[0], &res), analyze_crawl(&pair[1], &res)))
        .collect();

    let idles = idle_population_jobs(&scale, &options, p.population).expect("offline idle fleet");
    let idle_analyses: Vec<_> = idles.iter().map(analyze_idle).collect();

    render::full_doc(&scale, &results, &crawl_analyses, &pairs, &idle_analyses)
}

#[test]
fn concurrent_served_studies_match_offline_repro_at_jobs_1_and_8() {
    let seeds = [0x51u64, 0x52, 0x53];

    // Offline references, sequential (`--jobs 1`) and eight-worker
    // (`--jobs 8`): already byte-identical to each other, and the
    // bytes the server must reproduce.
    let references: Vec<String> = seeds
        .iter()
        .map(|&seed| {
            let p = params(seed);
            let sequential = offline_doc(&p, 1);
            assert_eq!(
                sequential,
                offline_doc(&p, 8),
                "offline jobs=1 vs jobs=8 diverged at seed {seed:#x}"
            );
            sequential
        })
        .collect();

    let handle = server::spawn(
        0,
        ServerConfig { workers: 3, cache_budget: Some(64 << 20), ..ServerConfig::default() },
    )
    .expect("bind study server");
    let addr = handle.addr;

    // Two concurrent requests per seed: exercises cross-study pool
    // interleaving AND whole-document single-flight (the second
    // request for a seed replays the first's document).
    let clients: Vec<_> = seeds
        .iter()
        .flat_map(|&seed| [seed, seed])
        .map(|seed| {
            std::thread::spawn(move || {
                (seed, client::collect_study(addr, &query(&params(seed))))
            })
        })
        .collect();
    for thread in clients {
        let (seed, capture) = thread.join().expect("client thread");
        let capture = capture.expect("served study completes");
        let reference =
            &references[seeds.iter().position(|&s| s == seed).expect("known seed")];
        assert_eq!(
            &capture.doc, reference,
            "served bytes diverged from offline repro at seed {seed:#x}"
        );
    }
    handle.shutdown();
}

#[test]
fn sse_framing_carries_the_same_bytes() {
    let p = params(0x5E);
    let reference = offline_doc(&p, 1);
    let handle = server::spawn(0, ServerConfig { workers: 2, ..ServerConfig::default() })
        .expect("bind study server");
    let capture = client::collect_study(handle.addr, &format!("{}&format=sse", query(&p)))
        .expect("served study completes");
    assert_eq!(capture.doc, reference, "SSE-framed bytes diverged from offline repro");
    handle.shutdown();
}

#[test]
fn mid_stream_disconnect_does_not_poison_cache_or_leak_pool_slots() {
    let p = params(0xD15C);
    let reference = offline_doc(&p, 1);
    let handle = server::spawn(
        0,
        ServerConfig { workers: 2, cache_budget: Some(64 << 20), ..ServerConfig::default() },
    )
    .expect("bind study server");
    let addr = handle.addr;

    // Connect, read a couple of events, hang up mid-stream.
    {
        let mut stream = client::open_stream(addr, &query(&p)).expect("open stream");
        assert_eq!(stream.status(), 200);
        let first = stream.next_event().expect("first event").expect("header event");
        assert!(first.contains("\"event\":\"header\""), "stream starts with the header");
        let _ = stream.next_event();
        // Dropping the stream closes the socket: the server's next
        // event write fails and the study's lane is cancelled.
    }

    // The no-leak invariant: the cancelled study's lane drains and is
    // reaped; nothing stays queued. Polled because cancellation is
    // detected on the server's next write after the hangup.
    let settle_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let engine = handle.engine();
        if engine.lanes() == 0 && engine.queue_depth() == 0 {
            break;
        }
        assert!(
            Instant::now() < settle_deadline,
            "disconnected study failed to settle: {} lanes, {} queued",
            engine.lanes(),
            engine.queue_depth()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The no-poison invariant: the aborted build abandoned its cache
    // slot, so a retry rebuilds from scratch (not a cache replay) and
    // still streams the exact offline bytes.
    let retry = client::collect_study(addr, &query(&p)).expect("retry completes");
    assert!(!retry.cached, "half-built study must not have been cached");
    assert_eq!(retry.doc, reference, "post-disconnect retry diverged from offline repro");

    // And the rebuilt document IS cached for the next request.
    let replay = client::collect_study(addr, &query(&p)).expect("replay completes");
    assert!(replay.cached, "completed study should replay from the document cache");
    assert_eq!(replay.doc, reference);
    handle.shutdown();
}
