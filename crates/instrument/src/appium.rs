//! An Appium-like app lifecycle driver.
//!
//! §2.1: "Before starting every crawling campaign, we reset the browser
//! application to its default factory settings using Appium. Then, we
//! start each browser using Frida and go through the setup wizard
//! manually to test various configurations."

use panoptes_device::PackageManager;

/// Setup-wizard choices a campaign can make (the "various
/// configurations" of §2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WizardConfig {
    /// Accept the vendor's telemetry/personalization prompt.
    pub accept_telemetry: bool,
    /// Decline making it the default browser and other upsells.
    pub skip_upsells: bool,
}

impl Default for WizardConfig {
    fn default() -> Self {
        // The deliberately ordinary configuration: a user tapping through.
        WizardConfig { accept_telemetry: true, skip_upsells: true }
    }
}

/// Drives app lifecycle operations against the device.
#[derive(Debug, Default)]
pub struct AppiumDriver {
    log: Vec<String>,
}

impl AppiumDriver {
    /// A fresh driver.
    pub fn new() -> AppiumDriver {
        AppiumDriver::default()
    }

    /// Factory-resets `package`. Returns false when it is not installed.
    pub fn reset_app(&mut self, pm: &mut PackageManager, package: &str) -> bool {
        let ok = pm.factory_reset(package);
        self.log.push(format!("reset {package} -> {ok}"));
        ok
    }

    /// Completes the first-run wizard, persisting the choices into the
    /// app's data store. Returns false when the app is not installed.
    pub fn complete_wizard(
        &mut self,
        pm: &mut PackageManager,
        package: &str,
        config: &WizardConfig,
    ) -> bool {
        let Some(data) = pm.data_mut(package) else {
            return false;
        };
        data.set_pref("wizard-complete", "true");
        data.set_pref(
            "telemetry-consent",
            if config.accept_telemetry { "granted" } else { "denied" },
        );
        self.log.push(format!("wizard {package}"));
        true
    }

    /// The action log (diagnostics).
    pub fn log(&self) -> &[String] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_and_wizard_flow() {
        let mut pm = PackageManager::new();
        pm.install("com.opera.browser");
        pm.data_mut("com.opera.browser").unwrap().set_pref("stale", "1");

        let mut driver = AppiumDriver::new();
        assert!(driver.reset_app(&mut pm, "com.opera.browser"));
        assert_eq!(pm.app("com.opera.browser").unwrap().data.pref("stale"), None);

        assert!(driver.complete_wizard(&mut pm, "com.opera.browser", &WizardConfig::default()));
        let data = &pm.app("com.opera.browser").unwrap().data;
        assert_eq!(data.pref("wizard-complete"), Some("true"));
        assert_eq!(data.pref("telemetry-consent"), Some("granted"));
        assert_eq!(driver.log().len(), 2);
    }

    #[test]
    fn missing_package_fails_cleanly() {
        let mut pm = PackageManager::new();
        let mut driver = AppiumDriver::new();
        assert!(!driver.reset_app(&mut pm, "absent"));
        assert!(!driver.complete_wizard(&mut pm, "absent", &WizardConfig::default()));
    }

    #[test]
    fn declined_telemetry_recorded() {
        let mut pm = PackageManager::new();
        pm.install("p");
        let mut driver = AppiumDriver::new();
        let config = WizardConfig { accept_telemetry: false, skip_upsells: true };
        driver.complete_wizard(&mut pm, "p", &config);
        assert_eq!(pm.app("p").unwrap().data.pref("telemetry-consent"), Some("denied"));
    }
}
