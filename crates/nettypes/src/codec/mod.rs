//! Binary-to-text codecs used throughout the measurement pipeline.
//!
//! The paper observed the Yandex browser Base64-encoding the visited URL
//! inside a query parameter of its phone-home request (§3.2), so the
//! analysis side needs both encoding (to build realistic browser traffic)
//! and decoding (to detect such leaks). Percent-encoding is required for
//! URL query serialization, and hex for identifier rendering.

pub mod base64;
pub mod hex;
pub mod percent;

pub use base64::{b64_decode, b64_decode_url, b64_encode, b64_encode_url};
pub use hex::{hex_decode, hex_encode};
pub use percent::{percent_decode, percent_encode, percent_encode_component};
