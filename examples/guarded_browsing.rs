//! The measure → enforce loop: run a Panoptes study, compile its
//! findings into a guard policy, and show the same browser crawling
//! clean — the countermeasure §4 of the paper says content blockers
//! cannot provide.
//!
//! ```text
//! cargo run --release --example guarded_browsing -- Yandex
//! ```

use panoptes_suite::analysis::history::{detect_history_leaks, leaks_anything};
use panoptes_suite::analysis::pii::pii_row;
use panoptes_suite::browsers::registry::profile_by_name;
use panoptes_suite::device::DeviceProperties;
use panoptes_suite::guard::{GuardAddon, GuardPolicy};
use panoptes_suite::mitm::FlowClass;
use panoptes_suite::panoptes::campaign::{run_crawl, run_crawl_with};
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Yandex".to_string());
    let profile = profile_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown browser {name:?}");
        std::process::exit(2);
    });
    let world = World::build(&GeneratorConfig { popular: 20, sensitive: 12, ..Default::default() });
    let config = CampaignConfig::default();
    let props = DeviceProperties::testbed_tablet();

    // Phase 1 — measure.
    println!("== phase 1: measurement crawl ({}) ==", profile.name);
    let unguarded = run_crawl(&world, &profile, &world.sites, &config);
    let leaks = detect_history_leaks(&unguarded);
    for l in &leaks {
        println!("  leak: {} [{}]", l.destination, l.granularity.as_str());
    }
    let pii = pii_row(&unguarded, &props);
    for (field, dest) in &pii.leaked {
        println!("  pii : {} -> {}", field.label(), dest);
    }
    if leaks.is_empty() && pii.leaked.is_empty() {
        println!("  nothing to enforce against — {} is clean", profile.name);
        return;
    }

    // Phase 2 — compile the findings into a policy.
    let mut policy = GuardPolicy::strict_for_device(&[], &props);
    for leak in &leaks {
        policy.block_endpoint(&leak.destination);
    }
    println!(
        "\n== phase 2: policy — {} blocked endpoints, hosts-list blocking, history+PII redaction ==",
        policy.block_endpoints.len()
    );

    // Phase 3 — enforce.
    println!("\n== phase 3: guarded crawl ==");
    let guarded = run_crawl_with(&world, &profile, &world.sites, &config, move |proxy| {
        proxy.install_addon(Box::new(GuardAddon::new(policy)));
    });
    let blocked = guarded.store.by_class(FlowClass::Blocked).len();
    println!("  blocked native requests : {blocked}");
    println!(
        "  history leaks remaining : {}",
        if leaks_anything(&guarded) { "SOME — policy incomplete!" } else { "none" }
    );
    let pii_after = pii_row(&guarded, &props);
    println!("  pii fields remaining    : {}", pii_after.leaked.len());
    println!(
        "  page loads unaffected   : {} engine flows (vs {} unguarded)",
        guarded.store.engine_flows().len(),
        unguarded.store.engine_flows().len()
    );
}
