//! The propagatable trace context: which request this thread is
//! currently serving.
//!
//! Thread-locals do not cross thread boundaries, and the serve path
//! crosses several on every request — the admission queue, the cache's
//! single-flight builds, the worker pool's per-study lanes, the
//! analysis engine's shards, and the chunked stream writer. A
//! [`TraceCtx`] is the **copyable** capsule that is handed across each
//! of those boundaries explicitly: the spawning side captures
//! [`current`] into the closure it ships, the receiving side
//! re-installs it with [`enter`], and every trace event recorded while
//! a context is installed is stamped with the request id it served
//! (and, for span starts, the parent span on the far side of the
//! hand-off).
//!
//! The whole module is allocation-free by construction — a context is
//! two `u64`s in a `Copy` struct, installed into a thread-local
//! `Cell` — so entering/leaving a context costs a couple of
//! thread-local stores whether or not the trace layer is enabled
//! (enforced by the `check_no_cloning.sh` trace-hot-path gate).

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// The copyable per-request trace context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The request id every event recorded under this context carries.
    pub request: u64,
    /// The span on the spawning side of the last thread hand-off
    /// (0 = none yet): span starts recorded under this context carry it
    /// as their `parent`, which is what lets a trace reader stitch a
    /// pool worker's unit span back to the request span that queued it.
    pub parent_span: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// Mints a process-unique request id (dense, starting at 1).
pub fn next_request_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The context installed on the calling thread, if any. This is what a
/// spawning side captures into the closure it hands to another thread.
pub fn current() -> Option<TraceCtx> {
    CURRENT.try_with(Cell::get).unwrap_or(None)
}

/// Installs `ctx` on the calling thread; the returned guard restores
/// whatever was installed before when dropped (contexts nest).
pub fn enter(ctx: TraceCtx) -> CtxGuard {
    let prev = CURRENT.try_with(|c| c.replace(Some(ctx))).unwrap_or(None);
    CtxGuard { prev, _not_send: PhantomData }
}

/// Updates the installed context's `parent_span` in place (no-op when
/// no context is installed). Used right after opening a request's root
/// span, whose id cannot exist before the context does.
pub fn set_parent(span: u64) {
    let _ = CURRENT.try_with(|c| {
        if let Some(mut ctx) = c.get() {
            ctx.parent_span = span;
            c.set(Some(ctx));
        }
    });
}

/// Restores the previously installed context on drop. Deliberately
/// `!Send`: a guard must be dropped on the thread that created it.
pub struct CtxGuard {
    prev: Option<TraceCtx>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let _ = CURRENT.try_with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_installs_and_restores_on_drop() {
        assert_eq!(current(), None);
        {
            let _g = enter(TraceCtx { request: 7, parent_span: 3 });
            assert_eq!(current(), Some(TraceCtx { request: 7, parent_span: 3 }));
            {
                let _inner = enter(TraceCtx { request: 8, parent_span: 0 });
                assert_eq!(current().map(|c| c.request), Some(8));
            }
            assert_eq!(current().map(|c| c.request), Some(7), "contexts nest");
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn set_parent_updates_in_place() {
        let _g = enter(TraceCtx { request: 9, parent_span: 0 });
        set_parent(41);
        assert_eq!(current(), Some(TraceCtx { request: 9, parent_span: 41 }));
    }

    #[test]
    fn context_does_not_leak_across_threads() {
        let _g = enter(TraceCtx { request: 5, parent_span: 1 });
        let seen = std::thread::spawn(current).join().expect("worker");
        assert_eq!(seen, None, "contexts are handed across threads explicitly, never ambiently");
    }

    #[test]
    fn request_ids_are_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
    }
}
