//! CDP JSON-RPC framing.
//!
//! Real CDP speaks JSON-RPC over a WebSocket: commands carry an `id`,
//! `method` and `params`; the browser answers with matching `id`s and
//! emits unsolicited `method`+`params` events. The harness-facing
//! [`crate::cdp::CdpSession`] models the *semantics*; this module renders
//! and parses the wire frames, so captures of the instrumentation channel
//! itself look exactly like a real CDP transcript.

use panoptes_http::json::{self, Value};

use crate::cdp::{CdpCommand, CdpEvent};
use panoptes_simnet::clock::SimInstant;

/// A parse error for CDP frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcError(pub String);

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cdp rpc error: {}", self.0)
    }
}

impl std::error::Error for RpcError {}

fn err(m: &str) -> RpcError {
    RpcError(m.to_string())
}

/// Renders a command as a JSON-RPC frame with the given message id.
pub fn render_command(id: u64, command: &CdpCommand) -> String {
    let (method, params) = match command {
        CdpCommand::NetworkEnable => ("Network.enable", Value::Object(vec![])),
        CdpCommand::FetchEnable => ("Fetch.enable", Value::Object(vec![])),
        CdpCommand::PageNavigate(url) => {
            ("Page.navigate", Value::object(vec![("url", Value::str(url))]))
        }
    };
    json::to_string(&Value::object(vec![
        ("id", Value::from(id)),
        ("method", Value::str(method)),
        ("params", params),
    ]))
}

/// Parses a command frame back into `(id, command)`.
pub fn parse_command(frame: &str) -> Result<(u64, CdpCommand), RpcError> {
    let doc = json::parse(frame).map_err(|e| err(&e.to_string()))?;
    let id = doc.get("id").and_then(|v| v.as_i64()).ok_or_else(|| err("missing id"))? as u64;
    let method = doc
        .get("method")
        .and_then(|m| m.as_str())
        .ok_or_else(|| err("missing method"))?;
    let command = match method {
        "Network.enable" => CdpCommand::NetworkEnable,
        "Fetch.enable" => CdpCommand::FetchEnable,
        "Page.navigate" => {
            let url = doc
                .get("params")
                .and_then(|p| p.get("url"))
                .and_then(|u| u.as_str())
                .ok_or_else(|| err("Page.navigate without params.url"))?;
            CdpCommand::PageNavigate(url.to_string())
        }
        other => return Err(err(&format!("unknown method {other}"))),
    };
    Ok((id, command))
}

/// Renders an event as an unsolicited JSON-RPC notification.
pub fn render_event(event: &CdpEvent) -> String {
    let (method, params) = match event {
        CdpEvent::RequestWillBeSent { url, time } => (
            "Network.requestWillBeSent",
            Value::object(vec![
                ("documentURL", Value::str(url)),
                ("timestamp", Value::Number(time.0 as f64 / 1_000_000.0)),
            ]),
        ),
        CdpEvent::DomContentLoaded { time } => (
            "Page.domContentEventFired",
            Value::object(vec![("timestamp", Value::Number(time.0 as f64 / 1_000_000.0))]),
        ),
        CdpEvent::Load { time } => (
            "Page.loadEventFired",
            Value::object(vec![("timestamp", Value::Number(time.0 as f64 / 1_000_000.0))]),
        ),
    };
    json::to_string(&Value::object(vec![
        ("method", Value::str(method)),
        ("params", params),
    ]))
}

/// Parses an event notification.
pub fn parse_event(frame: &str) -> Result<CdpEvent, RpcError> {
    let doc = json::parse(frame).map_err(|e| err(&e.to_string()))?;
    let method = doc
        .get("method")
        .and_then(|m| m.as_str())
        .ok_or_else(|| err("missing method"))?;
    let params = doc.get("params").ok_or_else(|| err("missing params"))?;
    let time = params
        .get("timestamp")
        .and_then(|t| t.as_f64())
        .map(|secs| SimInstant((secs * 1_000_000.0).round() as u64))
        .ok_or_else(|| err("missing timestamp"))?;
    Ok(match method {
        "Network.requestWillBeSent" => CdpEvent::RequestWillBeSent {
            url: params
                .get("documentURL")
                .and_then(|u| u.as_str())
                .ok_or_else(|| err("missing documentURL"))?
                .to_string(),
            time,
        },
        "Page.domContentEventFired" => CdpEvent::DomContentLoaded { time },
        "Page.loadEventFired" => CdpEvent::Load { time },
        other => return Err(err(&format!("unknown event {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_frames_roundtrip() {
        let commands = [
            CdpCommand::NetworkEnable,
            CdpCommand::FetchEnable,
            CdpCommand::PageNavigate("https://www.youtube.com/".to_string()),
        ];
        for (i, cmd) in commands.iter().enumerate() {
            let frame = render_command(i as u64 + 1, cmd);
            let (id, parsed) = parse_command(&frame).unwrap();
            assert_eq!(id, i as u64 + 1);
            assert_eq!(&parsed, cmd);
        }
    }

    #[test]
    fn navigate_frame_matches_cdp_shape() {
        let frame = render_command(7, &CdpCommand::PageNavigate("https://a.com/".into()));
        let doc = json::parse(&frame).unwrap();
        assert_eq!(doc.get("method").unwrap().as_str(), Some("Page.navigate"));
        assert_eq!(
            doc.get("params").unwrap().get("url").unwrap().as_str(),
            Some("https://a.com/")
        );
    }

    #[test]
    fn event_frames_roundtrip() {
        let events = [
            CdpEvent::RequestWillBeSent {
                url: "https://a.com/x".into(),
                time: SimInstant(1_500_000),
            },
            CdpEvent::DomContentLoaded { time: SimInstant(2_000_000) },
            CdpEvent::Load { time: SimInstant(2_500_000) },
        ];
        for event in &events {
            let frame = render_event(event);
            assert_eq!(&parse_event(&frame).unwrap(), event);
        }
    }

    #[test]
    fn rejects_malformed_frames() {
        assert!(parse_command("not json").is_err());
        assert!(parse_command(r#"{"id":1}"#).is_err());
        assert!(parse_command(r#"{"id":1,"method":"Unknown.method"}"#).is_err());
        assert!(parse_command(r#"{"id":1,"method":"Page.navigate","params":{}}"#).is_err());
        assert!(parse_event(r#"{"method":"Page.loadEventFired","params":{}}"#).is_err());
        assert!(parse_event(r#"{"method":"Nope","params":{"timestamp":1}}"#).is_err());
    }
}
