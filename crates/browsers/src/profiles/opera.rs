//! Opera 75.1.3978.72329 — reports every visited domain to Opera
//! Sitecheck (§3.2, continues in incognito), runs the oleads ad SDK whose
//! request body is the paper's Listing 1 (manufacturer, timezone,
//! resolution, locale, country, lat/long, network type + `operaId`), and
//! shows the *linear* idle curve of Figure 5 thanks to its News feed
//! (plus 21.9% of idle natives to doubleclick and 1.7% to appsflyer).

use panoptes_simnet::dns::DohProvider;

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};

/// The Opera pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("Opera", "75.1.3978.72329", "com.opera.browser")
        .doh(DohProvider::Google)
        .h3()
        .persistent_id("operaId")
        .leaks(&[
            PiiField::DeviceManufacturer,
            PiiField::Timezone,
            PiiField::Resolution,
            PiiField::Locale,
            PiiField::Country,
            PiiField::Location,
            PiiField::NetworkType,
        ])
        .startup(vec![
            NativeCall::ping("autoupdate.geo.opera.com", "/v1/update"),
            NativeCall::ping("news.opera-api.com", "/v1/feed"),
            NativeCall::ping("crashstats.opera.com", "/collect"),
            NativeCall::ping("download.opera.com", "/assets"),
            NativeCall::ping("sync.opera.com", "/v1/sync"),
            NativeCall::ping("push.opera.com", "/v1/register"),
            NativeCall::ping("features.opera.com", "/v2/flags"),
            NativeCall::ping("abtest.opera.com", "/v1/assign"),
            NativeCall::ping("cdn.opera-api.com", "/startpage"),
            NativeCall::ping("thumbs.opera-api.com", "/v1/thumbs"),
            NativeCall::ping("favicons.opera-api.com", "/v1/favicons"),
            NativeCall::ping("suggest.opera.com", "/v1/suggest"),
            NativeCall::ping("weather.opera-api.com", "/v1/now"),
            NativeCall::ping("metrics.opera.com", "/v1/batch"),
            NativeCall::ping("flags.opera.com", "/v1/active"),
            NativeCall::ping("googleads.g.doubleclick.net", "/pagead/id"),
            NativeCall::ping("t.appsflyer.com", "/api/v1/android"),
            NativeCall::ping("events.appsflyersdk.com", "/api/v1/event"),
        ])
        .per_visit(vec![
            // §3.2: every visited domain goes to Opera's anti-phishing
            // service, incognito included.
            NativeCall::ping("sitecheck2.opera.com", "/check")
                .carrying(Payload::domain_only("host")),
            // Listing 1: the oleads ad-SDK fetch with the full PII body.
            NativeCall::ping("s-odx.oleads.com", "/api/v1/sdk_fetch")
                .via_post()
                .carrying(Payload::AdSdkJson),
        ])
        .idle_burst(vec![
            NativeCall::ping("favicons.opera-api.com", "/v1/favicons"),
            NativeCall::ping("thumbs.opera-api.com", "/v1/thumbs"),
            NativeCall::ping("cdn.opera-api.com", "/startpage"),
            NativeCall::ping("suggest.opera.com", "/v1/suggest"),
            NativeCall::ping("weather.opera-api.com", "/v1/now"),
            NativeCall::ping("news.opera-api.com", "/v1/feed"),
        ])
        .idle_periodic(vec![
            // The News feed refresh: dense and constant — the linear curve.
            (12, NativeCall::ping("news.opera-api.com", "/v1/feed/refresh")),
            // The ad fill for the feed (21.9% of Opera's idle natives).
            (23, NativeCall::ping("googleads.g.doubleclick.net", "/gampad/ads")),
            (300, NativeCall::ping("t.appsflyer.com", "/api/v1/android")),
            (120, NativeCall::ping("sync.opera.com", "/v1/sync")),
            (100, NativeCall::ping("push.opera.com", "/v1/poll")),
            (75, NativeCall::ping("metrics.opera.com", "/v1/batch")),
            (60, NativeCall::ping("weather.opera-api.com", "/v1/now")),
            (150, NativeCall::ping("abtest.opera.com", "/v1/assign")),
            (290, NativeCall::ping("features.opera.com", "/v2/flags")),
        ])
}
