//! Recursive-descent JSON parser (strict RFC 8259 subset, with a depth
//! limit so adversarial bodies cannot blow the stack).

use super::Value;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 128;

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a low surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8 byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].get("b").unwrap().as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v.entries().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse(r#""a\n\t\"\\A""#).unwrap(), Value::str("a\n\t\"\\A"));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::str("😀"));
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(parse("\"héllo✓\"").unwrap(), Value::str("héllo✓"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "01", "1.", "1e", "\"unterminated",
            "nul", "[1,]", "{\"a\":1,}", "\"\\ud800\"", "tru e", "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_excessive_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn error_carries_offset() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn parses_listing1_style_body() {
        // Shape of the Opera ad-SDK request from Listing 1 of the paper.
        let body = r#"{"channelId":"adxsdk_for_opera_ofa_final","appPackageName":"com.opera.browser","deviceVendor":"Samsung","deviceModel":"SM-T580","deviceScreenWidth":1200,"latitude":48.8566,"longitude":2.3522,"operaId":"2e5d1382f2dd484e9d035619c8a908ddd5de945b100bc9e66582e2ed4ab0b2ab","userConsent":"false","supportedAdTypes":["SINGLE"]}"#;
        let v = parse(body).unwrap();
        assert_eq!(v.get("deviceModel").unwrap().as_str(), Some("SM-T580"));
        assert_eq!(v.get("latitude").unwrap().as_f64(), Some(48.8566));
        assert_eq!(v.get("operaId").unwrap().as_str().unwrap().len(), 64);
    }
}
