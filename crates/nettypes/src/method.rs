//! HTTP request methods.

/// The request methods observed in the measured traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `HEAD`
    Head,
    /// `OPTIONS`
    Options,
    /// `DELETE`
    Delete,
    /// `CONNECT` — used by explicit proxies; the transparent MITM path
    /// never sees it but the parser must not choke on it.
    Connect,
}

impl Method {
    /// Canonical upper-case wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
            Method::Delete => "DELETE",
            Method::Connect => "CONNECT",
        }
    }

    /// Parses a wire-form method token (case-sensitive, per RFC 9110).
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "HEAD" => Method::Head,
            "OPTIONS" => Method::Options,
            "DELETE" => Method::Delete,
            "CONNECT" => Method::Connect,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Head,
            Method::Options,
            Method::Delete,
            Method::Connect,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
    }

    #[test]
    fn parse_is_case_sensitive() {
        assert_eq!(Method::parse("get"), None);
        assert_eq!(Method::parse("FETCH"), None);
    }
}
