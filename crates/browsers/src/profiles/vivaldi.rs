//! Vivaldi 6.0.2980.33 — heavy start-page machinery (speed-dial
//! thumbnails, sync) pushes its native share past 1/3 (Fig 2), but the
//! only Table 2 field it transmits is the screen resolution (used to
//! size thumbnails). Norwegian vendor; its thumbnail/sync calls pause in
//! incognito.

use panoptes_simnet::dns::DohProvider;

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};

/// The Vivaldi pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("Vivaldi", "6.0.2980.33", "com.vivaldi.browser")
        .doh(DohProvider::Cloudflare)
        .h3()
        .honors_consent()
        .leaks(&[PiiField::Resolution])
        .startup(vec![
            NativeCall::ping("update.vivaldi.com", "/update/check"),
            NativeCall::ping("downloads.vivaldi.com", "/themes/manifest"),
        ])
        .per_visit(vec![
            NativeCall::ping("thumbnails.vivaldi.com", "/speeddial/render")
                .carrying(Payload::Telemetry)
                .times(3)
                .respecting_incognito(),
            NativeCall::ping("sync.vivaldi.com", "/v1/commit")
                .via_post()
                .padded(100)
                .times(2)
                .respecting_incognito(),
        ])
        .idle_burst(vec![
            NativeCall::ping("thumbnails.vivaldi.com", "/speeddial/render"),
            NativeCall::ping("thumbnails.vivaldi.com", "/speeddial/render"),
            NativeCall::ping("downloads.vivaldi.com", "/themes/manifest"),
            NativeCall::ping("thumbnails.vivaldi.com", "/speeddial/render"),
            NativeCall::ping("update.vivaldi.com", "/update/check"),
        ])
        .idle_periodic(vec![
            (90, NativeCall::ping("sync.vivaldi.com", "/v1/poll")),
            (300, NativeCall::ping("update.vivaldi.com", "/update/check")),
        ])
}
