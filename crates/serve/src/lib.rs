//! # panoptes-serve
//!
//! Panoptes as a service: a long-running, multi-tenant study server
//! over the capture→analysis pipeline (ROADMAP item 1).
//!
//! The offline `repro` binary runs one study and exits; this crate
//! keeps the pipeline resident and serves many concurrent studies over
//! HTTP, streaming each study's sections incrementally (SSE or JSONL)
//! as its campaigns seal. The served bytes are **byte-identical** to
//! the offline binary's stdout for the same parameters — both paths
//! print through the same [`panoptes_bench::render`] document
//! builders, so identity holds by construction and is enforced by the
//! `serve_determinism` suite.
//!
//! The perf core is cross-request sharing:
//!
//! * [`cache`] — a keyed shared-artifact cache (world plans, compiled
//!   filterlist DFAs, sampled browser populations, analysis resources,
//!   and whole rendered study documents) with single-flight
//!   construction and LRU eviction under a byte budget;
//! * the fleet's `WorkPool` — a work-conserving scheduler interleaving
//!   `(browser, crawl|idle)` units from many studies over one worker
//!   pool, with per-request lanes, credit-gated backpressure (a slow
//!   client throttles only its own study), and cancellation on client
//!   disconnect;
//! * admission control — a bounded count of active + waiting studies;
//!   beyond it the server answers `503` instead of queueing unbounded
//!   work.
//!
//! Everything is hand-rolled on `std::net` blocking sockets — the
//! workspace is air-gapped (compat shims only), and the study units
//! are CPU-bound simulation work, so an async reactor would buy
//! nothing a thread per connection doesn't already provide.
//!
//! Operating the server is its own concern, served by three newer
//! modules: request-scoped tracing and per-request latency attribution
//! (the `timing` trailer, wired through [`study`] on top of
//! `panoptes_obs::ctx`), the always-on [`flightrec`] flight recorder
//! with its stall watchdog and panic hook, and the offline [`doctor`]
//! analyzer behind the `panoptes-doctor` bin that turns trace JSONL or
//! flight dumps into per-request waterfalls and cache causality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod doctor;
pub mod flightrec;
pub mod http;
pub mod json;
pub mod server;
pub mod study;
