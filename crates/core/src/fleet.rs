//! The fleet executor: runs campaign units across a bounded worker pool.
//!
//! The paper's study is 15 browsers × (crawl + idle) = 30 campaign
//! units, and every unit assembles its own isolated [`Testbed`] — its
//! own simulated tablet, network, proxy, capture database, and clock.
//! Units therefore share **no mutable state** (the [`World`] is read
//! concurrently but never written after construction), which makes the
//! fleet embarrassingly parallel *and* observation-preserving:
//!
//! * every unit computes exactly what the sequential path computes —
//!   same flows, same ids, same virtual timestamps — because nothing a
//!   unit observes depends on which worker ran it or when;
//! * results are re-ordered into the submission order before they are
//!   returned, so downstream renderers and exporters see the byte-exact
//!   sequential output.
//!
//! `tests/fleet_determinism.rs` (workspace root) enforces the guarantee
//! end-to-end: the full-study export is byte-identical for any worker
//! count.
//!
//! Panics are isolated per unit: a panicking campaign is reported as a
//! failed unit (with its browser name and the panic message) and the
//! remaining units still complete. The fleet returns
//! `Result<Vec<_>, FleetError<_>>` rather than poisoning the study;
//! completed results stay available inside the error.
//!
//! [`Testbed`]: crate::testbed::Testbed
//! [`World`]: panoptes_web::World

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use panoptes_browsers::BrowserProfile;
use panoptes_simnet::clock::SimDuration;
use panoptes_web::site::SiteSpec;
use panoptes_web::World;

use crate::campaign::{run_crawl, CampaignResult};
use crate::config::CampaignConfig;
use crate::idle::{run_idle, IdleResult};

/// How wide the fleet runs, and whether it narrates to stderr.
#[derive(Debug, Clone, Default)]
pub struct FleetOptions {
    /// Worker count. `None` uses the machine's available parallelism;
    /// `Some(1)` forces the sequential path (no worker threads at all).
    pub jobs: Option<usize>,
    /// Per-unit progress lines on stderr (started / finished / failed).
    /// Lines go through the structured [`panoptes_obs::progress`] sink:
    /// written atomically (no tearing under high `jobs`), coloured only
    /// on a tty with `NO_COLOR` unset.
    pub progress: bool,
    /// Request/study tag prefixed to every progress line this fleet
    /// emits (`[study-7] Chrome crawl: started`), so interleaved
    /// concurrent studies sharing one stderr narrate unambiguously.
    /// `None` keeps the historical untagged lines.
    pub tag: Option<String>,
}

impl FleetOptions {
    /// An option set running `jobs` workers, silent.
    pub fn with_jobs(jobs: usize) -> FleetOptions {
        FleetOptions {
            jobs: Some(jobs),
            progress: false,
            tag: None,
        }
    }

    /// An option set running `jobs` workers with progress reporting on.
    pub fn with_progress(jobs: usize) -> FleetOptions {
        FleetOptions::with_jobs(jobs).verbose()
    }

    /// Enables stderr progress reporting.
    pub fn verbose(mut self) -> FleetOptions {
        self.progress = true;
        self
    }

    /// Tags every progress line with a request/study id.
    pub fn with_tag(mut self, tag: impl Into<String>) -> FleetOptions {
        self.tag = Some(tag.into());
        self
    }

    /// Applies the options' tag to one progress message:
    /// `"Chrome crawl: started"` becomes `"[study-7] Chrome crawl:
    /// started"` under `with_tag("study-7")`, and stays untouched when
    /// no tag is set.
    pub fn decorate(&self, msg: &str) -> String {
        match &self.tag {
            Some(tag) => format!("[{tag}] {msg}"),
            None => msg.to_string(),
        }
    }

    /// The effective worker count for `n_units` units.
    pub fn effective_jobs(&self, n_units: usize) -> usize {
        let requested = self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        requested.clamp(1, n_units.max(1))
    }
}

/// One failed campaign unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetFailure {
    /// The unit's label (browser name + experiment kind).
    pub unit: String,
    /// The unit's position in the submission order.
    pub index: usize,
    /// The panic message, as well as it could be extracted.
    pub message: String,
}

/// The fleet's error: which units failed, plus every completed result
/// (in submission order, `None` at the failed slots) so a caller can
/// salvage the rest of the study.
pub struct FleetError<T> {
    /// The failed units, in submission order.
    pub failures: Vec<FleetFailure>,
    /// Results of the units that completed, in submission order.
    pub completed: Vec<Option<T>>,
}

impl<T> fmt::Display for FleetError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.completed.len();
        write!(f, "{}/{} fleet units failed:", self.failures.len(), total)?;
        for failure in &self.failures {
            write!(
                f,
                " [{}] {} ({});",
                failure.index, failure.unit, failure.message
            )?;
        }
        Ok(())
    }
}

impl<T> fmt::Debug for FleetError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetError")
            .field("failures", &self.failures)
            .field(
                "completed_units",
                &self.completed.iter().filter(|c| c.is_some()).count(),
            )
            .finish()
    }
}

impl<T> std::error::Error for FleetError<T> {}

/// Extracts the human-readable message from a caught panic payload —
/// shared by the fleet's own unit isolation and by downstream overlapped
/// pipelines that isolate their own worker panics the same way.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `runner(0..labels.len())` across a bounded worker pool and
/// returns the results **in submission order** — the fleet's generic
/// engine, also usable for non-campaign workloads (and for fault
/// injection in tests).
///
/// With one effective worker the units run sequentially on the calling
/// thread: no worker threads, same in-order execution as a plain loop.
/// Panic isolation applies in both modes.
pub fn execute<T, F>(
    labels: &[String],
    options: &FleetOptions,
    runner: F,
) -> Result<Vec<T>, FleetError<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = labels.len();
    let jobs = options.effective_jobs(n);
    let started_at = Instant::now();
    let _fleet_span =
        panoptes_obs::trace::span_with("fleet.execute", None, || format!("{n} units, {jobs} jobs"));
    // Runtime-class: which work runs through the fleet (vs the
    // sequential or overlapped paths) is a property of the execution
    // mode, not the workload.
    panoptes_obs::count!("fleet.units.submitted", Runtime, n as u64);
    if options.progress {
        panoptes_obs::progress::emit(
            "fleet",
            &options.decorate(&format!("{n} units across {jobs} worker(s)")),
        );
    }

    let run_one = |index: usize| -> Result<T, FleetFailure> {
        let _unit_span =
            panoptes_obs::trace::span_with("fleet.unit", None, || labels[index].clone());
        if options.progress {
            panoptes_obs::progress::emit(
                "fleet",
                &options.decorate(&format!("{}: started", labels[index])),
            );
        }
        let unit_start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| runner(index))) {
            Ok(value) => {
                panoptes_obs::count!("fleet.units.completed", Runtime);
                panoptes_obs::record!(
                    "fleet.unit.wall_us",
                    Runtime,
                    unit_start.elapsed().as_micros() as u64
                );
                if options.progress {
                    panoptes_obs::progress::emit(
                        "fleet",
                        &options.decorate(&format!(
                            "{}: finished in {:?}",
                            labels[index],
                            unit_start.elapsed()
                        )),
                    );
                }
                Ok(value)
            }
            Err(payload) => {
                let failure = FleetFailure {
                    unit: labels[index].clone(),
                    index,
                    message: panic_message(payload.as_ref()),
                };
                panoptes_obs::count!("fleet.units.failed", Runtime);
                if options.progress {
                    panoptes_obs::progress::emit(
                        "fleet",
                        &options
                            .decorate(&format!("{}: FAILED ({})", failure.unit, failure.message)),
                    );
                }
                Err(failure)
            }
        }
    };

    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    let mut failures: Vec<FleetFailure> = Vec::new();

    if jobs <= 1 {
        for index in 0..n {
            match run_one(index) {
                Ok(value) => slots.push(Some(value)),
                Err(failure) => {
                    failures.push(failure);
                    slots.push(None);
                }
            }
        }
    } else {
        let results: Mutex<Vec<(usize, Result<T, FleetFailure>)>> =
            Mutex::new(Vec::with_capacity(n));
        let next = AtomicUsize::new(0);
        // Hand the caller's request context (if any) across the worker
        // thread boundary, so units run for a served study keep carrying
        // its request id.
        let ctx = panoptes_obs::ctx::current();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(|_| {
                        let _ctx = ctx.map(panoptes_obs::ctx::enter);
                        panoptes_obs::gauge_add!("fleet.workers.active", 1);
                        let mut claimed = 0u64;
                        let mut idle_us = 0u64;
                        loop {
                            // Time between finishing one unit and having
                            // the next in hand: the steal/queue wait.
                            let wait_start = Instant::now();
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            idle_us += wait_start.elapsed().as_micros() as u64;
                            claimed += 1;
                            let outcome = run_one(index);
                            results.lock().push((index, outcome));
                        }
                        // Per-worker balance: how many units this worker
                        // stole, and how long it spent waiting for work.
                        panoptes_obs::record!("fleet.worker.units_claimed", Runtime, claimed);
                        panoptes_obs::record!("fleet.worker.steal_wait_us", Runtime, idle_us);
                        panoptes_obs::gauge_add!("fleet.workers.active", -1);
                    })
                })
                .collect();
            for handle in handles {
                // Worker bodies catch unit panics, so a worker thread
                // itself never panics; join only for completion.
                handle.join().expect("fleet worker survived");
            }
        })
        .expect("fleet scope");

        // Re-order into submission order so downstream consumers see
        // exactly the sequential sequence.
        let mut collected = results.into_inner();
        collected.sort_by_key(|(index, _)| *index);
        debug_assert_eq!(collected.len(), n);
        for (_, outcome) in collected {
            match outcome {
                Ok(value) => slots.push(Some(value)),
                Err(failure) => {
                    failures.push(failure);
                    slots.push(None);
                }
            }
        }
    }

    if options.progress {
        panoptes_obs::progress::emit(
            "fleet",
            &options.decorate(&format!(
                "{}/{} units completed in {:?}",
                n - failures.len(),
                n,
                started_at.elapsed()
            )),
        );
    }

    if failures.is_empty() {
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("no failure recorded"))
            .collect())
    } else {
        Err(FleetError {
            failures,
            completed: slots,
        })
    }
}

/// Splits `len` items into at most `shards` contiguous, near-equal
/// ranges — the deterministic partitioning used by the sharded
/// single-pass analysis engine (and reusable for any fan-out over an
/// indexed workload). The concatenation of the returned ranges is
/// always exactly `0..len`, in order, which is what makes a
/// merge-in-shard-order reduction equivalent to a sequential pass.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.clamp(1, len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 0..shards {
        let width = base + usize::from(i < extra);
        ranges.push(start..start + width);
        start += width;
    }
    ranges
}

/// The experiment a [`FleetUnit`] runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitKind {
    /// The §2.1 crawl campaign over the fleet's site list.
    Crawl,
    /// The §3.5 idle experiment for the given window.
    Idle(SimDuration),
}

/// One campaign unit: a browser profile plus the experiment to run,
/// optionally under a unit-specific configuration (e.g. incognito).
#[derive(Debug, Clone)]
pub struct FleetUnit {
    /// The browser to run.
    pub profile: BrowserProfile,
    /// Crawl or idle.
    pub kind: UnitKind,
    /// Overrides the fleet-wide [`CampaignConfig`] when set.
    pub config: Option<CampaignConfig>,
}

impl FleetUnit {
    /// A crawl unit under the fleet-wide config.
    pub fn crawl(profile: BrowserProfile) -> FleetUnit {
        FleetUnit {
            profile,
            kind: UnitKind::Crawl,
            config: None,
        }
    }

    /// An idle unit under the fleet-wide config.
    pub fn idle(profile: BrowserProfile, duration: SimDuration) -> FleetUnit {
        FleetUnit {
            profile,
            kind: UnitKind::Idle(duration),
            config: None,
        }
    }

    /// Overrides this unit's campaign configuration.
    pub fn with_config(mut self, config: CampaignConfig) -> FleetUnit {
        self.config = Some(config);
        self
    }

    /// The unit's progress label: browser name + experiment kind.
    pub fn label(&self) -> String {
        match self.kind {
            UnitKind::Crawl => format!("{} crawl", self.profile.name),
            UnitKind::Idle(_) => format!("{} idle", self.profile.name),
        }
    }
}

/// One unit's output, in the same position the unit was submitted.
pub enum UnitOutput {
    /// Output of a [`UnitKind::Crawl`] unit.
    Crawl(CampaignResult),
    /// Output of a [`UnitKind::Idle`] unit.
    Idle(IdleResult),
}

impl UnitOutput {
    /// The crawl result, if this unit was a crawl.
    pub fn into_crawl(self) -> Option<CampaignResult> {
        match self {
            UnitOutput::Crawl(result) => Some(result),
            UnitOutput::Idle(_) => None,
        }
    }

    /// The idle result, if this unit was an idle run.
    pub fn into_idle(self) -> Option<IdleResult> {
        match self {
            UnitOutput::Idle(result) => Some(result),
            UnitOutput::Crawl(_) => None,
        }
    }
}

/// Runs one campaign unit to completion — the single execution core
/// shared by [`run_units`], the overlap engine's pipelined runner, and
/// the serving layer's interleaved scheduler. The unit's own config
/// override wins over the fleet-wide `config`; no progress is emitted
/// here (callers narrate with their own [`FleetOptions`] tag).
pub fn run_unit(
    world: &World,
    sites: &[SiteSpec],
    config: &CampaignConfig,
    unit: &FleetUnit,
) -> UnitOutput {
    let unit_config = unit.config.as_ref().unwrap_or(config);
    match unit.kind {
        UnitKind::Crawl => UnitOutput::Crawl(run_crawl(world, &unit.profile, sites, unit_config)),
        UnitKind::Idle(duration) => {
            UnitOutput::Idle(run_idle(world, &unit.profile, duration, unit_config))
        }
    }
}

/// Runs a mixed list of campaign units over the worker pool, returning
/// their outputs in submission order.
pub fn run_units(
    world: &World,
    sites: &[SiteSpec],
    config: &CampaignConfig,
    units: &[FleetUnit],
    options: &FleetOptions,
) -> Result<Vec<UnitOutput>, FleetError<UnitOutput>> {
    let labels: Vec<String> = units.iter().map(FleetUnit::label).collect();
    execute(&labels, options, |index| {
        let unit = &units[index];
        let output = run_unit(world, sites, config, unit);
        if options.progress {
            match &output {
                UnitOutput::Crawl(result) => {
                    let sim: SimDuration = result
                        .visits
                        .iter()
                        .map(|v| v.dwell)
                        .fold(SimDuration::ZERO, |a, b| a + b);
                    panoptes_obs::progress::emit(
                        "fleet",
                        &options.decorate(&format!(
                            "{}: {} flows captured, {} visits, sim {}",
                            labels_for_progress(&unit.profile.name, "crawl"),
                            result.store.len(),
                            result.visits.len(),
                            sim,
                        )),
                    );
                }
                UnitOutput::Idle(result) => {
                    let duration = match unit.kind {
                        UnitKind::Idle(d) => d,
                        UnitKind::Crawl => unreachable!("idle output from crawl unit"),
                    };
                    panoptes_obs::progress::emit(
                        "fleet",
                        &options.decorate(&format!(
                            "{}: {} flows captured, sim {}",
                            labels_for_progress(&unit.profile.name, "idle"),
                            result.store.len(),
                            duration,
                        )),
                    );
                }
            }
        }
        output
    })
}

fn labels_for_progress(name: &str, kind: &str) -> String {
    format!("{name} {kind}")
}

/// The full paper study (crawl + idle per browser) as one fleet.
pub struct StudyOutput {
    /// Crawl results, one per profile, in profile order.
    pub crawls: Vec<CampaignResult>,
    /// Idle results, one per profile, in profile order.
    pub idles: Vec<IdleResult>,
}

/// Runs crawl **and** idle units for every profile in `profiles` across
/// one shared worker pool — idle units fill workers while long crawls
/// drain, so the pool never idles before the tail.
pub fn run_study(
    world: &World,
    sites: &[SiteSpec],
    config: &CampaignConfig,
    profiles: &[BrowserProfile],
    idle: SimDuration,
    options: &FleetOptions,
) -> Result<StudyOutput, FleetError<UnitOutput>> {
    let mut units = Vec::with_capacity(profiles.len() * 2);
    for profile in profiles {
        units.push(FleetUnit::crawl(profile.clone()));
    }
    for profile in profiles {
        units.push(FleetUnit::idle(profile.clone(), idle));
    }
    let outputs = run_units(world, sites, config, &units, options)?;
    let mut crawls = Vec::with_capacity(profiles.len());
    let mut idles = Vec::with_capacity(profiles.len());
    for output in outputs {
        match output {
            UnitOutput::Crawl(result) => crawls.push(result),
            UnitOutput::Idle(result) => idles.push(result),
        }
    }
    Ok(StudyOutput { crawls, idles })
}

// ---------------------------------------------------------------------
// WorkPool: the long-lived, multi-tenant fleet scheduler.
//
// `execute` above is a batch pool: it is born with its unit list and
// dies when the list drains — exactly right for one offline study, and
// exactly wrong for a server juggling many. The `WorkPool` keeps a
// fixed set of workers alive across requests and multiplexes *lanes*
// (one per study/request) over them:
//
// * **work-conserving round-robin** — each dispatch takes the next
//   lane (in rotation) that has a queued job *and* a credit; a stalled
//   or credit-starved lane never blocks the others, so workers idle
//   only when no lane anywhere is dispatchable;
// * **credit-gated backpressure** — a lane's credits bound how many of
//   its jobs may be queued-or-running downstream at once. The serving
//   layer grants a credit when the client drains an event, so a slow
//   reader throttles *its own* study's production instead of ballooning
//   buffered results;
// * **cancellation** — `cancel` drops a lane's pending jobs on the
//   floor (in-flight jobs finish; units are pure compute and cheap at
//   serve scale) and frees its slot as soon as the last one drains;
// * **panic isolation** — a panicking job is counted and contained
//   with the same `catch_unwind` backstop as the batch fleet; the
//   worker thread survives.

/// One queued unit of work: a boxed closure that owns everything it
/// needs (the serving layer closes over its study context and result
/// channel).
pub type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct Lane {
    pending: VecDeque<PoolJob>,
    /// Dispatch allowance: decremented when a job starts, topped up by
    /// [`WorkPool::grant`]. A lane with zero credits holds its queue.
    credits: usize,
    /// Jobs currently running on a worker.
    inflight: usize,
    cancelled: bool,
    closed: bool,
}

impl Lane {
    fn dispatchable(&self) -> bool {
        !self.cancelled && self.credits > 0 && !self.pending.is_empty()
    }

    fn drained(&self) -> bool {
        self.pending.is_empty() && self.inflight == 0 && (self.closed || self.cancelled)
    }
}

struct PoolState {
    lanes: HashMap<u64, Lane>,
    /// Round-robin rotation over open lane ids; the dispatched lane
    /// moves to the back so service order stays fair under contention.
    rr: VecDeque<u64>,
    /// Total pending jobs across all lanes (the queue-depth gauge).
    queued: usize,
    /// Total in-flight jobs across all lanes.
    running: usize,
    shutdown: bool,
}

impl PoolState {
    /// Picks the next dispatchable lane in rotation and pops one job,
    /// rotating that lane to the back. `None` when nothing anywhere is
    /// runnable.
    fn next_job(&mut self) -> Option<(u64, PoolJob)> {
        for _ in 0..self.rr.len() {
            let id = self.rr.pop_front().expect("rr non-empty in loop");
            self.rr.push_back(id);
            let lane = self.lanes.get_mut(&id).expect("rr lane exists");
            if lane.dispatchable() {
                let job = lane.pending.pop_front().expect("dispatchable lane has job");
                lane.credits -= 1;
                lane.inflight += 1;
                self.queued -= 1;
                self.running += 1;
                return Some((id, job));
            }
        }
        None
    }

    /// Removes a fully drained lane from the map and rotation.
    fn reap(&mut self, id: u64) {
        if self.lanes.get(&id).is_some_and(Lane::drained) {
            self.lanes.remove(&id);
            self.rr.retain(|&lane_id| lane_id != id);
        }
    }
}

/// A long-lived worker pool multiplexing per-request lanes: the
/// scheduling substrate of the study server. See the module notes
/// above for the fairness / backpressure / cancellation contract.
pub struct WorkPool {
    state: Arc<(StdMutex<PoolState>, Condvar)>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkPool {
    /// Spawns `workers` long-lived worker threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> WorkPool {
        let state = Arc::new((
            StdMutex::new(PoolState {
                lanes: HashMap::new(),
                rr: VecDeque::new(),
                queued: 0,
                running: 0,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let workers = (0..workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || Self::worker_loop(&state))
            })
            .collect();
        WorkPool { state, workers }
    }

    fn worker_loop(state: &(StdMutex<PoolState>, Condvar)) {
        let (lock, cvar) = state;
        let mut guard = lock.lock().expect("pool lock");
        loop {
            if let Some((lane_id, job)) = guard.next_job() {
                drop(guard);
                panoptes_obs::gauge_add!("pool.queue.depth", -1);
                panoptes_obs::gauge_add!("pool.jobs.inflight", 1);
                let outcome = catch_unwind(AssertUnwindSafe(job));
                if outcome.is_ok() {
                    panoptes_obs::count!("pool.jobs.completed", Runtime);
                } else {
                    panoptes_obs::count!("pool.jobs.panicked", Runtime);
                }
                panoptes_obs::gauge_add!("pool.jobs.inflight", -1);
                guard = lock.lock().expect("pool lock");
                if let Some(lane) = guard.lanes.get_mut(&lane_id) {
                    lane.inflight -= 1;
                }
                guard.running -= 1;
                guard.reap(lane_id);
                // Wake both idle workers (a credit may have been
                // granted while we ran) and `wait_idle` callers.
                cvar.notify_all();
            } else if guard.shutdown {
                return;
            } else {
                guard = cvar.wait(guard).expect("pool wait");
            }
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.0.lock().expect("pool lock")
    }

    /// Opens a lane with an initial credit allowance. Re-opening a live
    /// lane id is a caller bug and panics.
    pub fn open_lane(&self, id: u64, credits: usize) {
        let mut state = self.locked();
        assert!(!state.lanes.contains_key(&id), "lane {id} already open");
        state.lanes.insert(
            id,
            Lane {
                pending: VecDeque::new(),
                credits,
                inflight: 0,
                cancelled: false,
                closed: false,
            },
        );
        state.rr.push_back(id);
        panoptes_obs::count!("pool.lanes.opened", Runtime);
        self.state.1.notify_all();
    }

    /// Queues a job on a lane. Returns `false` (dropping the job) if
    /// the lane is unknown, cancelled, closed, or the pool is shutting
    /// down — the serving layer treats that as "request gone".
    pub fn push(&self, lane_id: u64, job: PoolJob) -> bool {
        let mut state = self.locked();
        if state.shutdown {
            return false;
        }
        let Some(lane) = state.lanes.get_mut(&lane_id) else {
            return false;
        };
        if lane.cancelled || lane.closed {
            return false;
        }
        lane.pending.push_back(job);
        state.queued += 1;
        panoptes_obs::gauge_add!("pool.queue.depth", 1);
        self.state.1.notify_all();
        true
    }

    /// Grants `n` more dispatch credits to a lane (the backpressure
    /// release valve: called as the client drains events).
    pub fn grant(&self, lane_id: u64, n: usize) {
        let mut state = self.locked();
        if let Some(lane) = state.lanes.get_mut(&lane_id) {
            if !lane.cancelled {
                lane.credits = lane.credits.saturating_add(n);
            }
        }
        self.state.1.notify_all();
    }

    /// Cancels a lane: drops every pending job, blocks further pushes,
    /// and reaps the lane once in-flight jobs drain. Returns how many
    /// pending jobs were dropped.
    pub fn cancel(&self, lane_id: u64) -> usize {
        let mut state = self.locked();
        let Some(lane) = state.lanes.get_mut(&lane_id) else {
            return 0;
        };
        let dropped = lane.pending.len();
        lane.pending.clear();
        lane.cancelled = true;
        state.queued -= dropped;
        if dropped > 0 {
            panoptes_obs::gauge_add!("pool.queue.depth", -(dropped as i64));
        }
        panoptes_obs::count!("pool.lanes.cancelled", Runtime);
        state.reap(lane_id);
        self.state.1.notify_all();
        dropped
    }

    /// Marks a lane closed (no further pushes); it is reaped once its
    /// queue and in-flight work drain.
    pub fn close_lane(&self, lane_id: u64) {
        let mut state = self.locked();
        if let Some(lane) = state.lanes.get_mut(&lane_id) {
            lane.closed = true;
        }
        state.reap(lane_id);
        self.state.1.notify_all();
    }

    /// Total queued (not yet dispatched) jobs across all lanes.
    pub fn queue_depth(&self) -> usize {
        self.locked().queued
    }

    /// Open lane count (cancelled-but-draining lanes included).
    pub fn lane_count(&self) -> usize {
        self.locked().lanes.len()
    }

    /// Blocks until no job is queued-or-running anywhere. Queued jobs
    /// held by credit starvation do **not** count as idle — grant or
    /// cancel first.
    pub fn wait_idle(&self) {
        let (lock, cvar) = &*self.state;
        let mut guard = lock.lock().expect("pool lock");
        loop {
            let dispatchable = guard.lanes.values().any(Lane::dispatchable);
            if guard.running == 0 && !dispatchable {
                return;
            }
            guard = cvar.wait(guard).expect("pool wait");
        }
    }

    /// Stops accepting work, lets in-flight jobs finish, drops whatever
    /// is still queued, and joins every worker.
    pub fn shutdown(mut self) {
        {
            let mut state = self.locked();
            state.shutdown = true;
            let still_queued = state.queued;
            for lane in state.lanes.values_mut() {
                lane.pending.clear();
            }
            state.queued = 0;
            if still_queued > 0 {
                panoptes_obs::gauge_add!("pool.queue.depth", -(still_queued as i64));
            }
        }
        self.state.1.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("pool worker survived");
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        // Best-effort: a dropped (not shut-down) pool still stops its
        // workers instead of leaking threads.
        if let Ok(mut state) = self.state.0.lock() {
            state.shutdown = true;
            for lane in state.lanes.values_mut() {
                lane.pending.clear();
            }
            state.queued = 0;
        }
        self.state.1.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_browsers::registry::{all_profiles, profile_by_name};
    use panoptes_web::generator::GeneratorConfig;

    fn small_world() -> World {
        World::build(&GeneratorConfig {
            popular: 4,
            sensitive: 2,
            ..Default::default()
        })
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("unit-{i}")).collect()
    }

    #[test]
    fn shard_ranges_tile_exactly() {
        for len in [0usize, 1, 2, 7, 16, 1000] {
            for shards in 1usize..=9 {
                let ranges = shard_ranges(len, shards);
                assert!(ranges.len() <= shards.max(1));
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "len={len} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, len, "len={len} shards={shards}");
                // Near-equal: widths differ by at most one.
                let widths: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                let min = widths.iter().min().copied().unwrap_or(0);
                let max = widths.iter().max().copied().unwrap_or(0);
                assert!(max - min <= 1, "len={len} shards={shards}: {widths:?}");
            }
        }
    }

    #[test]
    fn execute_preserves_submission_order() {
        for jobs in [1, 2, 5, 16] {
            let out = execute(&labels(17), &FleetOptions::with_jobs(jobs), |i| i * 10)
                .expect("no failures");
            assert_eq!(
                out,
                (0..17).map(|i| i * 10).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn execute_isolates_panicking_units() {
        for jobs in [1, 4] {
            let err = execute(&labels(6), &FleetOptions::with_jobs(jobs), |i| {
                if i == 2 {
                    panic!("injected fault in unit 2");
                }
                i
            })
            .expect_err("unit 2 panics");
            assert_eq!(err.failures.len(), 1, "jobs={jobs}");
            assert_eq!(err.failures[0].index, 2);
            assert_eq!(err.failures[0].unit, "unit-2");
            assert!(err.failures[0].message.contains("injected fault"));
            // The other five units still completed, in order.
            let salvaged: Vec<usize> = err.completed.iter().flatten().copied().collect();
            assert_eq!(salvaged, vec![0, 1, 3, 4, 5]);
            assert!(err.completed[2].is_none());
        }
    }

    #[test]
    fn fleet_error_display_names_units() {
        let err = execute(
            &["Chrome crawl".to_string()],
            &FleetOptions::with_jobs(1),
            |_| {
                panic!("boom");
                #[allow(unreachable_code)]
                ()
            },
        )
        .expect_err("panics");
        let text = err.to_string();
        assert!(text.contains("Chrome crawl"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }

    #[test]
    fn crawl_units_match_direct_run() {
        let world = small_world();
        let config = CampaignConfig::default();
        let profile = profile_by_name("Yandex").unwrap();
        let direct = run_crawl(&world, &profile, &world.sites, &config);

        let units = vec![FleetUnit::crawl(profile.clone()), FleetUnit::crawl(profile)];
        let out = run_units(
            &world,
            &world.sites,
            &config,
            &units,
            &FleetOptions::with_jobs(2),
        )
        .expect("no failures");
        for output in out {
            let result = output.into_crawl().expect("crawl unit");
            assert_eq!(result.store.export_jsonl(), direct.store.export_jsonl());
            assert_eq!(result.visits, direct.visits);
        }
    }

    #[test]
    fn mixed_study_splits_and_orders() {
        let world = small_world();
        let config = CampaignConfig::default();
        let profiles: Vec<_> = all_profiles().into_iter().take(3).collect();
        let study = run_study(
            &world,
            &world.sites,
            &config,
            &profiles,
            SimDuration::from_secs(60),
            &FleetOptions::with_jobs(4),
        )
        .expect("no failures");
        assert_eq!(study.crawls.len(), 3);
        assert_eq!(study.idles.len(), 3);
        for (result, profile) in study.crawls.iter().zip(&profiles) {
            assert_eq!(result.profile.name, profile.name);
        }
        for (result, profile) in study.idles.iter().zip(&profiles) {
            assert_eq!(result.profile.name, profile.name);
        }
    }

    #[test]
    fn unit_config_override_is_respected() {
        let world = small_world();
        let config = CampaignConfig::default();
        let reseeded = CampaignConfig {
            seed: 999,
            ..config.clone()
        };
        let profile = profile_by_name("Yandex").unwrap();
        let units = vec![
            FleetUnit::crawl(profile.clone()),
            FleetUnit::crawl(profile.clone()).with_config(reseeded.clone()),
        ];
        let out = run_units(
            &world,
            &world.sites,
            &config,
            &units,
            &FleetOptions::with_jobs(2),
        )
        .expect("no failures");
        let [default_unit, reseeded_unit]: [UnitOutput; 2] = out.try_into().ok().expect("two");
        let default_unit = default_unit.into_crawl().expect("crawl");
        let reseeded_unit = reseeded_unit.into_crawl().expect("crawl");
        // The override took effect: a different seed mints different
        // persistent identifiers, so the captures differ...
        assert_ne!(
            default_unit.store.export_jsonl(),
            reseeded_unit.store.export_jsonl()
        );
        // ...and each unit matches a direct run under its own config.
        let direct = run_crawl(&world, &profile, &world.sites, &reseeded);
        assert_eq!(
            reseeded_unit.store.export_jsonl(),
            direct.store.export_jsonl()
        );
        assert_eq!(default_unit.store.export_jsonl(), {
            let d = run_crawl(&world, &profile, &world.sites, &config);
            d.store.export_jsonl()
        });
    }

    #[test]
    fn run_unit_matches_run_units_output() {
        let world = small_world();
        let config = CampaignConfig::default();
        let profile = profile_by_name("Yandex").unwrap();
        let unit = FleetUnit::crawl(profile);
        let direct = run_unit(&world, &world.sites, &config, &unit)
            .into_crawl()
            .expect("crawl output");
        let pooled = run_units(
            &world,
            &world.sites,
            &config,
            std::slice::from_ref(&unit),
            &FleetOptions::with_jobs(1),
        )
        .expect("no failures")
        .remove(0)
        .into_crawl()
        .expect("crawl output");
        assert_eq!(direct.store.export_jsonl(), pooled.store.export_jsonl());
    }

    // ----- WorkPool -----

    /// Order log shared by pool-test jobs.
    fn order_log() -> (Arc<StdMutex<Vec<u64>>>, impl Fn(u64) -> PoolJob) {
        let log = Arc::new(StdMutex::new(Vec::new()));
        let for_jobs = Arc::clone(&log);
        let make = move |lane: u64| -> PoolJob {
            let log = Arc::clone(&for_jobs);
            Box::new(move || log.lock().expect("log lock").push(lane))
        };
        (log, make)
    }

    #[test]
    fn pool_round_robin_interleaves_lanes() {
        let pool = WorkPool::new(1);
        let (log, job) = order_log();
        // Pin the single worker on a blocking job while both lanes are
        // queued and funded, so the observed service order is exactly
        // the scheduler's rotation (no dispatch races the setup).
        let (release, gate) = std::sync::mpsc::channel::<()>();
        pool.open_lane(0, 1);
        assert!(pool.push(0, Box::new(move || gate.recv().expect("release signal"))));
        pool.open_lane(1, 4);
        pool.open_lane(2, 2);
        for _ in 0..4 {
            assert!(pool.push(1, job(1)));
        }
        for _ in 0..2 {
            assert!(pool.push(2, job(2)));
        }
        release.send(()).expect("worker waiting");
        pool.wait_idle();
        // Fair rotation: lane 2 is serviced between lane-1 jobs while
        // it has work, then lane 1 drains alone.
        assert_eq!(*log.lock().expect("log lock"), vec![1, 2, 1, 2, 1, 1]);
        pool.shutdown();
    }

    #[test]
    fn pool_credits_gate_dispatch() {
        let pool = WorkPool::new(2);
        let (log, job) = order_log();
        pool.open_lane(7, 0);
        for _ in 0..3 {
            assert!(pool.push(7, job(7)));
        }
        pool.wait_idle(); // credit-starved queue counts as idle
        assert_eq!(log.lock().expect("log lock").len(), 0);
        assert_eq!(pool.queue_depth(), 3);
        pool.grant(7, 1);
        pool.wait_idle();
        assert_eq!(log.lock().expect("log lock").len(), 1);
        assert_eq!(pool.queue_depth(), 2);
        pool.grant(7, 2);
        pool.wait_idle();
        assert_eq!(log.lock().expect("log lock").len(), 3);
        assert_eq!(pool.queue_depth(), 0);
        pool.shutdown();
    }

    #[test]
    fn pool_cancel_drops_pending_and_frees_lane() {
        let pool = WorkPool::new(1);
        let (log, job) = order_log();
        pool.open_lane(3, 0);
        for _ in 0..5 {
            assert!(pool.push(3, job(3)));
        }
        assert_eq!(pool.cancel(3), 5);
        assert_eq!(pool.queue_depth(), 0);
        // The cancelled lane is reaped (no in-flight work held it) and
        // rejects further pushes.
        assert_eq!(pool.lane_count(), 0);
        assert!(!pool.push(3, job(3)));
        pool.wait_idle();
        assert_eq!(log.lock().expect("log lock").len(), 0);
        pool.shutdown();
    }

    #[test]
    fn pool_is_work_conserving_under_starved_lane() {
        let pool = WorkPool::new(1);
        let (log, job) = order_log();
        pool.open_lane(1, 0); // never granted a credit
        pool.open_lane(2, 8);
        for _ in 0..3 {
            assert!(pool.push(1, job(1)));
        }
        for _ in 0..3 {
            assert!(pool.push(2, job(2)));
        }
        pool.wait_idle();
        // The starved lane holds its own queue; lane 2 ran everything.
        assert_eq!(*log.lock().expect("log lock"), vec![2, 2, 2]);
        assert_eq!(pool.queue_depth(), 3);
        pool.shutdown();
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = WorkPool::new(1);
        let (log, job) = order_log();
        pool.open_lane(1, 4);
        assert!(pool.push(1, Box::new(|| panic!("injected pool fault"))));
        assert!(pool.push(1, job(1)));
        pool.wait_idle();
        assert_eq!(*log.lock().expect("log lock"), vec![1]);
        pool.shutdown();
    }

    #[test]
    fn pool_close_lane_reaps_after_drain() {
        let pool = WorkPool::new(2);
        let (log, job) = order_log();
        pool.open_lane(9, 10);
        for _ in 0..4 {
            assert!(pool.push(9, job(9)));
        }
        pool.close_lane(9);
        assert!(!pool.push(9, job(9)), "closed lane rejects new work");
        pool.wait_idle();
        assert_eq!(log.lock().expect("log lock").len(), 4);
        assert_eq!(pool.lane_count(), 0, "drained closed lane is reaped");
        pool.shutdown();
    }
}
