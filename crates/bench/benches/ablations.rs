//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each target isolates one mechanism, runs the pipeline with it on and
//! off, asserts the qualitative effect, and reports the cost:
//!
//! * **taint token verification** — the spoofing defence vs a naive
//!   presence-only check,
//! * **engine-side ad blocking** — CocCoc's easylist and its effect on
//!   the engine/native split,
//! * **DoH vs stub resolution** — how the resolver choice inflates a
//!   browser's *native* footprint,
//! * **certificate pinning** — what the measurement loses to pinned
//!   flows (footnote 3's lower bound),
//! * **guard enforcement** — the per-campaign cost of the countermeasure.

use criterion::{criterion_group, criterion_main, Criterion};

use panoptes::campaign::{run_crawl, run_crawl_with};
use panoptes::config::CampaignConfig;
use panoptes_analysis::history::leaks_anything;
use panoptes_analysis::volume::volume_row;
use panoptes_browsers::registry::profile_by_name;
use panoptes_browsers::BrowserProfile;
use panoptes_guard::{GuardAddon, GuardPolicy};
use panoptes_mitm::FlowClass;
use panoptes_simnet::dns::{DohProvider, ResolverKind};
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

fn world() -> World {
    World::build(&GeneratorConfig { popular: 10, sensitive: 6, ..Default::default() })
}

/// Taint verification: the token-checking addon vs classifying on header
/// presence alone. Verification costs a string comparison per request;
/// the bench quantifies it.
fn ablation_taint_verification(c: &mut Criterion) {
    use panoptes_http::url::Url;
    use panoptes_http::Request;
    use panoptes_mitm::addon::{Addon, Verdict};
    use panoptes_mitm::{InterceptedRequest, TaintAddon, TAINT_HEADER};
    use panoptes_simnet::net::FlowContext;

    /// The naive variant: any taint header counts as engine traffic —
    /// spoofable by any web page.
    struct PresenceOnly;
    impl Addon for PresenceOnly {
        fn name(&self) -> &str {
            "presence-only"
        }
        fn on_request(&self, ir: &mut InterceptedRequest<'_>) {
            let values = ir.request.headers.remove(TAINT_HEADER);
            *ir.class =
                if values.is_empty() { FlowClass::Native } else { FlowClass::Engine };
        }
    }

    let ctx = FlowContext {
        time: panoptes_simnet::SimInstant::EPOCH,
        uid: 1,
        app_package: "b".into(),
        src_ip: panoptes_http::netaddr::IpAddr::new(10, 0, 0, 1),
        dst_ip: panoptes_http::netaddr::IpAddr::new(10, 0, 0, 2),
        dst_port: 443,
        sni: "x.com".into(),
        version: panoptes_http::request::HttpVersion::H2,
        intercepted: true,
    };
    // Correctness difference: a forged token fools the naive check.
    {
        let verified = TaintAddon::new("good-token");
        let naive = PresenceOnly;
        let mut forged = Request::get(Url::parse("https://x.com/").unwrap())
            .with_header(TAINT_HEADER, "forged");
        let mut class = FlowClass::Native;
        let mut verdict = Verdict::Forward;
        naive.on_request(&mut InterceptedRequest {
            ctx: &ctx,
            request: &mut forged,
            class: &mut class,
            verdict: &mut verdict,
        });
        assert_eq!(class, FlowClass::Engine, "the naive check is spoofable");
        let mut forged = Request::get(Url::parse("https://x.com/").unwrap())
            .with_header(TAINT_HEADER, "forged");
        let mut class = FlowClass::Native;
        verified.on_request(&mut InterceptedRequest {
            ctx: &ctx,
            request: &mut forged,
            class: &mut class,
            verdict: &mut verdict,
        });
        assert_eq!(class, FlowClass::Native, "verification resists spoofing");
        assert_eq!(verified.spoofed_count(), 1);
    }

    let mut group = c.benchmark_group("ablation_taint_verification");
    group.bench_function("verified", |b| {
        let addon = TaintAddon::new("good-token");
        b.iter(|| {
            let mut req = Request::get(Url::parse("https://x.com/").unwrap())
                .with_header(TAINT_HEADER, "good-token");
            let mut class = FlowClass::Native;
            let mut verdict = Verdict::Forward;
            addon.on_request(&mut InterceptedRequest {
                ctx: &ctx,
                request: &mut req,
                class: &mut class,
                verdict: &mut verdict,
            });
            class
        })
    });
    group.bench_function("presence_only", |b| {
        let addon = PresenceOnly;
        b.iter(|| {
            let mut req = Request::get(Url::parse("https://x.com/").unwrap())
                .with_header(TAINT_HEADER, "good-token");
            let mut class = FlowClass::Native;
            let mut verdict = Verdict::Forward;
            addon.on_request(&mut InterceptedRequest {
                ctx: &ctx,
                request: &mut req,
                class: &mut class,
                verdict: &mut verdict,
            });
            class
        })
    });
    group.finish();
}

/// CocCoc's engine-side ad blocking: with it on, engine requests shrink
/// and the native *ratio* climbs — the paper's irony quantified.
fn ablation_engine_adblock(c: &mut Criterion) {
    let world = world();
    let config = CampaignConfig::default();
    let coccoc = profile_by_name("CocCoc").unwrap();
    let unblocked = BrowserProfile { adblock: false, ..coccoc.clone() };

    let with_block = volume_row(&run_crawl(&world, &coccoc, &world.sites, &config));
    let without = volume_row(&run_crawl(&world, &unblocked, &world.sites, &config));
    assert!(
        with_block.engine_requests < without.engine_requests,
        "blocking must shrink the engine share"
    );
    assert!(with_block.request_ratio > without.request_ratio);

    let mut group = c.benchmark_group("ablation_engine_adblock");
    group.sample_size(10);
    group.bench_function("adblock_on", |b| {
        b.iter(|| run_crawl(&world, &coccoc, &world.sites, &config))
    });
    group.bench_function("adblock_off", |b| {
        b.iter(|| run_crawl(&world, &unblocked, &world.sites, &config))
    });
    group.finish();
}

/// DoH vs stub: the resolver choice alone adds native HTTPS flows.
fn ablation_doh_vs_stub(c: &mut Criterion) {
    let world = world();
    let config = CampaignConfig::default();
    let chrome = profile_by_name("Chrome").unwrap();
    let chrome_doh = BrowserProfile {
        resolver: ResolverKind::Doh(DohProvider::Google),
        ..chrome.clone()
    };

    let stub = volume_row(&run_crawl(&world, &chrome, &world.sites, &config));
    let doh = volume_row(&run_crawl(&world, &chrome_doh, &world.sites, &config));
    assert!(
        doh.native_requests > stub.native_requests * 2,
        "DoH inflates native traffic: {} vs {}",
        doh.native_requests,
        stub.native_requests
    );
    assert_eq!(doh.engine_requests, stub.engine_requests);

    let mut group = c.benchmark_group("ablation_doh_vs_stub");
    group.sample_size(10);
    group.bench_function("stub", |b| b.iter(|| run_crawl(&world, &chrome, &world.sites, &config)));
    group.bench_function("doh", |b| {
        b.iter(|| run_crawl(&world, &chrome_doh, &world.sites, &config))
    });
    group.finish();
}

/// Pinning: how much of a browser's native traffic the measurement loses
/// when the vendor pins its domains (footnote 3's lower bound).
fn ablation_pinning(c: &mut Criterion) {
    let world = world();
    let config = CampaignConfig::default();
    let samsung = profile_by_name("Samsung").unwrap();
    let unpinned = BrowserProfile { pinned_domains: Vec::new(), ..samsung.clone() };

    let pinned_run = run_crawl(&world, &samsung, &world.sites, &config);
    let open_run = run_crawl(&world, &unpinned, &world.sites, &config);
    let opaque = pinned_run.store.by_class(FlowClass::PinnedOpaque).len();
    assert!(opaque > 0, "pinned flows must appear as opaque");
    assert!(
        open_run.store.native_flows().len() > pinned_run.store.native_flows().len(),
        "unpinning reveals more native flows"
    );

    let mut group = c.benchmark_group("ablation_pinning");
    group.sample_size(10);
    group.bench_function("pinned", |b| {
        b.iter(|| run_crawl(&world, &samsung, &world.sites, &config))
    });
    group.bench_function("unpinned", |b| {
        b.iter(|| run_crawl(&world, &unpinned, &world.sites, &config))
    });
    group.finish();
}

/// The guard countermeasure: leak elimination and its overhead.
fn ablation_guard(c: &mut Criterion) {
    let world = world();
    let config = CampaignConfig::default();
    let yandex = profile_by_name("Yandex").unwrap();

    let unguarded = run_crawl(&world, &yandex, &world.sites, &config);
    assert!(leaks_anything(&unguarded));
    let guarded = run_crawl_with(&world, &yandex, &world.sites, &config, |proxy| {
        let policy = GuardPolicy {
            redact_history: true,
            ..GuardPolicy::strict(&[], &[])
        };
        proxy.install_addon(Box::new(GuardAddon::new(policy)));
    });
    assert!(!leaks_anything(&guarded), "guard must eliminate the leaks");

    let mut group = c.benchmark_group("ablation_guard");
    group.sample_size(10);
    group.bench_function("unguarded", |b| {
        b.iter(|| run_crawl(&world, &yandex, &world.sites, &config))
    });
    group.bench_function("guarded", |b| {
        b.iter(|| {
            run_crawl_with(&world, &yandex, &world.sites, &config, |proxy| {
                let policy = GuardPolicy {
                    redact_history: true,
                    ..GuardPolicy::strict(&[], &[])
                };
                proxy.install_addon(Box::new(GuardAddon::new(policy)));
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets =
        ablation_taint_verification,
        ablation_engine_adblock,
        ablation_doh_vs_stub,
        ablation_pinning,
        ablation_guard,
}
criterion_main!(ablations);
