//! Bundled blocklist data.
//!
//! The paper classifies native-request destinations with "the popular
//! Steven Black host list" (§3.1). Shipping the full ~100k-entry list is
//! pointless in a simulation; this excerpt covers (a) every ad/analytics
//! domain the paper names explicitly and (b) the ad networks the
//! simulated web embeds, which is the entire population of third-party
//! ad domains that can appear in a capture.

use crate::hosts::HostsList;

/// Raw hosts-format text of the bundled excerpt.
pub const STEVEN_BLACK_EXCERPT: &str = "\
# Title: StevenBlack/hosts (excerpt for the Panoptes reproduction)
# Ad/analytics domains named in the paper (§3.1, §3.5)
127.0.0.1 localhost
0.0.0.0 rubiconproject.com
0.0.0.0 adnxs.com
0.0.0.0 openx.net
0.0.0.0 pubmatic.com
0.0.0.0 bidswitch.net
0.0.0.0 demdex.net
0.0.0.0 appsflyersdk.com
0.0.0.0 appsflyer.com
0.0.0.0 doubleclick.net
0.0.0.0 adjust.com
0.0.0.0 outbrain.com
0.0.0.0 zemanta.com
0.0.0.0 scorecardresearch.com
# Common networks embedded by the simulated web
0.0.0.0 googlesyndication.com
0.0.0.0 google-analytics.com
0.0.0.0 googletagmanager.com
0.0.0.0 criteo.com
0.0.0.0 quantserve.com
0.0.0.0 taboola.com
0.0.0.0 amazon-adsystem.com
0.0.0.0 facebook.net
0.0.0.0 graph.facebook.com
0.0.0.0 branch.io
0.0.0.0 mopub.com
0.0.0.0 unity3d.ads.com
0.0.0.0 oleads.com
0.0.0.0 admob.com
0.0.0.0 chartboost.com
0.0.0.0 smartadserver.com
0.0.0.0 yieldmo.com
0.0.0.0 sharethrough.com
0.0.0.0 media.net
0.0.0.0 sovrn.com
0.0.0.0 indexexchange.com
0.0.0.0 triplelift.com
0.0.0.0 gumgum.com
0.0.0.0 adcolony.com
0.0.0.0 applovin.com
0.0.0.0 ironsrc.com
0.0.0.0 vungle.com
0.0.0.0 mintegral.com
0.0.0.0 gdt-adnet.com
0.0.0.0 mc.yandex.ru
0.0.0.0 an.yandex.ru
";

/// Parses the bundled excerpt.
pub fn steven_black_excerpt() -> HostsList {
    HostsList::parse(STEVEN_BLACK_EXCERPT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excerpt_parses_and_covers_paper_domains() {
        let list = steven_black_excerpt();
        assert!(list.len() >= 30);
        // Every domain the paper names for Figure 3 / §3.5 must be present.
        for host in [
            "rubiconproject.com",
            "adnxs.com",
            "openx.net",
            "pubmatic.com",
            "bidswitch.net",
            "demdex.net",
            "appsflyersdk.com",
            "doubleclick.net",
            "adjust.com",
            "outbrain.com",
            "zemanta.com",
            "scorecardresearch.com",
            "graph.facebook.com",
        ] {
            assert!(list.contains(host), "{host} missing from excerpt");
        }
    }

    #[test]
    fn excerpt_does_not_flag_first_parties() {
        let list = steven_black_excerpt();
        for host in ["site0001.example", "www.youtube.com", "bing.com", "sba.yandex.net"] {
            assert!(!list.contains(host), "{host} wrongly flagged");
        }
    }
}
