//! Offline shim for `bytes` 1.x: just [`Bytes`], an immutable
//! reference-counted byte buffer. Clones share the allocation, which is
//! what the proxy relies on when the same request body flows through
//! several addons.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// The empty buffer (no allocation shared with anything).
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        &self.0[..] == other.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3]);
        assert_eq!(&a[..], &[1u8, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from("hello".to_string());
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from(&b"a\"\x01"[..]);
        assert_eq!(format!("{a:?}"), "b\"a\\\"\\x01\"");
    }
}
