//! `any::<T>()` for the primitive types the workspace generates.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_full_width() {
        let mut rng = TestRng::from_seed(5);
        let s = any::<u32>();
        let mut high = false;
        for _ in 0..100 {
            if s.generate(&mut rng) > u32::MAX / 2 {
                high = true;
            }
        }
        assert!(high);
        let b = any::<bool>();
        let vals: Vec<bool> = (0..50).map(|_| b.generate(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }
}
