//! Deterministic workloads for the perf benchmarks and the
//! `bench_analysis` trajectory recorder: a synthetic ≥1k-rule
//! filterlist and a mixed hit/miss URL workload. Everything is
//! arithmetic — no RNG — so every run, machine and CI job measures the
//! exact same work.

use panoptes_blocklist::FilterList;

/// A synthetic filterlist: `anchors` domain-anchor rules, `substrings`
/// bare-token rules, plus a sprinkle of exceptions (one per 50 block
/// rules), in easylist syntax.
pub fn synthetic_filterlist(anchors: usize, substrings: usize) -> FilterList {
    let mut text = String::from("! synthetic benchmark list\n");
    for i in 0..anchors {
        text.push_str(&format!("||ad{i:04}.tracker{:02}.com^\n", i % 37));
        if i % 50 == 0 {
            text.push_str(&format!("@@||ad{i:04}.tracker{:02}.com/allowed^\n", i % 37));
        }
    }
    for i in 0..substrings {
        text.push_str(&format!("/sdk{i:03}ping/\n"));
    }
    FilterList::parse(&text)
}

/// A `(host, url)` workload against [`synthetic_filterlist`]: mostly
/// clean traffic (the realistic case — the vast majority of requests
/// match no rule) with periodic anchor hits, subdomain hits and
/// substring hits.
pub fn filterlist_workload(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            let (host, url) = match i % 10 {
                // Anchor hit on the exact domain.
                0 => {
                    let k = (i / 10) % 1200;
                    let host = format!("ad{k:04}.tracker{:02}.com", k % 37);
                    let url = format!("https://{host}/bid?slot={i}");
                    (host, url)
                }
                // Anchor hit via a subdomain.
                1 => {
                    let k = (i / 10) % 1200;
                    let host = format!("cdn{}.ad{k:04}.tracker{:02}.com", i % 7, k % 37);
                    let url = format!("https://{host}/pixel");
                    (host, url)
                }
                // Substring hit on the path.
                2 => {
                    let k = (i / 10) % 300;
                    let host = format!("site{}.example", i % 53);
                    let url = format!("https://{host}/assets/sdk{k:03}ping/v2?uid={i}");
                    (host, url)
                }
                // Clean traffic.
                _ => {
                    let host = format!("news{}.example.org", i % 211);
                    let url =
                        format!("https://{host}/story/{i}/index.html?ref=home&page={}", i % 9);
                    (host, url)
                }
            };
            (host, url)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_list_is_big_enough_and_engines_agree() {
        let list = synthetic_filterlist(1200, 300);
        assert!(list.len() >= 1000, "got {}", list.len());
        let urls = filterlist_workload(500);
        let mut hits = 0usize;
        for (h, u) in &urls {
            let indexed = list.should_block(h, u);
            assert_eq!(indexed, list.should_block_linear(h, u), "{h} {u}");
            hits += indexed as usize;
        }
        // The workload exercises both outcomes.
        assert!(hits > 0 && hits < urls.len(), "hits={hits}");
    }
}
