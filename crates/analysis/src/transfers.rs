//! §3.4: international data transfers.
//!
//! "We extract the IP address of every remote server receiving native
//! requests from the tested browsers, and use a popular
//! IP-to-geolocation service to extract its country-level location. We
//! see that while the crawls took place from EU, in case of the mobile
//! browsers Yandex, QQ and UC International which leak in full detail
//! the browsing history of the users, the requests are being received by
//! servers located in Russia, China, and Canada, respectively."

use std::collections::BTreeMap;

use panoptes::campaign::CampaignResult;
use panoptes_geo::{Country, GeoDb};
use panoptes_http::netaddr::IpAddr;

use panoptes_mitm::Flow;

use crate::history::{detect_history_leaks, HistoryLeak, LeakGranularity};

/// Where one browser's history leaks land.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRow {
    /// Browser name.
    pub browser: String,
    /// Worst leak granularity (context for severity).
    pub granularity: LeakGranularity,
    /// `(destination host, country)` of each leak destination.
    pub destinations: Vec<(String, Country)>,
    /// True when any full-detail leak lands outside the EU.
    pub leaves_eu: bool,
}

/// Mergeable accumulator form of the §3.4 detector's capture pass: the
/// destination-host → first-seen IP map. `merge` is **ordered** (`other`
/// covers flows strictly after `self`'s shard) so first-IP-wins survives
/// sharding; the geolocation itself happens at `finish` against the
/// history leaks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferPartial {
    dest_ip: BTreeMap<String, IpAddr>,
}

impl TransferPartial {
    /// Folds one captured flow into the accumulator.
    pub fn observe(&mut self, flow: &Flow) {
        if !self.dest_ip.contains_key(flow.host.as_str()) {
            self.dest_ip.insert(flow.host.to_string(), flow.dst_ip);
        }
    }

    /// Absorbs a later shard's accumulator (flows after `self`'s).
    pub fn merge(&mut self, other: TransferPartial) {
        for (host, ip) in other.dest_ip {
            self.dest_ip.entry(host).or_insert(ip);
        }
    }

    /// Finalises the browser's transfer row against its history leaks.
    pub fn finish(
        self,
        browser: &str,
        leaks: &[HistoryLeak],
        geo: &GeoDb,
    ) -> Option<TransferRow> {
        let worst = leaks.iter().map(|l| l.granularity).max()?;
        let mut destinations = Vec::new();
        for leak in leaks {
            if leak.granularity != worst {
                continue;
            }
            if let Some(country) =
                self.dest_ip.get(&leak.destination).and_then(|ip| geo.country_of(*ip))
            {
                if !destinations.iter().any(|(h, _)| h == &leak.destination) {
                    destinations.push((leak.destination.clone(), country));
                }
            }
        }
        let leaves_eu = destinations.iter().any(|(_, c)| !c.is_eu());
        Some(TransferRow {
            browser: browser.to_string(),
            granularity: worst,
            destinations,
            leaves_eu,
        })
    }
}

/// Geolocates every history-leak destination of a campaign.
pub fn transfer_row(result: &CampaignResult, geo: &GeoDb) -> Option<TransferRow> {
    let leaks = detect_history_leaks(result);
    let mut partial = TransferPartial::default();
    for flow in result.store.snapshot().iter() { // multipass-ok: legacy standalone detector
        partial.observe(flow);
    }
    partial.finish(&result.profile.name, &leaks, geo)
}

/// §3.4 over a full study: rows for every browser that leaks history.
pub fn transfers(results: &[CampaignResult], geo: &GeoDb) -> Vec<TransferRow> {
    results.iter().filter_map(|r| transfer_row(r, geo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn full_detail_leakers_land_outside_eu() {
        let world =
            World::build(&GeneratorConfig { popular: 6, sensitive: 3, ..Default::default() });
        let config = CampaignConfig::default();
        let geo = GeoDb::standard();
        let cases = [
            ("Yandex", "RU"),
            ("QQ", "CN"),
            ("UC International", "CA"),
        ];
        for (name, country) in cases {
            let result =
                run_crawl(&world, &profile_by_name(name).unwrap(), &world.sites, &config);
            let row = transfer_row(&result, &geo).unwrap_or_else(|| panic!("{name} leaks"));
            assert_eq!(row.granularity, LeakGranularity::FullUrl, "{name}");
            assert!(row.leaves_eu, "{name}");
            assert!(
                row.destinations.iter().any(|(_, c)| c.as_str() == country),
                "{name} → {country}, got {:?}",
                row.destinations
            );
        }
    }

    #[test]
    fn clean_browser_has_no_transfer_row() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 2, ..Default::default() });
        let result = run_crawl(
            &world,
            &profile_by_name("Brave").unwrap(),
            &world.sites,
            &CampaignConfig::default(),
        );
        assert!(transfer_row(&result, &GeoDb::standard()).is_none());
    }
}
