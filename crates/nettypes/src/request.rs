//! HTTP requests with wire-size accounting.

use bytes::Bytes;

use crate::headers::Headers;
use crate::method::Method;
use crate::url::Url;

/// The application protocol a request was attempted over. The packet filter
/// blocks QUIC (HTTP/3) exactly as Panoptes does (§2.2), forcing browsers
/// to fall back to h2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpVersion {
    /// HTTP/1.1 over TCP.
    H1,
    /// HTTP/2 over TCP.
    H2,
    /// HTTP/3 over QUIC/UDP.
    H3,
}

impl HttpVersion {
    /// Wire label (`"h1"`, `"h2"`, `"h3"`).
    pub fn as_str(self) -> &'static str {
        match self {
            HttpVersion::H1 => "h1",
            HttpVersion::H2 => "h2",
            HttpVersion::H3 => "h3",
        }
    }

    /// Parses the label produced by [`Self::as_str`].
    pub fn parse(s: &str) -> Option<HttpVersion> {
        Some(match s {
            "h1" => HttpVersion::H1,
            "h2" => HttpVersion::H2,
            "h3" => HttpVersion::H3,
            _ => return None,
        })
    }
}

/// An outgoing HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Absolute target URL.
    pub url: Url,
    /// Header fields in wire order.
    pub headers: Headers,
    /// Request body (empty for GET/HEAD).
    pub body: Bytes,
    /// Protocol version the client wants to use.
    pub version: HttpVersion,
}

impl Request {
    /// Builds a GET request with no body.
    pub fn get(url: Url) -> Request {
        Request {
            method: Method::Get,
            url,
            headers: Headers::new(),
            body: Bytes::new(),
            version: HttpVersion::H2,
        }
    }

    /// Builds a POST request with the given body.
    pub fn post(url: Url, body: impl Into<Bytes>) -> Request {
        Request {
            method: Method::Post,
            url,
            headers: Headers::new(),
            body: body.into(),
            version: HttpVersion::H2,
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.append(name, value);
        self
    }

    /// Sets the protocol version (builder style).
    pub fn with_version(mut self, version: HttpVersion) -> Request {
        self.version = version;
        self
    }

    /// Estimated bytes this request occupies on the wire: request line,
    /// headers, separator and body. This is the quantity summed for the
    /// paper's Figure 4 (outgoing traffic volume).
    pub fn wire_size(&self) -> u64 {
        let request_line =
            self.method.as_str().len() as u64 + 1 + self.url.encoded_len() as u64 + 11;
        request_line + self.headers.wire_size() + 2 + self.body.len() as u64
    }

    /// Convenience: the target hostname.
    pub fn host(&self) -> &str {
        self.url.host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_builder() {
        let r = Request::get(Url::parse("https://example.com/a").unwrap())
            .with_header("User-Agent", "test");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.host(), "example.com");
        assert_eq!(r.headers.get("user-agent"), Some("test"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn wire_size_grows_with_body_and_headers() {
        let url = Url::parse("https://example.com/a").unwrap();
        let bare = Request::get(url.clone());
        let with_header = Request::get(url.clone()).with_header("A", "1");
        let with_body = Request::post(url, vec![0u8; 100]);
        assert!(with_header.wire_size() > bare.wire_size());
        assert!(with_body.wire_size() > bare.wire_size() + 99);
    }

    #[test]
    fn version_labels_roundtrip() {
        for v in [HttpVersion::H1, HttpVersion::H2, HttpVersion::H3] {
            assert_eq!(HttpVersion::parse(v.as_str()), Some(v));
        }
        assert_eq!(HttpVersion::parse("spdy"), None);
    }
}
