//! # panoptes-bench
//!
//! The reproduction harness: shared experiment drivers used both by the
//! `repro` binary (which regenerates every table and figure of the paper
//! as Markdown) and by the Criterion benchmarks (one bench target per
//! artefact).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod capture_baseline;
pub mod experiments;
pub mod perf;
pub mod render;
