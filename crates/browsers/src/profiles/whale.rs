//! Whale 2.10.2.2 (Naver) — native share above 1/3 (Fig 2) and the most
//! invasive Table 2 row after Opera: resolution, **local IP**, **rooted
//! status**, locale, country and network type all ride its vendor
//! telemetry.

use panoptes_simnet::dns::DohProvider;

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};

/// The Whale pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("Whale", "2.10.2.2", "com.naver.whale")
        .doh(DohProvider::Cloudflare)
        .h3()
        .leaks(&[
            PiiField::Resolution,
            PiiField::LocalIp,
            PiiField::RootedStatus,
            PiiField::Locale,
            PiiField::Country,
            PiiField::NetworkType,
        ])
        .startup(vec![
            NativeCall::ping("whale-update.naver.com", "/update/check"),
            NativeCall::ping("static.whale.naver.com", "/newtab/assets"),
            NativeCall::ping("favicon.whale.naver.com", "/api/favicons"),
        ])
        .per_visit(vec![
            NativeCall::ping("api-whale.naver.com", "/v2/stats")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(100)
                .times(4),
            NativeCall::ping("static.whale.naver.com", "/newtab/assets"),
        ])
        .idle_burst(vec![
            NativeCall::ping("static.whale.naver.com", "/newtab/assets"),
            NativeCall::ping("favicon.whale.naver.com", "/api/favicons"),
            NativeCall::ping("static.whale.naver.com", "/newtab/weather"),
            NativeCall::ping("static.whale.naver.com", "/newtab/news"),
            NativeCall::ping("whale-update.naver.com", "/update/check"),
        ])
        .idle_periodic(vec![
            (60, NativeCall::ping("api-whale.naver.com", "/v2/stats")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(100)),
            (150, NativeCall::ping("static.whale.naver.com", "/newtab/news")),
            (300, NativeCall::ping("whale-update.naver.com", "/update/check")),
        ])
}
