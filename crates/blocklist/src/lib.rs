//! # panoptes-blocklist
//!
//! Two filterlist engines the measurement depends on:
//!
//! * [`hosts::HostsList`] — a parser/matcher for hosts-file-style
//!   blocklists. The paper classifies the domains receiving native
//!   requests "as classified by the popular Steven Black host list"
//!   (§3.1, Figure 3); [`data::steven_black_excerpt`] bundles the
//!   relevant excerpt.
//! * [`filterlist::FilterList`] — an easylist-lite engine with
//!   `||domain^` anchors, substring rules and `@@` exceptions. The CocCoc
//!   browser "enforces the easylist filterlist in its web engine" (§3.1),
//!   which our CocCoc model reproduces — while still phoning home
//!   natively, the irony the paper points out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! ```
//! use panoptes_blocklist::data::steven_black_excerpt;
//!
//! let list = steven_black_excerpt();
//! assert!(list.contains("stats.g.doubleclick.net")); // subdomains covered
//! assert!(!list.contains("wikipedia.org"));
//! ```

pub mod automaton;
pub mod data;
pub mod filterlist;
pub mod hosts;

pub use filterlist::FilterList;
pub use hosts::HostsList;
