//! The idle experiment (§3.5): launch each browser, leave it at its
//! start page for ten minutes with no interaction, capture the chatter.

use std::sync::Arc;

use panoptes_browsers::browser::Env;
use panoptes_browsers::{Browser, BrowserProfile, BrowsingMode};
use panoptes_instrument::tap::{RequestTap, TaintInjector};
use panoptes_mitm::{FlowStore, TAINT_HEADER};
use panoptes_simnet::clock::{SimDuration, SimInstant};
use panoptes_web::World;

use crate::config::CampaignConfig;
use crate::testbed::Testbed;

/// Output of one browser's idle run.
///
/// Cloning shares the capture store via `Arc`; flows are not copied.
#[derive(Clone)]
pub struct IdleResult {
    /// The browser.
    pub profile: BrowserProfile,
    /// Capture database for the idle window (plus launch).
    pub store: Arc<FlowStore>,
    /// Native requests the model reports having sent while idle
    /// (excluding launch-time traffic).
    pub idle_sent: u32,
    /// Duration of the idle window.
    pub duration: SimDuration,
    /// Virtual time the idle window began (flows before this are
    /// launch-time traffic, not idle chatter).
    pub idle_start: SimInstant,
}

/// Runs the §3.5 experiment: launch, then `duration` (the paper uses 10
/// minutes) of no interaction.
pub fn run_idle(
    world: &World,
    profile: &BrowserProfile,
    duration: SimDuration,
    config: &CampaignConfig,
) -> IdleResult {
    let mut bed = Testbed::assemble(world, config);
    let uid = bed.divert_browser(&profile.package, config.proxy_port);
    let tap: Arc<dyn RequestTap> = Arc::new(TaintInjector::new(TAINT_HEADER, &bed.token));

    let mut browser = Browser::launch_with(
        profile.clone(),
        uid,
        config.seed,
        BrowsingMode::Normal,
        config.shared_filterlist.clone(),
    );
    let data = bed.device.packages.data_mut(&profile.package).expect("installed");
    let mut env = Env {
        net: &bed.net,
        clock: &mut bed.clock,
        props: &bed.device.props,
        data,
        tap: Some(tap),
    };
    browser.startup(&mut env);
    let launch_end = env.clock.now();
    let idle_sent = browser.idle(&mut env, duration);
    debug_assert!(env.clock.now().since(launch_end) >= duration);

    IdleResult { profile: profile.clone(), store: bed.store, idle_sent, duration, idle_start: launch_end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;

    fn world() -> World {
        World::build(&GeneratorConfig { popular: 3, sensitive: 2, ..Default::default() })
    }

    #[test]
    fn dolphin_idle_is_facebook_dominated() {
        let world = world();
        let result = run_idle(
            &world,
            &profile_by_name("Dolphin").unwrap(),
            SimDuration::from_secs(600),
            &CampaignConfig::default(),
        );
        let snap = result.store.snapshot();
        // Exclude launch-time flows: idle chatter starts after startup.
        let graph =
            snap.native().iter().filter(|f| f.host == "graph.facebook.com").count();
        assert!(graph >= 15, "graph heartbeats, got {graph}");
        assert!(result.idle_sent > 0);
    }

    #[test]
    fn opera_idle_grows_linearly() {
        let world = world();
        let result = run_idle(
            &world,
            &profile_by_name("Opera").unwrap(),
            SimDuration::from_secs(600),
            &CampaignConfig::default(),
        );
        let mut times: Vec<u64> = result
            .store
            .snapshot()
            .native()
            .iter()
            .filter(|f| f.host == "news.opera-api.com")
            .map(|f| f.time_us)
            .collect();
        times.sort_unstable();
        assert!(times.len() >= 45, "news ticks: {}", times.len());
        // Constant cadence ⇒ the second half holds about as many events
        // as the first (linear growth, not front-loaded burst).
        let midpoint = times[0] + (times[times.len() - 1] - times[0]) / 2;
        let first_half = times.iter().filter(|t| **t <= midpoint).count();
        let second_half = times.len() - first_half;
        let ratio = first_half as f64 / second_half.max(1) as f64;
        assert!((0.7..1.4).contains(&ratio), "linear-ish, got {ratio}");
    }

    #[test]
    fn quiet_browser_idles_quietly() {
        let world = world();
        let result = run_idle(
            &world,
            &profile_by_name("Brave").unwrap(),
            SimDuration::from_secs(600),
            &CampaignConfig::default(),
        );
        assert!(result.idle_sent < 10, "Brave sent {}", result.idle_sent);
    }
}
