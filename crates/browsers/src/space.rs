//! Deterministic sampling of the behaviour-model space.
//!
//! [`BrowserSpace::sample`] mints `n` coherent browser variants from a
//! 64-bit seed. The contract (DESIGN.md §9):
//!
//! - **Deterministic**: `sample(seed, n)` is a pure function — same seed
//!   and count produce the byte-identical variant list on every run,
//!   platform, and worker count.
//! - **Prefix-stable**: each variant is generated from its own
//!   SplitMix64-derived stream (`mix(seed, index)`), so
//!   `sample(seed, n)` is a prefix of `sample(seed, m)` for `n ≤ m` —
//!   growing a population never reshuffles the browsers already in it.
//! - **Collision-free naming**: sampled names always end in a
//!   `-NNN` index suffix; no pinned paper browser is ever shadowed, for
//!   any seed.
//! - **Coherent by construction**: every sampled model satisfies
//!   [`BehaviorModel::coherence_errors`] — the property tests assert it
//!   over the whole seed space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::DohProvider;

/// Vendor-name word pool. Two independent draws (vendor, product) give
/// 576 stems; the index suffix makes every sampled name unique anyway.
const VENDORS: [&str; 24] = [
    "auriga", "borealis", "cinder", "dorado", "ember", "fennec", "gossamer", "halcyon",
    "indigo", "juniper", "kestrel", "lumen", "meridian", "nimbus", "oriole", "pavo",
    "quasar", "rowan", "saffron", "talon", "umbra", "vela", "wisteria", "zephyr",
];

/// Product-name word pool (the capitalized half of the display name).
const PRODUCTS: [&str; 24] = [
    "Arc", "Beam", "Comet", "Dart", "Echo", "Flare", "Glide", "Haze",
    "Ion", "Jet", "Karo", "Lark", "Mist", "Nova", "Orbit", "Pike",
    "Quill", "Ray", "Spark", "Trail", "Vector", "Wave", "Yonder", "Zoom",
];

/// Third-party ad/analytics SDK hosts sampled browsers may embed —
/// drawn from the paper's §3.1 contact tables (the same hosts the 15
/// pinned browsers talk to, so blocklist classification stays busy).
const AD_HOSTS: [&str; 8] = [
    "app.adjust.com",
    "graph.facebook.com",
    "googleads.g.doubleclick.net",
    "t.appsflyer.com",
    "sb.scorecardresearch.com",
    "dpm.demdex.net",
    "ib.adnxs.com",
    "widgets.outbrain.com",
];

/// The sampled half of the browser population.
pub struct BrowserSpace;

impl BrowserSpace {
    /// Samples `n` coherent browser variants from `seed`.
    pub fn sample(seed: u64, n: usize) -> Vec<BehaviorModel> {
        (0..n).map(|index| BrowserSpace::variant(seed, index)).collect()
    }

    /// Generates the variant at `index` of the stream rooted at `seed`.
    /// Pure: every call with equal arguments yields an equal model.
    pub fn variant(seed: u64, index: usize) -> BehaviorModel {
        let mut rng = StdRng::seed_from_u64(mix(seed, index as u64));

        // ---- identity --------------------------------------------------
        let vendor = VENDORS[rng.gen_range(0..VENDORS.len())];
        let product = PRODUCTS[rng.gen_range(0..PRODUCTS.len())];
        let name = format!("{product} {}-{index:03}", capitalize(vendor));
        let version = format!(
            "{}.{}.{}.{}",
            rng.gen_range(60..=120u32),
            rng.gen_range(0..=9u32),
            rng.gen_range(1000..=6000u32),
            rng.gen_range(10..=99u32)
        );
        let package = format!("com.{vendor}.{}{index:03}", product.to_lowercase());
        let tld = ["com", "net", "io"][rng.gen_range(0..3usize)];
        let domain = format!("{vendor}browser.{tld}");

        // ---- axes ------------------------------------------------------
        let instrumentation = match rng.gen_range(0..10u32) {
            0..=5 => Instrumentation::Cdp,
            6..=8 => Instrumentation::FridaWebView,
            _ => Instrumentation::FridaInternalApi,
        };
        let incognito_offered = !rng.gen_bool(0.12);
        let doh = match rng.gen_range(0..10u32) {
            0..=4 => None,
            5..=7 => Some(DohProvider::Cloudflare),
            _ => Some(DohProvider::Google),
        };
        let adblock = rng.gen_bool(0.08);
        let h3 = rng.gen_bool(0.6);
        let honors_consent = rng.gen_bool(0.3);
        let persistent = rng.gen_bool(0.35);
        let id_key = format!("{vendor}uid");
        let pins_vendor = rng.gen_bool(0.15);
        let js_collector = rng.gen_bool(0.05);

        // PII set: draw a target count, then walk Table 2's columns in
        // order — an ordered subset, no shuffling needed.
        let pii_count = rng.gen_range(0..=6usize);
        let mut pii = Vec::new();
        for field in PiiField::ALL {
            if pii.len() == pii_count {
                break;
            }
            if rng.gen_bool(0.5) {
                pii.push(field);
            }
        }

        // ---- call catalogues -------------------------------------------
        // Startup: the vendor update check (always present — it anchors
        // any pinned domain) plus a few ad-SDK registrations.
        let mut startup = vec![NativeCall::ping(&format!("update.{domain}"), "/v1/check")];
        for _ in 0..rng.gen_range(0..=3u32) {
            let host = AD_HOSTS[rng.gen_range(0..AD_HOSTS.len())];
            startup.push(NativeCall::ping(host, "/app/register").via_post().padded(64));
        }

        // Per-visit: optional history channel, telemetry beacon, ad-SDK
        // event. `respects_incognito` only where a private mode exists.
        let mut per_visit = Vec::new();
        let respects = |rng: &mut StdRng, p: f64| incognito_offered && rng.gen_bool(p);
        if rng.gen_bool(0.4) {
            // A history-reporting channel in one of the paper's shapes.
            let payload = if persistent && rng.gen_bool(0.3) {
                Payload::hostname_plus_id("host", &id_key)
            } else {
                match rng.gen_range(0..4u32) {
                    0 => Payload::full_url_base64("url"),
                    1 => Payload::full_url_plain("u"),
                    _ => Payload::domain_only("domain"),
                }
            };
            let call = NativeCall::ping(&format!("api.{domain}"), "/v1/visit").carrying(payload);
            per_visit.push(if respects(&mut rng, 0.25) { call.respecting_incognito() } else { call });
        }
        if rng.gen_bool(0.7) {
            let call = NativeCall::ping(&format!("mc.{domain}"), "/collect")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(rng.gen_range(40..=160u32))
                .times(rng.gen_range(1..=3u32));
            per_visit.push(if respects(&mut rng, 0.3) { call.respecting_incognito() } else { call });
        }
        if rng.gen_bool(0.3) {
            let host = AD_HOSTS[rng.gen_range(0..AD_HOSTS.len())];
            per_visit.push(NativeCall::ping(host, "/sdk/event").via_post().carrying(Payload::AdSdkJson));
        }

        // Idle: a slow vendor heartbeat for some variants.
        let mut periodic = Vec::new();
        if rng.gen_bool(0.4) {
            let interval = rng.gen_range(30..=300u64);
            periodic.push((
                interval,
                NativeCall::ping(&format!("mc.{domain}"), "/heartbeat")
                    .via_post()
                    .carrying(Payload::Telemetry)
                    .padded(48),
            ));
        }

        // ---- assemble --------------------------------------------------
        let mut model = BehaviorModel::new(&name, &version, &package)
            .instrument(instrumentation)
            .leaks(&pii)
            .startup(startup)
            .per_visit(per_visit)
            .idle_periodic(periodic);
        if !incognito_offered {
            model = model.no_incognito();
        }
        if let Some(provider) = doh {
            model = model.doh(provider);
        }
        if adblock {
            model = model.adblocking();
        }
        if h3 {
            model = model.h3();
        }
        if honors_consent {
            model = model.honors_consent();
        }
        if persistent {
            model = model.persistent_id(&id_key);
        }
        if pins_vendor {
            // The startup update check always contacts `update.{domain}`,
            // so pinning the vendor's registrable domain is coherent.
            model = model.pins(&domain);
        }
        if js_collector {
            model = model.injects_js(&format!("collect.{domain}"));
        }

        // Persistent identifiers require a channel that survives
        // incognito; the update ping never respects incognito, so the
        // strict-privacy invariant holds by construction. Debug-assert
        // the whole contract anyway.
        debug_assert!(
            model.coherence_errors().is_empty(),
            "sampled variant {index} incoherent: {:?}",
            model.coherence_errors()
        );
        model
    }
}

/// SplitMix64-style finalizer combining the space seed with a variant
/// index into an independent per-variant stream seed.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = BrowserSpace::sample(7, 32);
        let b = BrowserSpace::sample(7, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_is_prefix_stable() {
        let short = BrowserSpace::sample(7, 10);
        let long = BrowserSpace::sample(7, 100);
        assert_eq!(&long[..10], &short[..]);
    }

    #[test]
    fn sampled_names_carry_index_suffix() {
        for (index, model) in BrowserSpace::sample(3, 20).iter().enumerate() {
            assert!(
                model.name.ends_with(&format!("-{index:03}")),
                "{} lacks its index suffix",
                model.name
            );
        }
    }

    #[test]
    fn sampled_models_are_coherent() {
        for model in BrowserSpace::sample(11, 64) {
            assert_eq!(model.coherence_errors(), Vec::<String>::new(), "{}", model.name);
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        assert_ne!(BrowserSpace::sample(1, 8), BrowserSpace::sample(2, 8));
    }
}
