//! Property-based tests for the simulator's core data structures.

use proptest::prelude::*;

use panoptes_simnet::clock::{SimDuration, SimInstant};
use panoptes_simnet::filter::{FilterTable, MatchSpec, Proto, Target, Verdict};
use panoptes_simnet::net::LatencyModel;
use panoptes_simnet::tls::{handshake, CaId, CertificateAuthority, PinPolicy, TrustStore};
use panoptes_simnet::EventQueue;

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_stable(
        events in proptest::collection::vec((0u64..1000, any::<u32>()), 0..200),
    ) {
        let mut queue = EventQueue::new();
        for (i, (t, payload)) in events.iter().enumerate() {
            queue.push(SimInstant(*t), (*payload, i));
        }
        let mut popped = Vec::new();
        while let Some((at, item)) = queue.pop() {
            popped.push((at, item));
        }
        prop_assert_eq!(popped.len(), events.len());
        // Time-sorted, and FIFO (insertion index increasing) within equal
        // times.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1.1 < w[1].1.1);
            }
        }
    }

    #[test]
    fn filter_matches_reference_implementation(
        rules in proptest::collection::vec(
            (
                proptest::option::of(0u32..5),
                proptest::option::of(prop::bool::ANY),
                proptest::option::of(prop::sample::select(vec![53u16, 80, 443, 8080])),
                0u8..3,
            ),
            0..20,
        ),
        uid in 0u32..5,
        is_udp in prop::bool::ANY,
        dport in prop::sample::select(vec![53u16, 80, 443, 8080]),
    ) {
        let mut table = FilterTable::new();
        for (r_uid, r_udp, r_port, target) in &rules {
            let mut spec = MatchSpec::any();
            spec.uid = *r_uid;
            spec.proto = r_udp.map(|u| if u { Proto::Udp } else { Proto::Tcp });
            spec.dport = *r_port;
            let target = match target {
                0 => Target::Accept,
                1 => Target::Drop,
                _ => Target::RedirectTo(9090),
            };
            table.append(spec, target);
        }
        let proto = if is_udp { Proto::Udp } else { Proto::Tcp };
        let got = table.evaluate(uid, proto, dport);

        // Reference: first matching rule wins, default accept.
        let mut expected = Verdict::Accept;
        for (r_uid, r_udp, r_port, target) in &rules {
            let m_uid = r_uid.is_none() || *r_uid == Some(uid);
            let m_proto = r_udp.is_none() || *r_udp == Some(is_udp);
            let m_port = r_port.is_none() || *r_port == Some(dport);
            if m_uid && m_proto && m_port {
                expected = match target {
                    0 => Verdict::Accept,
                    1 => Verdict::Drop,
                    _ => Verdict::Redirect(9090),
                };
                break;
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn latency_is_deterministic_and_nonnegative(
        host in "[a-z]{1,12}\\.[a-z]{2,3}",
        out in 0u64..1_000_000,
        inn in 0u64..1_000_000,
    ) {
        let model = LatencyModel::default();
        let a = model.latency(&host, out, inn);
        let b = model.latency(&host, out, inn);
        prop_assert_eq!(a, b);
        prop_assert!(a >= model.base_rtt);
    }

    #[test]
    fn clock_arithmetic_is_monotone(offsets in proptest::collection::vec(0u64..1_000_000, 0..50)) {
        let mut t = SimInstant::EPOCH;
        for o in offsets {
            let next = t.plus(SimDuration(o));
            prop_assert!(next >= t);
            prop_assert_eq!(next.since(t), SimDuration(o));
            t = next;
        }
    }

    #[test]
    fn handshake_never_succeeds_without_trust(
        host in "[a-z]{1,10}\\.com",
        intercepted in prop::bool::ANY,
    ) {
        // Empty trust store: nothing should ever complete.
        let trust = TrustStore::default();
        let ca = CertificateAuthority::new(if intercepted {
            CaId::mitm()
        } else {
            CaId::public_web_pki()
        });
        let outcome = handshake(&trust, &PinPolicy::none(), &host, &ca.issue(&host), intercepted);
        prop_assert!(!outcome.is_ok());
    }

    #[test]
    fn pinned_domain_always_defeats_interception(host_label in "[a-z]{1,10}") {
        let host = format!("{host_label}.vendor.com");
        let mut trust = TrustStore::system();
        trust.install(CaId::mitm());
        let pins = PinPolicy::pin(&["vendor.com"]);
        let mitm = CertificateAuthority::new(CaId::mitm());
        let outcome = handshake(&trust, &pins, &host, &mitm.issue(&host), true);
        prop_assert!(!outcome.is_ok());
    }
}
