//! The `MetricsReport` renderer behind `repro --metrics`.
//!
//! The report is two strictly separated sections. The **deterministic**
//! section holds the metrics whose values are pure functions of the
//! workload — it is rendered by [`render_deterministic`] alone, with no
//! timing, topology or gauge data mixed in, which is what lets the
//! determinism tests (and CI) assert that section byte-identical across
//! `--jobs 1`, `--jobs 8` and `--jobs 8 --overlap`. The **runtime**
//! section holds everything else: timings, shard topology, gauges,
//! process-lifetime cache state.
//!
//! All formatting is integer-only (counts, sums, log2 buckets, and the
//! p50/p99 upper bounds derived from the buckets) — no floats anywhere
//! near the deterministic section, so there is no rounding to betray
//! the byte-identity guarantee.

use crate::metrics::{MetricClass, MetricEntry, MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Width the metric names pad to; long names simply overflow the column.
const NAME_WIDTH: usize = 44;

/// The largest value bucket `k` can hold: log2 buckets store `v` with
/// bit length `k`, so bucket 0 holds only zeros and bucket `k` tops out
/// at `2^k - 1`.
fn bucket_upper_bound(bucket: u32) -> u64 {
    match bucket {
        0 => 0,
        k if k >= 64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// Nearest-rank percentile over log2 buckets: the upper bound of the
/// bucket holding the `ceil(p·count/100)`-th smallest sample. A pure
/// integer function of the (deterministic) buckets, so it is safe in
/// the byte-identity section.
fn bucket_percentile(buckets: &[(u32, u64)], count: u64, p: u64) -> u64 {
    let rank = (p * count).div_ceil(100).max(1);
    let mut cumulative = 0u64;
    for &(bucket, n) in buckets {
        cumulative += n;
        if cumulative >= rank {
            return bucket_upper_bound(bucket);
        }
    }
    buckets.last().map_or(0, |&(bucket, _)| bucket_upper_bound(bucket))
}

fn render_entry(out: &mut String, e: &MetricEntry) {
    match &e.value {
        MetricValue::Counter(v) => {
            let _ = writeln!(out, "  {:<NAME_WIDTH$} {v}", e.name);
        }
        MetricValue::Gauge { value, max } => {
            let _ = writeln!(out, "  {:<NAME_WIDTH$} level={value} high_water={max}", e.name);
        }
        MetricValue::Histogram { count, sum, buckets } => {
            let _ = write!(out, "  {:<NAME_WIDTH$} count={count} sum={sum}", e.name);
            if *count > 0 {
                let p50 = bucket_percentile(buckets, *count, 50);
                let p99 = bucket_percentile(buckets, *count, 99);
                let _ = write!(out, " p50<={p50} p99<={p99}");
            }
            out.push_str(" log2=[");
            for (i, (bucket, n)) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{bucket}:{n}");
            }
            out.push_str("]\n");
        }
    }
}

/// Renders only the deterministic section body (no header), the exact
/// bytes the determinism assertions compare.
pub fn render_deterministic(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for e in snapshot.of_class(MetricClass::Deterministic) {
        render_entry(&mut out, e);
    }
    out
}

/// Renders the full two-section report.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== metrics: deterministic (byte-identical across --jobs / --overlap) ==\n");
    let det = render_deterministic(snapshot);
    if det.is_empty() {
        out.push_str("  (none recorded)\n");
    } else {
        out.push_str(&det);
    }
    out.push_str("== metrics: runtime (this execution only) ==\n");
    let mut any = false;
    for e in snapshot.of_class(MetricClass::Runtime) {
        any = true;
        render_entry(&mut out, e);
    }
    if !any {
        out.push_str("  (none recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            entries: vec![
                MetricEntry {
                    name: "fleet.units.completed".into(),
                    class: MetricClass::Runtime,
                    value: MetricValue::Counter(8),
                },
                MetricEntry {
                    name: "mitm.flows.built".into(),
                    class: MetricClass::Deterministic,
                    value: MetricValue::Counter(1234),
                },
                MetricEntry {
                    name: "simnet.queue.drain_depth".into(),
                    class: MetricClass::Deterministic,
                    value: MetricValue::Histogram {
                        count: 3,
                        sum: 12,
                        buckets: vec![(2, 2), (4, 1)],
                    },
                },
                MetricEntry {
                    name: "study.overlap.occupancy".into(),
                    class: MetricClass::Runtime,
                    value: MetricValue::Gauge { value: 0, max: 2 },
                },
            ],
        }
    }

    #[test]
    fn deterministic_section_excludes_runtime_entries() {
        let det = render_deterministic(&sample());
        assert!(det.contains("mitm.flows.built"));
        assert!(det.contains("simnet.queue.drain_depth"));
        assert!(!det.contains("fleet.units.completed"));
        assert!(!det.contains("study.overlap.occupancy"));
    }

    #[test]
    fn full_report_renders_both_sections_in_order() {
        let report = render(&sample());
        let det_header = report.find("deterministic").expect("det header");
        let runtime_header = report.find("runtime (this execution").expect("runtime header");
        assert!(det_header < runtime_header);
        assert!(report.contains(
            "simnet.queue.drain_depth                     count=3 sum=12 p50<=3 p99<=15 log2=[2:2 4:1]"
        ));
        assert!(report.contains("study.overlap.occupancy                      level=0 high_water=2"));
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        // 3 samples in bucket 2 (values 2..=3), 1 in bucket 4 (8..=15).
        let buckets = vec![(2u32, 3u64), (4, 1)];
        assert_eq!(bucket_percentile(&buckets, 4, 50), 3, "rank 2 lands in bucket 2");
        assert_eq!(bucket_percentile(&buckets, 4, 99), 15, "rank 4 lands in bucket 4");
        assert_eq!(bucket_percentile(&[(0, 5)], 5, 99), 0, "bucket 0 holds only zeros");
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn empty_sections_say_so() {
        let report = render(&MetricsSnapshot::default());
        assert_eq!(report.matches("(none recorded)").count(), 2);
    }
}
