//! Records the analysis-path perf trajectory as `BENCH_analysis.json`.
//!
//! Measures, with plain wall-clock timing (no Criterion machinery, so
//! the numbers are trivially reproducible):
//!
//! * the ~10-pass extraction workload over a quick-scale capture —
//!   cloning + reparse baseline vs sealed snapshot + `FlowFacts`;
//! * the full study report (flows/sec through `study_report`);
//! * `FilterList::should_block` over a 1.5k-rule list — reference
//!   linear scan vs indexed engine (matches/sec).
//!
//! Usage: `bench_analysis [output.json]` (default `BENCH_analysis.json`).

use std::time::Instant;

use panoptes_analysis::facts::capture_facts;
use panoptes_analysis::scan::{decodings, observations};
use panoptes_analysis::study::{run_full_crawl, run_full_idle};
use panoptes_analysis::summary::study_report;
use panoptes_bench::experiments::Scale;
use panoptes_bench::{mem, perf};
use panoptes_simnet::clock::SimDuration;

#[global_allocator]
static ALLOC: mem::CountingAlloc = mem::CountingAlloc;

const PASSES: usize = 10;
const REPS: usize = 5;

/// Best-of-`REPS` wall-clock seconds of `f`.
fn time_best<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..REPS {
        let start = Instant::now();
        sink = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, sink)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_analysis.json".into());

    eprintln!("building quick-scale study capture…");
    let scale = Scale::quick();
    let world = scale.world();
    let config = scale.config();
    let crawls = run_full_crawl(&world, &world.sites, &config);
    let idles = run_full_idle(&world, SimDuration::from_secs(120), &config);
    let crawl_flows: u64 = crawls.iter().map(|r| r.store.len() as u64).sum();
    let total_flows: u64 =
        crawl_flows + idles.iter().map(|r| r.store.len() as u64).sum::<u64>();

    eprintln!("extraction: cloning baseline…");
    let (clone_secs, clone_sink) = time_best(|| {
        let mut sink = 0usize;
        for r in &crawls {
            for _ in 0..PASSES {
                for flow in r.store.all() { // clone-ok: this IS the pre-refactor baseline
                    for obs in observations(&flow) {
                        sink += decodings(&obs.value).len();
                    }
                }
            }
        }
        sink
    });

    eprintln!("extraction: snapshot + facts…");
    let (snap_secs, snap_sink) = time_best(|| {
        let mut sink = 0usize;
        for r in &crawls {
            let snap = r.store.snapshot();
            let facts = capture_facts(&snap);
            for _ in 0..PASSES {
                for view in facts.views(snap.all()) {
                    for (_, decoded) in view.decoded_observations() {
                        sink += decoded.len();
                    }
                }
            }
        }
        sink
    });
    assert_eq!(clone_sink, snap_sink, "paths disagreed on the extraction workload");

    eprintln!("full study report…");
    let (report_secs, report_len) = time_best(|| study_report(&crawls, &idles).len());

    eprintln!("filterlist: 1.5k rules…");
    let list = perf::synthetic_filterlist(1200, 300);
    let urls = perf::filterlist_workload(2000);
    let (linear_secs, linear_hits) =
        time_best(|| urls.iter().filter(|(h, u)| list.should_block_linear(h, u)).count());
    let (indexed_secs, indexed_hits) =
        time_best(|| urls.iter().filter(|(h, u)| list.should_block(h, u)).count());
    assert_eq!(linear_hits, indexed_hits, "filterlist engines diverged");

    let extraction_flows = (crawl_flows as usize * PASSES) as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analysis\",\n",
            "  \"scale\": \"quick\",\n",
            "  \"capture_flows\": {capture_flows},\n",
            "  \"extraction_passes\": {passes},\n",
            "  \"extraction\": {{\n",
            "    \"cloning_reparse_secs\": {clone_secs:.6},\n",
            "    \"cloning_reparse_flows_per_sec\": {clone_rate:.0},\n",
            "    \"snapshot_facts_secs\": {snap_secs:.6},\n",
            "    \"snapshot_facts_flows_per_sec\": {snap_rate:.0},\n",
            "    \"speedup\": {extract_speedup:.2}\n",
            "  }},\n",
            "  \"full_report\": {{\n",
            "    \"secs\": {report_secs:.6},\n",
            "    \"flows_per_sec\": {report_rate:.0},\n",
            "    \"report_bytes\": {report_len}\n",
            "  }},\n",
            "  \"filterlist\": {{\n",
            "    \"rules\": {rules},\n",
            "    \"urls\": {url_count},\n",
            "    \"hits\": {hits},\n",
            "    \"linear_secs\": {linear_secs:.6},\n",
            "    \"linear_matches_per_sec\": {linear_rate:.0},\n",
            "    \"indexed_secs\": {indexed_secs:.6},\n",
            "    \"indexed_matches_per_sec\": {indexed_rate:.0},\n",
            "    \"speedup\": {filter_speedup:.2}\n",
            "  }},\n",
            "{mem}\n",
            "}}\n",
        ),
        capture_flows = total_flows,
        passes = PASSES,
        clone_secs = clone_secs,
        clone_rate = extraction_flows / clone_secs,
        snap_secs = snap_secs,
        snap_rate = extraction_flows / snap_secs,
        extract_speedup = clone_secs / snap_secs,
        report_secs = report_secs,
        report_rate = total_flows as f64 / report_secs,
        report_len = report_len,
        rules = list.len(),
        url_count = urls.len(),
        hits = indexed_hits,
        linear_secs = linear_secs,
        linear_rate = urls.len() as f64 / linear_secs,
        indexed_secs = indexed_secs,
        indexed_rate = urls.len() as f64 / indexed_secs,
        filter_speedup = linear_secs / indexed_secs,
        mem = mem::report_json(),
    );

    std::fs::write(&out_path, &json).expect("write benchmark record");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
