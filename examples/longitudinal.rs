//! Longitudinal auditing: compare two releases of the same browser and
//! catch a privacy regression. Release 1.0 is clean; release 2.0 "adds
//! search suggestions" that quietly report every visited domain. The
//! comparison module flags the regression automatically.
//!
//! ```text
//! cargo run --release --example longitudinal
//! ```

use panoptes_suite::analysis::compare::compare_campaigns;
use panoptes_suite::analysis::history::LeakGranularity;
use panoptes_suite::browsers::registry::profile_by_name;
use panoptes_suite::browsers::{BrowserProfile, NativeCall, Payload};
use panoptes_suite::panoptes::campaign::run_crawl;
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

/// Release 2.0's new per-visit calls: the old catalogue plus the
/// "suggestions" endpoint that receives the visited domain.
fn v2_per_visit() -> Vec<NativeCall> {
    vec![
        NativeCall::ping("improving.duckduckgo.com", "/t/page_visit_anon"),
        NativeCall::ping("staticcdn.duckduckgo.com", "/suggest")
            .carrying(Payload::domain_only("q")),
    ]
}

fn main() {
    let world = World::build(&GeneratorConfig { popular: 20, sensitive: 10, ..Default::default() });
    let config = CampaignConfig::default();

    // Release 1.0: the shipped (clean) DuckDuckGo model.
    let v1 = profile_by_name("DuckDuckGo").unwrap();
    // Release 2.0: same app, one new feature with a privacy bug.
    let v2 = BrowserProfile {
        version: "5.159.0".to_string(),
        per_visit: v2_per_visit(),
        ..v1.clone()
    };

    println!("crawling {} {} ...", v1.name, v1.version);
    let run_v1 = run_crawl(&world, &v1, &world.sites, &config);
    println!("crawling {} {} ...", v2.name, v2.version);
    let run_v2 = run_crawl(&world, &v2, &world.sites, &config);

    let delta = compare_campaigns(&run_v1, &run_v2);
    println!("\n== release comparison ==");
    println!("browser        : {}", delta.browser);
    println!(
        "leak class     : {:?} -> {:?}",
        delta.leak_a.map(LeakGranularity::as_str),
        delta.leak_b.map(LeakGranularity::as_str)
    );
    println!("native ratio   : {:.3} -> {:.3}", delta.ratio_a, delta.ratio_b);
    println!("native requests: {:+}", delta.native_delta);

    assert!(delta.regressed(), "the audit must flag the new domain reporting");
    println!(
        "\nVERDICT: {} {} introduces a browsing-history leak ({} -> {}); block the release.",
        v2.name,
        v2.version,
        delta.leak_a.map(LeakGranularity::as_str).unwrap_or("none"),
        delta.leak_b.map(LeakGranularity::as_str).unwrap_or("none"),
    );
}
