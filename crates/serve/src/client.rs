//! A minimal blocking client for the study server: used by the
//! determinism tests and `bench_serve` to drive real TCP round trips
//! against an in-process server.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::doctor::Timing;
use crate::json;

/// An open event stream: the response head has been parsed and each
/// [`EventStream::next_event`] call reads one chunk (= one event).
pub struct EventStream {
    reader: BufReader<TcpStream>,
    status: u16,
    sse: bool,
}

impl EventStream {
    /// The response status code (streams only start on 200).
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The next event line, `None` at the end of the stream. Strips
    /// the SSE `data: ` framing when present, so callers always see
    /// the bare JSON line.
    pub fn next_event(&mut self) -> io::Result<Option<String>> {
        let mut size_line = String::new();
        if self.reader.read_line(&mut size_line)? == 0 {
            return Ok(None); // server closed without terminal chunk
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        if size == 0 {
            let mut trailer = String::new();
            let _ = self.reader.read_line(&mut trailer);
            return Ok(None);
        }
        let mut chunk = vec![0u8; size + 2]; // payload + CRLF
        self.reader.read_exact(&mut chunk)?;
        chunk.truncate(size);
        let text = String::from_utf8(chunk)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 event"))?;
        let line = if self.sse {
            text.strip_prefix("data: ")
                .unwrap_or(&text)
                .trim_end_matches('\n')
        } else {
            text.trim_end_matches('\n')
        };
        Ok(Some(line.to_string()))
    }
}

/// Sends `GET path_query` and parses the response head. For a 200
/// chunked response the returned stream yields events; for anything
/// else use [`get`] to read the whole body.
pub fn open_stream(addr: SocketAddr, path_query: &str) -> io::Result<EventStream> {
    let mut stream = TcpStream::connect(addr)?;
    let request =
        format!("GET {path_query} HTTP/1.1\r\nHost: panoptes\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    let sse = headers.iter().any(|h| {
        h.to_ascii_lowercase()
            .contains("content-type: text/event-stream")
    });
    Ok(EventStream {
        reader,
        status,
        sse,
    })
}

/// Sends `GET path_query` and reads the whole response body
/// (content-length or chunked), for non-streaming endpoints and
/// error statuses.
pub fn get(addr: SocketAddr, path_query: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let request =
        format!("GET {path_query} HTTP/1.1\r\nHost: panoptes\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    let chunked = headers.iter().any(|h| {
        h.to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
    });
    let body = if chunked {
        crate::http::read_chunked(&mut reader)?
    } else {
        let length = headers
            .iter()
            .find_map(|h| {
                h.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(|v| v.trim().parse::<usize>())
            })
            .transpose()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?
            .unwrap_or(0);
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        body
    };
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<String>)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated head",
            ));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        headers.push(line.trim_end().to_string());
    }
    Ok((status, headers))
}

/// Everything one streamed study produced, plus client-side timings.
#[derive(Debug, Clone)]
pub struct StudyCapture {
    /// Raw event lines in arrival order.
    pub events: Vec<String>,
    /// Concatenated `header` + `section` payload bytes — must equal
    /// offline `repro` stdout for the same parameters.
    pub doc: String,
    /// Whether the server answered from the document cache.
    pub cached: bool,
    /// Connect → first event (the `header`).
    pub ttfe: Duration,
    /// Connect → stream end.
    pub total: Duration,
    /// The server's latency-attribution trailer, when it sent one
    /// (absent only on very old servers — the trailer precedes `done`).
    pub timing: Option<Timing>,
}

/// Runs one study request to completion, reassembling the document
/// from the stream. Errors on non-200 responses or a stream that ends
/// without a `done` event.
pub fn collect_study(addr: SocketAddr, path_query: &str) -> io::Result<StudyCapture> {
    let started = Instant::now();
    let mut stream = open_stream(addr, path_query)?;
    if stream.status() != 200 {
        return Err(io::Error::other(format!(
            "study request failed with status {}",
            stream.status()
        )));
    }
    let mut capture = StudyCapture {
        events: Vec::new(),
        doc: String::new(),
        cached: false,
        ttfe: Duration::ZERO,
        total: Duration::ZERO,
        timing: None,
    };
    let mut done = false;
    while let Some(line) = stream.next_event()? {
        if capture.events.is_empty() {
            capture.ttfe = started.elapsed();
        }
        match json::field(&line, "event").as_deref() {
            Some("header") | Some("section") => {
                if let Some(data) = json::field(&line, "data") {
                    capture.doc.push_str(&data);
                }
            }
            Some("timing") => {
                capture.timing = Timing::parse(&line);
            }
            Some("done") => {
                capture.cached = line.contains("\"cached\":true");
                done = true;
            }
            Some("error") => {
                let message =
                    json::field(&line, "message").unwrap_or_else(|| "unknown".to_string());
                return Err(io::Error::other(format!(
                    "study failed server-side: {message}"
                )));
            }
            _ => {}
        }
        capture.events.push(line);
    }
    if !done {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended without done event",
        ));
    }
    capture.total = started.elapsed();
    Ok(capture)
}
