//! QQ 13.7.6.6042 (Tencent) — sends the entire visited URL in the clear
//! to its vendor servers in China (§3.2, §3.4), has no incognito mode
//! (footnote 5), leaks device info to an ad server rather than its
//! vendor (§3.3), and pads its telemetry so heavily that native traffic
//! adds 42% extra outgoing volume (Figure 4).

use panoptes_http::method::Method;
use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::{DohProvider, ResolverKind};

use crate::profile::{BrowserProfile, IdleProfile, NativeCall, Payload, PiiField};

const STARTUP: &[NativeCall] = &[
    NativeCall::ping("cloud.browser.qq.com", "/config"),
    NativeCall::ping("pms.mb.qq.com", "/v1/params"),
    NativeCall::ping("cdn.browser.qq.com", "/assets"),
    NativeCall::ping("news.browser.qq.com", "/v1/feed"),
    NativeCall::ping("push.browser.qq.com", "/v1/register"),
];

const PER_VISIT: &[NativeCall] = &[
    // §3.2: the full URL — path and query parameters — in the clear.
    NativeCall {
        host: "wup.browser.qq.com",
        path: "/report/visit",
        method: Method::Get,
        payload: Payload::FullUrlPlain { param: "url" },
        body_pad: 0,
        count: 1,
        respects_incognito: false,
    },
    // The padded telemetry that drives the 42% volume figure.
    NativeCall {
        host: "mtt.browser.qq.com",
        path: "/stat/batch",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 1600,
        count: 1,
        respects_incognito: false,
    },
    // §3.3: device info to an ad server, not the vendor.
    NativeCall {
        host: "gdt-adnet.com",
        path: "/bid/sdk",
        method: Method::Post,
        payload: Payload::AdSdkJson,
        body_pad: 0,
        count: 1,
        respects_incognito: false,
    },
];

const IDLE_BURST: &[NativeCall] = &[
    NativeCall::ping("news.browser.qq.com", "/v1/feed"),
    NativeCall::ping("cdn.browser.qq.com", "/assets"),
    NativeCall::ping("cloud.browser.qq.com", "/config"),
    NativeCall::ping("news.browser.qq.com", "/v1/hotlist"),
];

const IDLE_PERIODIC: &[(u64, NativeCall)] = &[
    (60, NativeCall {
        host: "mtt.browser.qq.com",
        path: "/stat/batch",
        method: Method::Post,
        payload: Payload::Telemetry,
        body_pad: 1600,
        count: 1,
        respects_incognito: false,
    }),
    (120, NativeCall::ping("news.browser.qq.com", "/v1/feed")),
    (180, NativeCall::ping("push.browser.qq.com", "/v1/poll")),
];

const PII: &[PiiField] =
    &[PiiField::DeviceType, PiiField::DeviceManufacturer, PiiField::Resolution];

/// Builds the QQ profile.
pub fn profile() -> BrowserProfile {
    BrowserProfile {
        name: "QQ",
        version: "13.7.6.6042",
        package: "com.tencent.mtt",
        instrumentation: Instrumentation::FridaWebView,
        supports_incognito: false,
        resolver: ResolverKind::Doh(DohProvider::Cloudflare),
        adblock: false,
        attempts_h3: false,
        pinned_domains: &[],
        pii_fields: PII,
        persistent_id_key: None,
        injects_js_collector: None,
        honors_telemetry_consent: false,
        startup: STARTUP,
        per_visit: PER_VISIT,
        idle: IdleProfile { burst: IDLE_BURST, periodic: IDLE_PERIODIC },
    }
}
