//! A time-ordered event queue.
//!
//! The idle-mode experiment (§3.5) is driven entirely by this queue: each
//! browser model schedules its next telemetry ping / feed refresh /
//! favicon update as an event, and the campaign loop pops events in time
//! order for ten virtual minutes. Ties break FIFO so runs are
//! deterministic regardless of heap internals.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::clock::SimInstant;

/// Heap entry ordered by a `Reverse<(time, seq)>` key: `BinaryHeap` is a
/// max-heap, so reversing the lexicographic `(time, seq)` key pops the
/// earliest time first, FIFO within a single instant.
struct Entry<T> {
    key: Reverse<(SimInstant, u64)>,
    item: T,
}

impl<T> Entry<T> {
    fn at(&self) -> SimInstant {
        self.key.0 .0
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A queue of `(time, item)` pairs popped in time order, FIFO within a
/// single instant.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `item` at time `at`.
    pub fn push(&mut self, at: SimInstant, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { key: Reverse((at, seq)), item });
        panoptes_obs::count!("simnet.queue.events_scheduled", Deterministic);
        panoptes_obs::gauge_add!("simnet.queue.depth", 1);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimInstant, T)> {
        let popped = self.heap.pop().map(|e| (e.at(), e.item));
        if popped.is_some() {
            panoptes_obs::count!("simnet.queue.events_fired", Deterministic);
            panoptes_obs::gauge_add!("simnet.queue.depth", -1);
        }
        popped
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: SimInstant) -> Option<(SimInstant, T)> {
        if self.heap.peek().is_some_and(|e| e.at() <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Drains every event due at or before `deadline`, in time order
    /// (FIFO within an instant). The iterator removes events lazily;
    /// dropping it leaves the remainder queued. This is the idle-phase
    /// driver's loop shape: `for (at, call) in queue.drain_until(end)`.
    pub fn drain_until(&mut self, deadline: SimInstant) -> DrainUntil<'_, T> {
        DrainUntil { queue: self, deadline, drained: 0 }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|e| e.at())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Iterator returned by [`EventQueue::drain_until`].
pub struct DrainUntil<'a, T> {
    queue: &'a mut EventQueue<T>,
    deadline: SimInstant,
    drained: usize,
}

impl<T> Iterator for DrainUntil<'_, T> {
    type Item = (SimInstant, T);
    fn next(&mut self) -> Option<(SimInstant, T)> {
        let next = self.queue.pop_due(self.deadline);
        if next.is_some() {
            self.drained += 1;
        }
        next
    }
}

impl<T> Drop for DrainUntil<'_, T> {
    fn drop(&mut self) {
        // One histogram sample per drain pass: how many events a single
        // deadline released. The distribution (not just the total) is
        // what reveals bursty idle-phase schedules.
        panoptes_obs::record!("simnet.queue.drain_depth", Deterministic, self.drained as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimInstant(30), "c");
        q.push(SimInstant(10), "a");
        q.push(SimInstant(20), "b");
        assert_eq!(q.pop(), Some((SimInstant(10), "a")));
        assert_eq!(q.pop(), Some((SimInstant(20), "b")));
        assert_eq!(q.pop(), Some((SimInstant(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimInstant(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimInstant(100), "later");
        q.push(SimInstant(10), "now");
        assert_eq!(q.pop_due(SimInstant(50)), Some((SimInstant(10), "now")));
        assert_eq!(q.pop_due(SimInstant(50)), None);
        assert_eq!(q.peek_time(), Some(SimInstant(100)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn drain_until_takes_due_events_in_order() {
        let mut q = EventQueue::new();
        q.push(SimInstant(40), "d");
        q.push(SimInstant(10), "a");
        q.push(SimInstant(10), "b");
        q.push(SimInstant(30), "c");
        let drained: Vec<_> = q.drain_until(SimInstant(30)).collect();
        assert_eq!(
            drained,
            vec![(SimInstant(10), "a"), (SimInstant(10), "b"), (SimInstant(30), "c")]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimInstant(40)));
    }

    #[test]
    fn drain_until_is_lazy() {
        let mut q = EventQueue::new();
        q.push(SimInstant(1), 1);
        q.push(SimInstant(2), 2);
        {
            let mut it = q.drain_until(SimInstant(10));
            assert_eq!(it.next(), Some((SimInstant(1), 1)));
        }
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let base = SimInstant::EPOCH;
        q.push(base + SimDuration::from_secs(3), 3);
        q.push(base + SimDuration::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(base + SimDuration::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
