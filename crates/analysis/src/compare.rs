//! Study comparison: per-browser deltas between two runs — the
//! longitudinal workflow (did an update start/stop leaking?) and the A/B
//! workflow (what did the guard change?).

use panoptes::campaign::CampaignResult;

use crate::history::{summarize_leaks, LeakGranularity};
use crate::volume::volume_row;

/// The delta between two campaigns of the same browser.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserDelta {
    /// Browser name.
    pub browser: String,
    /// Worst leak granularity in run A.
    pub leak_a: Option<LeakGranularity>,
    /// Worst leak granularity in run B.
    pub leak_b: Option<LeakGranularity>,
    /// Native/engine request ratio in run A.
    pub ratio_a: f64,
    /// Native/engine request ratio in run B.
    pub ratio_b: f64,
    /// Native request count change (B − A).
    pub native_delta: i64,
}

impl BrowserDelta {
    /// The leak classification changed between the runs.
    pub fn leak_changed(&self) -> bool {
        self.leak_a != self.leak_b
    }

    /// The browser got *better* (leak granularity dropped or vanished).
    pub fn improved(&self) -> bool {
        self.leak_b < self.leak_a
    }

    /// The browser got *worse* (leak granularity appeared or grew).
    pub fn regressed(&self) -> bool {
        self.leak_b > self.leak_a
    }
}

/// Compares two runs of the same browser.
pub fn compare_campaigns(a: &CampaignResult, b: &CampaignResult) -> BrowserDelta {
    assert_eq!(a.profile.package, b.profile.package, "comparing different browsers");
    let va = volume_row(a);
    let vb = volume_row(b);
    BrowserDelta {
        browser: a.profile.name.to_string(),
        leak_a: summarize_leaks(a).worst,
        leak_b: summarize_leaks(b).worst,
        ratio_a: va.request_ratio,
        ratio_b: vb.request_ratio,
        native_delta: vb.native_requests as i64 - va.native_requests as i64,
    }
}

/// Compares two full studies pairwise (matched by browser name; browsers
/// present in only one study are skipped).
pub fn compare_studies(a: &[CampaignResult], b: &[CampaignResult]) -> Vec<BrowserDelta> {
    a.iter()
        .filter_map(|ra| {
            b.iter()
                .find(|rb| rb.profile.package == ra.profile.package)
                .map(|rb| compare_campaigns(ra, rb))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::{run_crawl, run_crawl_with};
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn identical_runs_have_zero_delta() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 3, ..Default::default() });
        let p = profile_by_name("Edge").unwrap();
        let a = run_crawl(&world, &p, &world.sites, &CampaignConfig::default());
        let b = run_crawl(&world, &p, &world.sites, &CampaignConfig::default());
        let delta = compare_campaigns(&a, &b);
        assert!(!delta.leak_changed());
        assert_eq!(delta.native_delta, 0);
        assert_eq!(delta.ratio_a, delta.ratio_b);
        assert!(!delta.improved() && !delta.regressed());
    }

    #[test]
    fn guard_shows_up_as_an_improvement() {
        // The A/B this module exists for: guard off vs guard on.
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 3, ..Default::default() });
        let p = profile_by_name("Yandex").unwrap();
        let a = run_crawl(&world, &p, &world.sites, &CampaignConfig::default());
        let b = run_crawl_with(
            &world,
            &p,
            &world.sites,
            &CampaignConfig::default(),
            panoptes_guard_shim::install_guard,
        );
        let delta = compare_campaigns(&a, &b);
        assert_eq!(delta.leak_a, Some(LeakGranularity::FullUrl));
        assert_eq!(delta.leak_b, None);
        assert!(delta.improved());
        assert!(!delta.regressed());
        assert!(delta.native_delta < 0, "blocked flows leave the native count");
    }

    /// Tiny local shim so the analysis crate's tests can enable the guard
    /// without a dependency cycle (guard depends on analysis only in
    /// dev-tests; analysis must not depend on guard). It re-implements
    /// the minimal redaction addon inline.
    mod panoptes_guard_shim {
        use panoptes_http::url::Url;
        use panoptes_mitm::addon::{Addon, Verdict};
        use panoptes_mitm::{FlowClass, InterceptedRequest, TransparentProxy};

        struct RedactUrls;
        impl Addon for RedactUrls {
            fn name(&self) -> &str {
                "test-redactor"
            }
            fn on_request(&self, ir: &mut InterceptedRequest<'_>) {
                if *ir.class != FlowClass::Native {
                    return;
                }
                if ir.request.url.host().ends_with("yandex.net")
                    || ir.request.url.host().ends_with("yandex.ru")
                {
                    // Block the vendor phone-homes outright.
                    *ir.verdict = Verdict::Block;
                }
                let _ = ir.request.url.map_query_values(|_, v| {
                    Url::parse(v).ok().map(|_| "redacted".to_string())
                });
            }
        }

        pub fn install_guard(proxy: &mut TransparentProxy) {
            proxy.install_addon(Box::new(RedactUrls));
        }
    }
}
