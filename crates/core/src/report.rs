//! Campaign summaries and JSON export.

use panoptes_http::json::{self, Value};
use panoptes_mitm::FlowClass;

use crate::campaign::CampaignResult;

/// Per-campaign aggregate numbers (the raw material of Figures 2 and 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignSummary {
    /// Engine-classified requests captured.
    pub engine_requests: u64,
    /// Native-classified requests captured.
    pub native_requests: u64,
    /// Pinned (opaque) connections observed.
    pub pinned_flows: u64,
    /// Outgoing bytes of engine requests.
    pub engine_bytes_out: u64,
    /// Outgoing bytes of native requests.
    pub native_bytes_out: u64,
    /// native / engine request ratio (Figure 2's black line).
    pub native_ratio: f64,
    /// native / engine outgoing-volume ratio (Figure 4).
    pub volume_ratio: f64,
}

/// The mergeable accumulator form of [`CampaignSummary`]: feed it flows
/// with [`observe`](SummaryPartial::observe) (in any shard of the
/// capture), combine shards with [`merge`](SummaryPartial::merge), and
/// [`finish`](SummaryPartial::finish) once at the end. Because every
/// field is a plain sum, the result is independent of sharding — the
/// same observe/merge/finish contract the analysis crate's detector
/// partials follow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryPartial {
    engine_requests: u64,
    native_requests: u64,
    pinned_flows: u64,
    engine_bytes_out: u64,
    native_bytes_out: u64,
}

impl SummaryPartial {
    /// Folds one captured flow into the accumulator.
    pub fn observe(&mut self, flow: &panoptes_mitm::Flow) {
        match flow.class {
            FlowClass::Engine => {
                self.engine_requests += 1;
                self.engine_bytes_out += flow.bytes_out;
            }
            FlowClass::Native => {
                self.native_requests += 1;
                self.native_bytes_out += flow.bytes_out;
            }
            FlowClass::PinnedOpaque => self.pinned_flows += 1,
            FlowClass::Blocked => {}
        }
    }

    /// Absorbs another shard's accumulator.
    pub fn merge(&mut self, other: SummaryPartial) {
        self.engine_requests += other.engine_requests;
        self.native_requests += other.native_requests;
        self.pinned_flows += other.pinned_flows;
        self.engine_bytes_out += other.engine_bytes_out;
        self.native_bytes_out += other.native_bytes_out;
    }

    /// Finalises the ratios.
    pub fn finish(self) -> CampaignSummary {
        CampaignSummary {
            engine_requests: self.engine_requests,
            native_requests: self.native_requests,
            pinned_flows: self.pinned_flows,
            engine_bytes_out: self.engine_bytes_out,
            native_bytes_out: self.native_bytes_out,
            native_ratio: ratio(self.native_requests, self.engine_requests),
            volume_ratio: ratio(self.native_bytes_out, self.engine_bytes_out),
        }
    }
}

/// Summarizes a campaign's capture.
pub fn summarize(result: &CampaignResult) -> CampaignSummary {
    let snap = result.store.snapshot();
    let mut partial = SummaryPartial::default();
    for f in snap.iter() {
        partial.observe(f);
    }
    partial.finish()
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Renders a campaign summary as a JSON object.
pub fn summary_json(result: &CampaignResult) -> Value {
    let s = summarize(result);
    Value::object(vec![
        ("browser", Value::str(&result.profile.name)),
        ("version", Value::str(&result.profile.version)),
        ("package", Value::str(&result.profile.package)),
        ("uid", Value::from(result.uid)),
        ("visits", Value::from(result.visits.len() as u64)),
        ("engine_requests", Value::from(s.engine_requests)),
        ("native_requests", Value::from(s.native_requests)),
        ("pinned_flows", Value::from(s.pinned_flows)),
        ("engine_bytes_out", Value::from(s.engine_bytes_out)),
        ("native_bytes_out", Value::from(s.native_bytes_out)),
        ("native_ratio", Value::Number(s.native_ratio)),
        ("volume_ratio", Value::Number(s.volume_ratio)),
    ])
}

/// Pretty JSON form of [`summary_json`].
pub fn summary_text(result: &CampaignResult) -> String {
    json::to_string_pretty(&summary_json(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_crawl;
    use crate::config::CampaignConfig;
    use panoptes_browsers::registry::profile_by_name;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn sharded_summary_matches_sequential() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 2, ..Default::default() });
        let result = run_crawl(
            &world,
            &profile_by_name("Yandex").unwrap(),
            &world.sites,
            &CampaignConfig::default(),
        );
        let sequential = summarize(&result);
        let snap = result.store.snapshot();
        let flows = snap.all();
        for shards in [1usize, 2, 3, 8] {
            let mut merged = SummaryPartial::default();
            for range in crate::fleet::shard_ranges(flows.len(), shards) {
                let mut partial = SummaryPartial::default();
                for flow in flows.slice(range) {
                    partial.observe(flow);
                }
                merged.merge(partial);
            }
            assert_eq!(merged.finish(), sequential, "shards={shards}");
        }
    }

    #[test]
    fn summary_is_consistent_with_store() {
        let world =
            World::build(&GeneratorConfig { popular: 5, sensitive: 3, ..Default::default() });
        let result = run_crawl(
            &world,
            &profile_by_name("Edge").unwrap(),
            &world.sites,
            &CampaignConfig::default(),
        );
        let s = summarize(&result);
        let snap = result.store.snapshot();
        assert_eq!(s.engine_requests, snap.engine().len() as u64);
        assert_eq!(s.native_requests, snap.native().len() as u64);
        assert!(s.native_ratio > 0.0);
        let text = summary_text(&result);
        let parsed = panoptes_http::json::parse(&text).unwrap();
        assert_eq!(parsed.get("browser").unwrap().as_str(), Some("Edge"));
        assert_eq!(
            parsed.get("engine_requests").unwrap().as_i64().unwrap() as u64,
            s.engine_requests
        );
    }
}
