//! Experiment drivers: one function per paper artefact.
//!
//! Every driver has a sequential form and a `_jobs` form running the
//! same campaigns across the [`fleet`](panoptes::fleet) worker pool;
//! both produce byte-identical results in the same order.

use std::sync::Arc;

use panoptes::campaign::CampaignResult;
use panoptes::config::CampaignConfig;
use panoptes::fleet::{FleetError, FleetOptions, UnitOutput};
use panoptes::idle::IdleResult;
use panoptes_analysis::engine::{
    run_full_study_analyzed, run_study_analyzed_with, AnalysisResources, AnalyzedStudy,
};
use panoptes_analysis::study::{
    run_crawl_jobs_with, run_crawl_with, run_full_crawl, run_full_crawl_jobs, run_full_idle,
    run_full_idle_jobs, run_idle_jobs_with, run_idle_with,
};
use panoptes_browsers::registry::population;
use panoptes_browsers::BrowserProfile;
use panoptes_simnet::clock::SimDuration;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Popular (Tranco-like) sites.
    pub popular: u32,
    /// Sensitive (Curlie-like) sites.
    pub sensitive: u32,
    /// Deep-tail sites appended after the head set (`--sites N` beyond
    /// `popular + sensitive`); 0 is the paper's exact web.
    pub tail: u32,
    /// Idle-window length.
    pub idle: SimDuration,
    /// Campaign seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's full workload: 500 + 500 sites, 10-minute idle.
    pub fn paper() -> Scale {
        Scale {
            popular: 500,
            sensitive: 500,
            tail: 0,
            idle: SimDuration::from_secs(600),
            seed: CampaignConfig::default().seed,
        }
    }

    /// A reduced workload for quick runs and benches.
    pub fn quick() -> Scale {
        Scale {
            popular: 30,
            sensitive: 20,
            tail: 0,
            idle: SimDuration::from_secs(600),
            seed: CampaignConfig::default().seed,
        }
    }

    /// Sets the total site count: `n` beyond `popular + sensitive`
    /// becomes deep tail (`--sites N`); `n` at or below the head leaves
    /// the scale untouched, so `--sites 1000` at paper scale is exact.
    pub fn with_sites(mut self, n: u32) -> Scale {
        self.tail = n.saturating_sub(self.popular + self.sensitive);
        self
    }

    /// The (cached, shared) world for this scale: the plan cache builds
    /// it once per configuration and every driver — sequential, fleet,
    /// bench — reuses the same immutable instance.
    pub fn world(&self) -> Arc<World> {
        World::shared(&GeneratorConfig {
            seed: self.seed,
            popular: self.popular,
            sensitive: self.sensitive,
            tail: self.tail,
        })
    }

    /// The campaign configuration for this scale.
    pub fn config(&self) -> CampaignConfig {
        CampaignConfig { seed: self.seed, ..Default::default() }
    }
}

/// Runs the full 15-browser crawl at the given scale.
pub fn crawl_all(scale: &Scale) -> (Arc<World>, Vec<CampaignResult>) {
    let world = scale.world();
    let config = scale.config();
    let results = run_full_crawl(&world, &world.sites, &config);
    (world, results)
}

/// Runs the 15-browser idle experiment at the given scale.
pub fn idle_all(scale: &Scale) -> Vec<IdleResult> {
    let world = scale.world();
    run_full_idle(&world, scale.idle, &scale.config())
}

/// Runs the full 15-browser crawl across the fleet worker pool.
///
/// Output is identical to [`crawl_all`] — same results, same order —
/// for any worker count; only wall-clock time differs.
pub fn crawl_all_jobs(
    scale: &Scale,
    options: &FleetOptions,
) -> Result<(Arc<World>, Vec<CampaignResult>), FleetError<UnitOutput>> {
    let world = scale.world();
    let config = scale.config();
    let results = run_full_crawl_jobs(&world, &world.sites, &config, options)?;
    Ok((world, results))
}

/// Runs the 15-browser idle experiment across the fleet worker pool.
pub fn idle_all_jobs(
    scale: &Scale,
    options: &FleetOptions,
) -> Result<Vec<IdleResult>, FleetError<UnitOutput>> {
    let world = scale.world();
    run_full_idle_jobs(&world, scale.idle, &scale.config(), options)
}

/// Runs the full study — crawl **and** idle campaigns — with the
/// capture→analysis barrier removed: each unit's capture streams to an
/// analysis worker as soon as it seals, so detectors run while other
/// browsers are still crawling. Results and analyses come back in
/// profile order, byte-identical to the barrier drivers above.
pub fn study_all_overlapped(
    scale: &Scale,
    options: &FleetOptions,
    res: &AnalysisResources,
) -> Result<(Arc<World>, AnalyzedStudy), FleetError<()>> {
    let world = scale.world();
    let study =
        run_full_study_analyzed(&world, &world.sites, &scale.config(), scale.idle, options, res)?;
    Ok((world, study))
}

/// The browser population for a `--population N` run: the paper's 15
/// pinned browsers first, then variants sampled deterministically from
/// the scale's seed. `population_for(scale, 15)` is exactly the paper
/// set, so the default reproduction stays byte-identical.
pub fn population_for(scale: &Scale, n: usize) -> Vec<BrowserProfile> {
    population(scale.seed, n)
}

/// [`crawl_all`] over an `n`-browser population, sequentially.
pub fn crawl_population(scale: &Scale, n: usize) -> (Arc<World>, Vec<CampaignResult>) {
    let world = scale.world();
    let config = scale.config();
    let results = run_crawl_with(&world, &world.sites, &config, &population_for(scale, n));
    (world, results)
}

/// [`idle_all`] over an `n`-browser population, sequentially.
pub fn idle_population(scale: &Scale, n: usize) -> Vec<IdleResult> {
    let world = scale.world();
    run_idle_with(&world, scale.idle, &scale.config(), &population_for(scale, n))
}

/// [`crawl_all_jobs`] over an `n`-browser population.
pub fn crawl_population_jobs(
    scale: &Scale,
    options: &FleetOptions,
    n: usize,
) -> Result<(Arc<World>, Vec<CampaignResult>), FleetError<UnitOutput>> {
    let world = scale.world();
    let config = scale.config();
    let results =
        run_crawl_jobs_with(&world, &world.sites, &config, options, &population_for(scale, n))?;
    Ok((world, results))
}

/// [`idle_all_jobs`] over an `n`-browser population.
pub fn idle_population_jobs(
    scale: &Scale,
    options: &FleetOptions,
    n: usize,
) -> Result<Vec<IdleResult>, FleetError<UnitOutput>> {
    let world = scale.world();
    run_idle_jobs_with(&world, scale.idle, &scale.config(), options, &population_for(scale, n))
}

/// [`study_all_overlapped`] over an `n`-browser population: `2n` fleet
/// units (crawl + idle per browser) with the capture→analysis barrier
/// removed.
pub fn study_population_overlapped(
    scale: &Scale,
    options: &FleetOptions,
    res: &AnalysisResources,
    n: usize,
) -> Result<(Arc<World>, AnalyzedStudy), FleetError<()>> {
    let world = scale.world();
    let study = run_study_analyzed_with(
        &world,
        &world.sites,
        &scale.config(),
        scale.idle,
        options,
        res,
        &population_for(scale, n),
    )?;
    Ok((world, study))
}
