//! Offline shim for `criterion` 0.5.
//!
//! Implements the calling convention the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `bench_function`,
//! `benchmark_group` with `sample_size` / `throughput` / `finish`,
//! `Bencher::{iter, iter_batched}`, `black_box` — and reports
//! min/mean/max wall-clock per target to stdout. No statistics, no
//! HTML reports: the point is that `cargo bench` runs offline and
//! emits comparable numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared workload per iteration, echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures for one benchmark target.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` input per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            format!("  {:.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name:<50} time: [{min:>10.3?} {mean:>10.3?} {max:>10.3?}]  ({} samples){rate}",
        samples.len()
    );
}

/// The harness: collects targets and runs them with a shared config.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the sample count for subsequent targets.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark target.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        f(&mut Bencher { samples: &mut samples, sample_size: self.sample_size });
        report(name, &samples, None);
        self
    }

    /// Opens a named group of related targets.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Hook for `criterion_main!`'s teardown; prints nothing extra.
    pub fn final_summary(&mut self) {}
}

/// A group of related targets sharing sample size and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent targets in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration workload, echoed as a rate in the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one target inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        f(&mut Bencher { samples: &mut samples, sample_size: self.sample_size });
        report(&format!("{}/{}", self.name, name), &samples, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, with criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups; ignores harness CLI flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g.
            // `--bench`); a listing request must not run the benches.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sampled() {
        let mut n = 0u32;
        Criterion::default().sample_size(5).bench_function("shim_smoke", |b| {
            b.iter(|| {
                n += 1;
                n
            })
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_group");
        group.sample_size(3).throughput(Throughput::Elements(1));
        let mut calls = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u32, |x| {
                calls += 1;
                x * 2
            }, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
