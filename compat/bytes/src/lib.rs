//! Offline shim for `bytes` 1.x: just [`Bytes`], an immutable
//! reference-counted byte buffer. Clones share the allocation, which is
//! what the proxy relies on when the same request body flows through
//! several addons, and [`Bytes::slice`] produces zero-copy sub-views of
//! the same allocation — the capture path serves sized filler bodies by
//! slicing one shared buffer instead of allocating per response.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply clonable contiguous byte buffer (a view
/// `[start, end)` into a shared allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer (no allocation shared with anything).
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let len = data.len();
        Bytes { data: Arc::from(data), start: 0, end: len }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a view of `range` within this buffer, sharing the same
    /// allocation (no copy). Panics when the range is out of bounds,
    /// matching slice-indexing semantics.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice start {begin} > end {end}");
        assert!(end <= len, "slice end {end} out of bounds (len {len})");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

// Equality, ordering and hashing are content-based (the view, not the
// backing allocation), matching the derived impls of the pre-slicing
// representation.
impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3]);
        assert_eq!(&a[..], &[1u8, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from("hello".to_string());
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slices_share_storage() {
        let a = Bytes::from(&b"hello world"[..]);
        let b = a.slice(6..);
        assert_eq!(b, "world");
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_ptr(), a[6..].as_ptr());
        let c = b.slice(1..3);
        assert_eq!(c, "or");
        assert_eq!(a.slice(..), a);
        assert!(a.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(&b"abc"[..]).slice(..4);
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from(&b"a\"\x01"[..]);
        assert_eq!(format!("{a:?}"), "b\"a\\\"\\x01\"");
    }
}
