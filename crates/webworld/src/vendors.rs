//! Vendor and third-party service endpoints browsers talk to natively.
//!
//! Each entry assigns the endpoint its hosting country; `panoptes-web`
//! allocates its address from the matching `panoptes-geo` block so the
//! §3.4 geolocation analysis recovers the paper's result (Yandex → RU,
//! QQ → CN, UC International → CA) from the wire, not from a table.

/// What an endpoint is for (report flavour + analysis grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// Update checks.
    Update,
    /// Telemetry / analytics owned by the vendor.
    Telemetry,
    /// Safe-browsing / site-check reputation queries.
    SiteCheck,
    /// Explicit browsing-history reporting ("phone home", §3.2).
    History,
    /// Remote configuration / feature flags.
    Config,
    /// Third-party advertising SDK.
    AdSdk,
    /// Start-page content: news feeds, thumbnails, favicons.
    StartPage,
    /// DNS-over-HTTPS resolver.
    Doh,
    /// Social-graph API (Facebook Graph).
    SocialGraph,
}

/// One native-traffic destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorEndpoint {
    /// Hostname.
    pub host: &'static str,
    /// ISO country of the receiving server.
    pub country: &'static str,
    /// What the endpoint does.
    pub purpose: Purpose,
}

macro_rules! ep {
    ($host:literal, $country:literal, $purpose:ident) => {
        VendorEndpoint { host: $host, country: $country, purpose: Purpose::$purpose }
    };
}

/// Every native-traffic endpoint in the simulated world.
pub const ENDPOINTS: &[VendorEndpoint] = &[
    // DoH resolvers (§3.2: Cloudflare's or Google's DoH).
    ep!("dns.google", "US", Doh),
    ep!("cloudflare-dns.com", "US", Doh),
    // Google / Chrome.
    ep!("update.googleapis.com", "US", Update),
    ep!("safebrowsing.googleapis.com", "US", SiteCheck),
    // Microsoft / Edge (§3.2: reports every visited domain to Bing API;
    // §3.5: msn, microsoft.com, bing.com plus third-party analytics).
    ep!("api.bing.com", "US", History),
    ep!("www.bing.com", "US", StartPage),
    ep!("edge.microsoft.com", "US", Config),
    ep!("vortex.data.microsoft.com", "US", Telemetry),
    ep!("www.msn.com", "US", StartPage),
    ep!("arc.msn.com", "US", StartPage),
    // Opera (§3.2: every visited domain to Opera Sitecheck; Listing 1:
    // the oleads ad SDK; §3.5: linear News feed growth).
    ep!("sitecheck2.opera.com", "NO", History),
    ep!("autoupdate.geo.opera.com", "NO", Update),
    ep!("news.opera-api.com", "NO", StartPage),
    ep!("s-odx.oleads.com", "US", AdSdk),
    // Vivaldi (Norwegian vendor).
    ep!("update.vivaldi.com", "NO", Update),
    ep!("sync.vivaldi.com", "NO", Telemetry),
    ep!("thumbnails.vivaldi.com", "NO", StartPage),
    // Yandex (§3.2: sba.yandex.net gets the Base64 full URL;
    // api.browser.yandex.ru gets hostname + persistent identifier).
    ep!("sba.yandex.net", "RU", History),
    ep!("api.browser.yandex.ru", "RU", History),
    ep!("mc.yandex.ru", "RU", Telemetry),
    ep!("browser-updates.yandex.net", "RU", Update),
    ep!("zen.yandex.ru", "RU", StartPage),
    // Brave.
    ep!("updates.brave.com", "US", Update),
    ep!("p3a.brave.com", "US", Telemetry),
    // Samsung Internet.
    ep!("browser-api.samsung.com", "KR", Config),
    ep!("su.samsungdm.com", "KR", Update),
    // DuckDuckGo.
    ep!("improving.duckduckgo.com", "US", Telemetry),
    ep!("staticcdn.duckduckgo.com", "US", StartPage),
    // Dolphin (§3.5: 46% of idle natives to Facebook Graph).
    ep!("api.dolphin-browser.com", "US", Config),
    // Whale (Naver, Korea).
    ep!("api-whale.naver.com", "KR", Telemetry),
    ep!("whale-update.naver.com", "KR", Update),
    // Mint (Xiaomi; §3.5: 8% of idle natives to Facebook Graph).
    ep!("api.mintbrowser.mi.com", "CN", Telemetry),
    // Kiwi (no heavyweight vendor cloud; its native traffic is mostly
    // the ad exchanges listed in §3.1).
    ep!("update.kiwibrowser.com", "US", Update),
    // CocCoc (Vietnamese vendor; §3.1/§3.5: adjust.com analytics).
    ep!("log.coccoc.com", "VN", Telemetry),
    ep!("newtab.coccoc.com", "VN", StartPage),
    ep!("spell.coccoc.com", "VN", Config),
    // QQ (Tencent; §3.2: full visited URL phone-home; §3.4: servers in
    // China; §3.3: leaks to ad servers).
    ep!("wup.browser.qq.com", "CN", History),
    ep!("mtt.browser.qq.com", "CN", Telemetry),
    ep!("cloud.browser.qq.com", "CN", Config),
    ep!("gdt-adnet.com", "CN", AdSdk),
    // UC International (§3.2: leaks via injected JS, city geolocation +
    // ISP; §3.4: servers in Canada).
    ep!("api.ucweb.com", "CA", Config),
    ep!("collect.ucweb.com", "CA", History),
    ep!("track.ucweb.com", "CA", Telemetry),
    ep!("puds.ucweb.com", "CA", Update),
    // Cross-vendor third parties seen natively (§3.1, §3.5).
    ep!("graph.facebook.com", "US", SocialGraph),
    ep!("app.adjust.com", "DE", AdSdk),
    ep!("t.appsflyer.com", "US", AdSdk),
    ep!("events.appsflyersdk.com", "US", AdSdk),
    ep!("googleads.g.doubleclick.net", "US", AdSdk),
    ep!("widgets.outbrain.com", "US", AdSdk),
    ep!("b1h.zemanta.com", "US", AdSdk),
    ep!("sb.scorecardresearch.com", "US", AdSdk),
    // The exchanges Kiwi contacts natively (§3.1 names these six).
    ep!("fastlane.rubiconproject.com", "US", AdSdk),
    ep!("ib.adnxs.com", "US", AdSdk),
    ep!("rtb.openx.net", "US", AdSdk),
    ep!("hbopenbid.pubmatic.com", "US", AdSdk),
    ep!("x.bidswitch.net", "US", AdSdk),
    ep!("dpm.demdex.net", "US", AdSdk),
];

/// Auxiliary vendor hosts: the long tail of start-page, suggest, crash,
/// sync and CDN endpoints each browser touches. They matter for Figure 3
/// — the *denominator* of "% of distinct native-contact domains that are
/// ad-related" is exactly this population.
pub const AUX_ENDPOINTS: &[VendorEndpoint] = &[
    // Opera services (Norway).
    ep!("crashstats.opera.com", "NO", Telemetry),
    ep!("download.opera.com", "NO", Update),
    ep!("sync.opera.com", "NO", Telemetry),
    ep!("push.opera.com", "NO", Config),
    ep!("features.opera.com", "NO", Config),
    ep!("abtest.opera.com", "NO", Config),
    ep!("cdn.opera-api.com", "NO", StartPage),
    ep!("thumbs.opera-api.com", "NO", StartPage),
    ep!("favicons.opera-api.com", "NO", StartPage),
    ep!("suggest.opera.com", "NO", StartPage),
    ep!("weather.opera-api.com", "NO", StartPage),
    ep!("metrics.opera.com", "NO", Telemetry),
    ep!("flags.opera.com", "NO", Config),
    // Yandex services (Russia).
    ep!("favicon.yandex.net", "RU", StartPage),
    ep!("suggest.yandex.net", "RU", StartPage),
    ep!("translate.yandex.net", "RU", Config),
    ep!("sync.yandex.net", "RU", Telemetry),
    ep!("push.yandex.ru", "RU", Config),
    ep!("clck.yandex.ru", "RU", Telemetry),
    ep!("alice.yandex.net", "RU", Config),
    ep!("weather.yandex.ru", "RU", StartPage),
    ep!("afisha.yandex.ru", "RU", StartPage),
    ep!("market.yandex.ru", "RU", StartPage),
    ep!("disk.yandex.net", "RU", Config),
    ep!("maps.yandex.ru", "RU", StartPage),
    ep!("news.yandex.ru", "RU", StartPage),
    ep!("music.yandex.ru", "RU", StartPage),
    ep!("taxi.yandex.ru", "RU", StartPage),
    ep!("an.yandex.ru", "RU", AdSdk),
    // Microsoft / Edge services (US).
    ep!("config.edge.skype.com", "US", Config),
    ep!("ntp.msn.com", "US", StartPage),
    ep!("assets.msn.com", "US", StartPage),
    ep!("c.msn.com", "US", StartPage),
    ep!("cdn.msn.com", "US", StartPage),
    ep!("smartscreen.microsoft.com", "US", SiteCheck),
    ep!("nav.smartscreen.microsoft.com", "US", SiteCheck),
    ep!("checkappexec.microsoft.com", "US", SiteCheck),
    ep!("msedge.api.cdp.microsoft.com", "US", Update),
    ep!("browser.events.data.msn.com", "US", Telemetry),
    ep!("fd.api.iris.microsoft.com", "US", StartPage),
    ep!("ris.api.iris.microsoft.com", "US", StartPage),
    ep!("mobile.events.data.microsoft.com", "US", Telemetry),
    ep!("edgeservices.bing.com", "US", StartPage),
    ep!("static.edge.microsoft.com", "US", StartPage),
    // QQ services (China).
    ep!("pms.mb.qq.com", "CN", Config),
    ep!("cdn.browser.qq.com", "CN", StartPage),
    ep!("news.browser.qq.com", "CN", StartPage),
    ep!("push.browser.qq.com", "CN", Config),
    // Dolphin services (US).
    ep!("en.dolphin-browser.com", "US", StartPage),
    ep!("push.dolphin-browser.com", "US", Config),
    ep!("opsen.dolphin-browser.com", "US", Telemetry),
    ep!("tuna.dolphin-browser.com", "US", Telemetry),
    ep!("update.dolphin-browser.com", "US", Update),
    // Mint services (China).
    ep!("news.mintbrowser.mi.com", "CN", StartPage),
    ep!("update.mintbrowser.mi.com", "CN", Update),
    ep!("cdn.mintbrowser.mi.com", "CN", StartPage),
    ep!("suggest.mintbrowser.mi.com", "CN", StartPage),
    ep!("data.mistat.mi.com", "CN", Telemetry),
    ep!("static.mintbrowser.mi.com", "CN", StartPage),
    // CocCoc services (Vietnam).
    ep!("update.coccoc.com", "VN", Update),
    ep!("static.coccoc.com", "VN", StartPage),
    ep!("suggest.coccoc.com", "VN", StartPage),
    // Kiwi services (US).
    ep!("static.kiwibrowser.com", "US", StartPage),
    ep!("crash.kiwibrowser.com", "US", Telemetry),
    ep!("suggest.kiwibrowser.com", "US", StartPage),
    ep!("sync.kiwibrowser.com", "US", Telemetry),
    ep!("translate.kiwibrowser.com", "US", Config),
    // Brave / Vivaldi / Whale extras.
    ep!("static1.brave.com", "US", StartPage),
    ep!("downloads.vivaldi.com", "NO", Update),
    ep!("static.whale.naver.com", "KR", StartPage),
    ep!("favicon.whale.naver.com", "KR", StartPage),
];

/// Iterates the full endpoint population (core + auxiliary).
pub fn all_endpoints() -> impl Iterator<Item = &'static VendorEndpoint> {
    ENDPOINTS.iter().chain(AUX_ENDPOINTS.iter())
}

/// Looks up an endpoint by hostname.
pub fn endpoint(host: &str) -> Option<&'static VendorEndpoint> {
    all_endpoints().find(|e| e.host == host)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hosts_are_unique() {
        let mut hosts: Vec<&str> = all_endpoints().map(|e| e.host).collect();
        hosts.sort_unstable();
        let before = hosts.len();
        hosts.dedup();
        assert_eq!(hosts.len(), before);
    }

    #[test]
    fn paper_destination_countries() {
        assert_eq!(endpoint("sba.yandex.net").unwrap().country, "RU");
        assert_eq!(endpoint("api.browser.yandex.ru").unwrap().country, "RU");
        assert_eq!(endpoint("wup.browser.qq.com").unwrap().country, "CN");
        assert_eq!(endpoint("collect.ucweb.com").unwrap().country, "CA");
        assert_eq!(endpoint("app.adjust.com").unwrap().country, "DE");
    }

    #[test]
    fn every_country_is_in_the_geo_plan() {
        use panoptes_geo::db::ADDRESS_PLAN;
        for e in all_endpoints() {
            assert!(
                ADDRESS_PLAN.iter().any(|(_, c)| *c == e.country),
                "{} hosted in unplanned country {}",
                e.host,
                e.country
            );
        }
    }

    #[test]
    fn history_endpoints_match_paper() {
        let history: Vec<&str> = ENDPOINTS
            .iter()
            .filter(|e| e.purpose == Purpose::History)
            .map(|e| e.host)
            .collect();
        for h in ["sba.yandex.net", "api.browser.yandex.ru", "api.bing.com",
                  "sitecheck2.opera.com", "wup.browser.qq.com", "collect.ucweb.com"] {
            assert!(history.contains(&h), "{h} should be a history endpoint");
        }
    }
}
