//! The 15 browser models of Table 1, one module each — the *pinned
//! points* of the behaviour-model space ([`crate::model`]). Each module
//! exports `model() -> BehaviorModel`; the golden fixtures under
//! `tests/profiles/` are the canonical renderings of exactly these
//! models.
//!
//! Every profile is calibrated against the paper's findings:
//!
//! | Browser | History leak (§3.2) | Fig 2 native ratio | Fig 3 ad-domains | Table 2 PII |
//! |---|---|---|---|---|
//! | Chrome | — | very low | 0 | none |
//! | Edge | domain → Bing API | ~0.38 | adjust/outbrain/zemanta/scorecardresearch | 6 fields |
//! | Opera | domain → Sitecheck | moderate | 19.2% incl. oleads/doubleclick/appsflyer | 7 fields incl. lat/long |
//! | Vivaldi | — | >1/3 | 0 | resolution |
//! | Yandex | full URL (Base64) + persistent id | ~0.39 | 16% | 6 fields |
//! | Brave | — | very low | 0 | none |
//! | Samsung | — | low | 0 | locale |
//! | DuckDuckGo | — | very low | 0 | none |
//! | Dolphin | — | low | Facebook Graph | none |
//! | Whale | — | >1/3 | 0 | 6 fields incl. local IP + rooted |
//! | Mint | — | low | Facebook Graph | 4 fields |
//! | Kiwi | — | low | ~40% (6 exchanges) | none |
//! | CocCoc | — | >1/3 (engine shrunk by its adblock) | adjust.com | 5 fields |
//! | QQ | full URL (clear) | ~0.25 req, 42% volume | gdt ad server | 3 fields |
//! | UC Int. | full URL via injected JS + city/ISP | low | 0 | 2 fields |

pub mod brave;
pub mod chrome;
pub mod coccoc;
pub mod dolphin;
pub mod duckduckgo;
pub mod edge;
pub mod kiwi;
pub mod mint;
pub mod opera;
pub mod qq;
pub mod samsung;
pub mod uc;
pub mod vivaldi;
pub mod whale;
pub mod yandex;
