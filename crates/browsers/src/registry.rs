//! The browser registry — the paper's Table 1 plus the sampled
//! population.
//!
//! The 15 paper browsers are *pinned points* in the behaviour-model
//! space ([`pinned_models`]); [`population`] extends them with
//! deterministically sampled variants for population-scale studies.

use crate::model::BehaviorModel;
use crate::profile::BrowserProfile;
use crate::profiles;
use crate::space::BrowserSpace;

/// The models of all 15 paper browsers, in the order of Table 1 (left
/// column then right). These are the conformance-tested pinned points:
/// the golden fixtures under `tests/profiles/` are their canonical
/// renderings.
pub fn pinned_models() -> Vec<BehaviorModel> {
    vec![
        profiles::chrome::model(),
        profiles::edge::model(),
        profiles::opera::model(),
        profiles::vivaldi::model(),
        profiles::yandex::model(),
        profiles::brave::model(),
        profiles::samsung::model(),
        profiles::qq::model(),
        profiles::duckduckgo::model(),
        profiles::dolphin::model(),
        profiles::whale::model(),
        profiles::mint::model(),
        profiles::kiwi::model(),
        profiles::coccoc::model(),
        profiles::uc::model(),
    ]
}

/// All 15 paper browsers as runtime profiles, in Table 1 order.
pub fn all_profiles() -> Vec<BrowserProfile> {
    pinned_models().iter().map(BehaviorModel::materialize).collect()
}

/// A browser population of size `n`: the pinned paper browsers first
/// (all 15 when `n >= 15`, a Table 1 prefix otherwise), then sampled
/// variants from [`BrowserSpace`]. `population(seed, 15)` is exactly
/// [`all_profiles`] for every seed, which is what keeps the paper
/// reproduction byte-identical while `--population` scales past it.
pub fn population(seed: u64, n: usize) -> Vec<BrowserProfile> {
    let mut profiles = all_profiles();
    profiles.truncate(n);
    if n > profiles.len() {
        let sampled = BrowserSpace::sample(seed, n - profiles.len());
        profiles.extend(sampled.iter().map(BehaviorModel::materialize));
    }
    profiles
}

/// Looks a profile up by its display name (case-insensitive).
pub fn profile_by_name(name: &str) -> Option<BrowserProfile> {
    all_profiles().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Payload, PiiField};
    use panoptes_instrument::tap::Instrumentation;
    use panoptes_simnet::dns::ResolverKind;

    #[test]
    fn fifteen_browsers_with_table1_versions() {
        let profiles = all_profiles();
        assert_eq!(profiles.len(), 15);
        let expect = [
            ("Chrome", "113.0.5672.77"),
            ("Edge", "113.0.1774.38"),
            ("Opera", "75.1.3978.72329"),
            ("Vivaldi", "6.0.2980.33"),
            ("Yandex", "23.3.7.24"),
            ("Brave", "1.51.114"),
            ("Samsung", "20.0.6.5"),
            ("QQ", "13.7.6.6042"),
            ("DuckDuckGo", "5.158.0"),
            ("Dolphin", "12.2.9"),
            ("Whale", "2.10.2.2"),
            ("Mint", "3.9.3"),
            ("Kiwi", "112.0.5615.137"),
            ("CocCoc", "117.0.177"),
            ("UC International", "13.4.2.1307"),
        ];
        for (name, version) in expect {
            let p = profile_by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.version, version, "{name}");
        }
    }

    #[test]
    fn package_names_are_unique() {
        let profiles = all_profiles();
        let mut packages: Vec<&str> = profiles.iter().map(|p| p.package.as_str()).collect();
        packages.sort_unstable();
        let n = packages.len();
        packages.dedup();
        assert_eq!(packages.len(), n);
    }

    #[test]
    fn doh_split_is_8_to_7() {
        let profiles = all_profiles();
        let doh = profiles.iter().filter(|p| p.resolver.is_doh()).count();
        assert_eq!(doh, 8, "§3.2: 8 browsers use DoH");
        assert_eq!(profiles.len() - doh, 7, "§3.2: 7 use the local stub");
    }

    #[test]
    fn incognito_support_matches_footnote5() {
        // Yandex and QQ provide no incognito mode.
        for name in ["Yandex", "QQ"] {
            assert!(!profile_by_name(name).unwrap().supports_incognito, "{name}");
        }
        for name in ["Edge", "Opera", "UC International", "Chrome"] {
            assert!(profile_by_name(name).unwrap().supports_incognito, "{name}");
        }
    }

    #[test]
    fn history_reporters_match_section_3_2() {
        // Full-URL leakers: Yandex (Base64), QQ (clear), UC (JS injection).
        for name in ["Yandex", "QQ", "UC International"] {
            assert!(profile_by_name(name).unwrap().reports_full_url(), "{name}");
        }
        // Domain-only reporters: Edge (Bing), Opera (Sitecheck).
        for name in ["Edge", "Opera"] {
            let p = profile_by_name(name).unwrap();
            assert!(p.reports_history(), "{name}");
            assert!(!p.reports_full_url(), "{name} reports only domains");
        }
        // The quiet ones.
        for name in ["Chrome", "Brave", "DuckDuckGo", "Samsung", "Vivaldi"] {
            assert!(!profile_by_name(name).unwrap().reports_history(), "{name}");
        }
    }

    #[test]
    fn yandex_uses_persistent_identifier() {
        let yandex = profile_by_name("Yandex").unwrap();
        assert_eq!(yandex.persistent_id_key.as_deref(), Some("yandexuid"));
        assert!(yandex.per_visit.iter().any(|c| matches!(
            c.payload,
            Payload::HostnamePlusId { .. }
        )));
    }

    #[test]
    fn table2_spot_checks() {
        let whale = profile_by_name("Whale").unwrap();
        assert!(whale.leaks(PiiField::LocalIp));
        assert!(whale.leaks(PiiField::RootedStatus));
        let opera = profile_by_name("Opera").unwrap();
        assert!(opera.leaks(PiiField::Location));
        let chrome = profile_by_name("Chrome").unwrap();
        assert!(PiiField::ALL.iter().all(|f| !chrome.leaks(*f)));
        let brave = profile_by_name("Brave").unwrap();
        assert!(PiiField::ALL.iter().all(|f| !brave.leaks(*f)));
    }

    #[test]
    fn instrumentation_assignments() {
        assert_eq!(
            profile_by_name("UC International").unwrap().instrumentation,
            Instrumentation::FridaInternalApi
        );
        for name in ["QQ", "DuckDuckGo", "Dolphin", "Mint"] {
            assert_eq!(
                profile_by_name(name).unwrap().instrumentation,
                Instrumentation::FridaWebView,
                "{name}"
            );
        }
        assert_eq!(profile_by_name("Chrome").unwrap().instrumentation, Instrumentation::Cdp);
    }

    #[test]
    fn coccoc_is_the_adblocking_browser() {
        let profiles = all_profiles();
        let blockers: Vec<&str> =
            profiles.iter().filter(|p| p.adblock).map(|p| p.name.as_str()).collect();
        assert_eq!(blockers, vec!["CocCoc"]);
    }

    #[test]
    fn uc_injects_js_instead_of_native_history() {
        let uc = profile_by_name("UC International").unwrap();
        assert_eq!(uc.injects_js_collector.as_deref(), Some("collect.ucweb.com"));
        assert!(uc.per_visit.iter().all(|c| matches!(
            c.payload,
            Payload::Telemetry | Payload::None
        )));
    }

    #[test]
    fn stub_users_match_expected_set() {
        let profiles = all_profiles();
        let stub: Vec<&str> = profiles
            .iter()
            .filter(|p| p.resolver == ResolverKind::LocalStub)
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(
            stub,
            vec!["Chrome", "Brave", "Samsung", "DuckDuckGo", "Dolphin", "Mint", "UC International"]
        );
    }

    #[test]
    fn pinned_models_are_coherent() {
        for model in pinned_models() {
            assert_eq!(model.coherence_errors(), Vec::<String>::new(), "{}", model.name);
        }
    }

    #[test]
    fn population_default_is_exactly_the_paper_set() {
        for seed in [0, 1, 42] {
            let pop = population(seed, 15);
            assert_eq!(pop, all_profiles(), "seed {seed}");
        }
    }

    #[test]
    fn population_scales_past_the_paper_set() {
        let pop = population(42, 100);
        assert_eq!(pop.len(), 100);
        assert_eq!(pop[..15], all_profiles()[..]);
        // Sampled names never collide with each other or the pinned set.
        let mut names: Vec<&str> = pop.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn population_truncates_below_fifteen() {
        let pop = population(7, 4);
        assert_eq!(pop.len(), 4);
        assert_eq!(pop[..], all_profiles()[..4]);
    }
}
