//! The geolocation database: country blocks for the simulated Internet.
//!
//! The address plan below is shared with `panoptes-web`, which allocates
//! server addresses *from these blocks*; the geolocation lookup of §3.4
//! then recovers the hosting country exactly the way iplocation.net
//! resolves real allocations.

use panoptes_http::netaddr::{Cidr, IpAddr};

use crate::country::Country;
use crate::trie::CidrTrie;

/// An IP-to-country lookup service.
pub struct GeoDb {
    trie: CidrTrie<Country>,
}

impl Default for GeoDb {
    fn default() -> Self {
        GeoDb::standard()
    }
}

/// The simulated Internet's address plan: `(block, country)` pairs.
///
/// Each entry hosts a class of servers; `panoptes-web` allocates from the
/// same constants.
pub const ADDRESS_PLAN: &[(&str, &str)] = &[
    // EU hosting used by the generic simulated web (crawl vantage is GR).
    ("62.74.0.0/16", "GR"),   // device's ISP + EU sites
    ("81.169.0.0/16", "DE"),  // EU hosting A
    ("94.198.0.0/16", "NL"),  // EU hosting B
    ("52.208.0.0/16", "IE"),  // EU cloud region
    // US hosting and the big third-party platforms.
    ("23.20.0.0/16", "US"),    // US hosting
    ("172.217.0.0/16", "US"),  // google / dns.google / doubleclick
    ("157.240.0.0/16", "US"),  // facebook graph
    ("13.107.0.0/16", "US"),   // microsoft / bing / msn
    ("104.16.0.0/16", "US"),   // cloudflare anycast (surfaced as US)
    ("151.101.0.0/16", "US"),  // CDN
    // Vendor home countries the paper's §3.4 finding depends on.
    ("77.88.0.0/18", "RU"),    // yandex
    ("101.226.0.0/16", "CN"),  // tencent / qq
    ("192.99.0.0/16", "CA"),   // UC International's receiving servers
    ("103.37.28.0/22", "VN"),  // coccoc
    ("125.209.0.0/16", "KR"),  // naver whale
    ("185.26.180.0/22", "NO"), // opera
    ("203.205.0.0/16", "CN"),  // tencent overseas-routed
];

impl GeoDb {
    /// An empty database.
    pub fn empty() -> GeoDb {
        GeoDb { trie: CidrTrie::new() }
    }

    /// The standard database covering [`ADDRESS_PLAN`].
    pub fn standard() -> GeoDb {
        let mut db = GeoDb::empty();
        for (block, country) in ADDRESS_PLAN {
            db.insert(Cidr::parse(block).expect("valid plan block"), Country::new(country));
        }
        db
    }

    /// Registers a block.
    pub fn insert(&mut self, block: Cidr, country: Country) {
        self.trie.insert(block, country);
    }

    /// Country-level location of `ip`, if allocated.
    pub fn country_of(&self, ip: IpAddr) -> Option<Country> {
        self.trie.lookup(ip).copied()
    }

    /// Convenience for the §3.4 analysis: is this server outside the EU?
    /// `None` when the address is not in the database.
    pub fn is_outside_eu(&self, ip: IpAddr) -> Option<bool> {
        self.country_of(ip).map(|c| !c.is_eu())
    }

    /// Number of registered blocks.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True when no blocks are registered.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// The plan block assigned to `country`, for allocators that need an
    /// address in a given country (first match in plan order).
    pub fn block_for(country: Country) -> Option<Cidr> {
        ADDRESS_PLAN
            .iter()
            .find(|(_, c)| Country::new(c) == country)
            .and_then(|(b, _)| Cidr::parse(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_db_resolves_plan_blocks() {
        let db = GeoDb::standard();
        assert_eq!(db.len(), ADDRESS_PLAN.len());
        assert_eq!(db.country_of(IpAddr::new(77, 88, 1, 1)), Some(Country::new("RU")));
        assert_eq!(db.country_of(IpAddr::new(101, 226, 4, 4)), Some(Country::new("CN")));
        assert_eq!(db.country_of(IpAddr::new(192, 99, 10, 10)), Some(Country::new("CA")));
        assert_eq!(db.country_of(IpAddr::new(62, 74, 3, 3)), Some(Country::new("GR")));
        assert_eq!(db.country_of(IpAddr::new(9, 9, 9, 9)), None);
    }

    #[test]
    fn eu_boundary_checks() {
        let db = GeoDb::standard();
        assert_eq!(db.is_outside_eu(IpAddr::new(77, 88, 1, 1)), Some(true)); // RU
        assert_eq!(db.is_outside_eu(IpAddr::new(81, 169, 1, 1)), Some(false)); // DE
        assert_eq!(db.is_outside_eu(IpAddr::new(10, 0, 0, 1)), None);
    }

    #[test]
    fn block_for_country() {
        let block = GeoDb::block_for(Country::new("RU")).unwrap();
        assert!(block.contains(IpAddr::new(77, 88, 0, 5)));
        assert_eq!(GeoDb::block_for(Country::new("ZW")), None);
    }

    #[test]
    fn plan_blocks_do_not_overlap() {
        let blocks: Vec<Cidr> = ADDRESS_PLAN.iter().map(|(b, _)| Cidr::parse(b).unwrap()).collect();
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                assert!(
                    !a.contains(b.base) && !b.contains(a.base),
                    "{a} overlaps {b}"
                );
            }
        }
    }
}
