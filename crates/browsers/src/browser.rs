//! A running browser instance: engine + native behaviours.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use panoptes_blocklist::filterlist::easylist_excerpt;
use panoptes_blocklist::FilterList;
use panoptes_device::{AppDataStore, DeviceProperties};
use panoptes_http::url::Url;
use panoptes_instrument::tap::RequestTap;
use panoptes_simnet::clock::{SimClock, SimDuration, SimInstant};
use panoptes_simnet::net::Network;
use panoptes_simnet::tls::{CaId, PinPolicy, TrustStore};
use panoptes_simnet::EventQueue;
use panoptes_web::site::SiteSpec;

use crate::engine::{ClientTemplate, EngineSession, EngineStats};
use crate::payload::{build_native_request, PayloadCtx};
use crate::profile::{BrowserProfile, NativeCall};

/// Normal or incognito browsing (§3.2's incognito experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrowsingMode {
    /// Regular browsing.
    Normal,
    /// Private/incognito mode.
    Incognito,
}

/// Everything a browser touches while running — owned by the campaign.
pub struct Env<'a> {
    /// The simulated network path.
    pub net: &'a Network,
    /// The campaign clock.
    pub clock: &'a mut SimClock,
    /// Device properties (PII source).
    pub props: &'a DeviceProperties,
    /// The app's private data store.
    pub data: &'a mut AppDataStore,
    /// The instrumentation tap tainting engine requests (`None` for
    /// un-instrumented control runs).
    pub tap: Option<Arc<dyn RequestTap>>,
}

/// What one page visit produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitOutcome {
    /// The visited URL.
    pub url: String,
    /// Engine request/fallback/block counters.
    pub engine: EngineStats,
    /// Native requests sent because of this visit.
    pub native_sent: u32,
    /// Virtual time `DOMContentLoaded` fired, if within the page's
    /// ability (the 60-second budget of §2.1 is applied by the crawler).
    pub dom_content_loaded_at: Option<SimInstant>,
}

/// A launched browser instance.
pub struct Browser {
    /// The static model.
    pub profile: BrowserProfile,
    /// Current browsing mode.
    pub mode: BrowsingMode,
    client: ClientTemplate,
    session: EngineSession,
    seed: u64,
    #[allow(dead_code)] // jitter hook for future behaviours
    rng: StdRng,
}

impl Browser {
    /// Launches `profile` as UID `uid` under campaign `seed`. The trust
    /// store contains the system roots plus the Panoptes MITM CA (§2.2
    /// installs it on the device).
    pub fn launch(profile: BrowserProfile, uid: u32, seed: u64, mode: BrowsingMode) -> Browser {
        Browser::launch_with(profile, uid, seed, mode, None)
    }

    /// [`Browser::launch`] with an optional pre-compiled filterlist.
    ///
    /// When `shared_filter` is `Some` and the profile adblocks, the
    /// session reuses that compiled list instead of compiling its own —
    /// the serving layer's cross-request artifact share. Profiles
    /// without adblock ignore it; `None` preserves the per-session
    /// compile exactly.
    pub fn launch_with(
        profile: BrowserProfile,
        uid: u32,
        seed: u64,
        mode: BrowsingMode,
        shared_filter: Option<Arc<FilterList>>,
    ) -> Browser {
        assert!(
            mode == BrowsingMode::Normal || profile.supports_incognito,
            "{} does not provide an incognito mode (paper footnote 5)",
            profile.name
        );
        let mut trust = TrustStore::system();
        trust.install(CaId::mitm());
        let pinned: Vec<&str> = profile.pinned_domains.iter().map(String::as_str).collect();
        let client = ClientTemplate {
            uid,
            package: profile.package.as_str().into(),
            trust,
            pins: PinPolicy::pin(&pinned),
        };
        let filter = if profile.adblock {
            Some(shared_filter.unwrap_or_else(|| Arc::new(easylist_excerpt())))
        } else {
            None
        };
        let session = EngineSession::with_filter(
            profile.resolver,
            filter,
            profile.attempts_h3,
            &profile.name,
            &profile.version,
        );
        let rng = StdRng::seed_from_u64(seed ^ uid as u64);
        Browser { profile, mode, client, session, seed, rng }
    }

    /// The kernel UID this instance runs under.
    pub fn uid(&self) -> u32 {
        self.client.uid
    }

    fn send_native(
        &mut self,
        env: &mut Env<'_>,
        call: &NativeCall,
        visit: Option<&Url>,
    ) -> u32 {
        if self.mode == BrowsingMode::Incognito && call.respects_incognito {
            return 0;
        }
        // §2.1's wizard configurations: vendors that honour the telemetry
        // prompt skip their telemetry when the user declined. The others
        // keep transmitting (Listing 1's `userConsent:"false"`).
        if self.profile.honors_telemetry_consent
            && matches!(call.payload, crate::profile::Payload::Telemetry)
            && env.data.pref("telemetry-consent") == Some("denied")
        {
            return 0;
        }
        let mut sent = 0;
        for copy in 0..call.count {
            let mut ctx = PayloadCtx {
                props: env.props,
                data: env.data,
                profile: &self.profile,
                seed: self.seed,
                now: env.clock.now(),
            };
            let req = build_native_request(call, &mut ctx, visit, copy);
            // Native traffic resolves through the same mechanism the
            // browser's stack uses — but without the taint tap.
            let mut stats = EngineStats::default();
            self.session
                .ensure_resolved(env.net, &self.client, env.clock, &call.host, &mut stats);
            match env.net.send_http(&self.client.ctx(env.clock.now()), req) {
                Ok((_, report)) => {
                    env.clock.advance(SimDuration(report.latency.0 / 4));
                    sent += 1;
                }
                Err(_) => {
                    // Pinned / unreachable: request never completes;
                    // the proxy recorded what it could.
                }
            }
            sent += stats.doh_lookups;
        }
        sent
    }

    /// App launch: fires the startup catalogue (update checks, config
    /// fetches). Returns the number of native requests sent.
    pub fn startup(&mut self, env: &mut Env<'_>) -> u32 {
        let calls = self.profile.startup.clone();
        let mut sent = 0;
        for call in &calls {
            sent += self.send_native(env, call, None);
        }
        sent
    }

    /// Visits a site: engine page load plus the per-visit native calls
    /// (phone-homes, telemetry, ad SDKs).
    pub fn visit(&mut self, env: &mut Env<'_>, site: &SiteSpec) -> VisitOutcome {
        let mut persistent_jar = std::mem::take(&mut env.data.cookies);
        let (engine, dcl) = self.session.load_page(
            env.net,
            &self.client,
            env.clock,
            env.tap.as_ref(),
            &mut persistent_jar,
            self.mode == BrowsingMode::Incognito,
            site,
            env.props,
            self.profile.injects_js_collector.as_deref(),
        );
        env.data.cookies = persistent_jar;

        let visit_url = Url::parse(&site.url_string()).expect("valid site url");
        // DoH lookups triggered by the page load are native traffic too.
        let mut native_sent = engine.doh_lookups;
        let calls = self.profile.per_visit.clone();
        for call in &calls {
            native_sent += self.send_native(env, call, Some(&visit_url));
        }

        VisitOutcome {
            url: site.url_string(),
            engine,
            native_sent,
            dom_content_loaded_at: dcl,
        }
    }

    /// Runs the idle experiment (§3.5): the browser sits at its start
    /// page for `total` and its idle catalogue fires. Returns the number
    /// of native requests sent.
    ///
    /// The burst calls fire with exponentially growing gaps inside the
    /// first minute (favicon/thumbnail/DNS refresh — the paper's
    /// explanation of the early exponential growth); the periodic calls
    /// produce the plateau, or Opera's linear news-feed climb.
    pub fn idle(&mut self, env: &mut Env<'_>, total: SimDuration) -> u32 {
        let start = env.clock.now();
        let mut queue: EventQueue<NativeCall> = EventQueue::new();

        // Burst schedule: gaps 0.5s, 0.85s, 1.4s, ... (×1.7), capped to
        // the first minute.
        let mut offset = SimDuration::ZERO;
        let mut gap_us = 500_000u64;
        for call in &self.profile.idle.burst {
            offset += SimDuration(gap_us);
            gap_us = (gap_us as f64 * 1.7) as u64;
            if offset > SimDuration::from_secs(60) || offset > total {
                break;
            }
            queue.push(start.plus(offset), call.clone());
        }
        // Periodic schedule.
        for (interval_secs, call) in &self.profile.idle.periodic {
            let interval = SimDuration::from_secs(*interval_secs);
            let mut at = interval;
            while at <= total {
                queue.push(start.plus(at), call.clone());
                at += interval;
            }
        }

        let mut sent = 0;
        let deadline = start.plus(total);
        for (at, call) in queue.drain_until(deadline) {
            if at > env.clock.now() {
                env.clock.advance_to(at);
            }
            sent += self.send_native(env, &call, None);
        }
        if env.clock.now() < deadline {
            env.clock.advance_to(deadline);
        }
        sent
    }

    /// Read access to the engine session (tests, diagnostics).
    pub fn engine(&self) -> &EngineSession {
        &self.session
    }
}
