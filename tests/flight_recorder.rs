//! Flight recorder + watchdog, exercised through the real study
//! engine: a slow-but-progressing study must never trip the stall
//! detector, while a genuinely wedged lane (a stream writer that stops
//! accepting events) must produce exactly one doctor-readable
//! post-mortem and leave the engine healthy once unwedged.

use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use panoptes_serve::doctor;
use panoptes_serve::flightrec::Watchdog;
use panoptes_serve::study::{EventSink, RequestInfo, StudyEngine, StudyParams};

fn params(seed: u64) -> StudyParams {
    StudyParams { seed, popular: 6, sensitive: 4, tail: 0, population: 5, idle_secs: 60 }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("panoptes-flightrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dump_files(dir: &PathBuf) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("flightrec-")))
        .collect();
    files.sort();
    files
}

/// Delivers every event but takes `delay` to do it — a slow client
/// that nonetheless keeps making progress.
struct SlowSink {
    events: Vec<String>,
    delay: Duration,
}

impl EventSink for SlowSink {
    fn event(&mut self, line: &str) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.events.push(line.to_string());
        Ok(())
    }
}

/// Accepts `open_until` events, then blocks inside `event` until the
/// gate opens — the classic wedged-stream shape (a peer that stopped
/// reading), which stalls the lane without any progress signal.
struct GatedSink {
    events: Vec<String>,
    open_until: usize,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl EventSink for GatedSink {
    fn event(&mut self, line: &str) -> io::Result<()> {
        if self.events.len() >= self.open_until {
            let (lock, cvar) = &*self.gate;
            let mut open = lock.lock().expect("gate lock");
            while !*open {
                open = cvar.wait(open).expect("gate wait");
            }
        }
        self.events.push(line.to_string());
        Ok(())
    }
}

#[test]
fn watchdog_lets_a_slow_but_progressing_study_finish_undisturbed() {
    let dir = fresh_dir("progressing");
    let engine = StudyEngine::new(2, None);
    // Deadline far below the study's total wall time: ~25 events at
    // 100ms each, so only per-event liveness keeps the watchdog quiet.
    let watchdog = Watchdog::spawn(
        Arc::clone(engine.recorder()),
        Duration::from_millis(500),
        dir.clone(),
        Box::new(|| "test-snapshot".to_string()),
    );

    let mut sink = SlowSink { events: Vec::new(), delay: Duration::from_millis(100) };
    let started = Instant::now();
    let outcome =
        engine.run_streaming(&params(0xF11), &mut sink, RequestInfo::local()).expect("study runs");
    assert!(outcome.bytes > 0);
    assert!(
        started.elapsed() > Duration::from_millis(1_000),
        "sink was not slow enough to prove anything"
    );
    // Give the watchdog a couple of ticks to (wrongly) notice, then stop.
    std::thread::sleep(Duration::from_millis(400));
    watchdog.stop();

    assert!(
        dump_files(&dir).is_empty(),
        "watchdog false-positive: dumped a study that was making progress"
    );
    assert!(sink.events.iter().any(|l| l.contains("\"event\":\"done\"")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_dumps_a_wedged_lane_once_and_recovers() {
    let dir = fresh_dir("wedged");
    let engine = Arc::new(StudyEngine::new(2, None));
    let watchdog = Watchdog::spawn(
        Arc::clone(engine.recorder()),
        Duration::from_millis(200),
        dir.clone(),
        Box::new(|| "lanes=test".to_string()),
    );

    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let req = RequestInfo::local();
    let wedged_request = req.id;
    let worker = {
        let engine = Arc::clone(&engine);
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            let mut sink = GatedSink { events: Vec::new(), open_until: 1, gate };
            let outcome = engine.run_streaming(&params(0xDEAD), &mut sink, req);
            (sink.events, outcome)
        })
    };

    // The wedged lane must produce a post-mortem within a few deadlines.
    let poll_deadline = Instant::now() + Duration::from_secs(20);
    let dump_path = loop {
        if let Some(path) = dump_files(&dir).into_iter().next() {
            break path;
        }
        assert!(Instant::now() < poll_deadline, "watchdog never dumped the wedged study");
        std::thread::sleep(Duration::from_millis(25));
    };

    let text = std::fs::read_to_string(&dump_path).expect("read post-mortem");
    assert!(doctor::is_flight_dump(&text), "post-mortem is not in flight-dump format");
    let dump = doctor::parse_flight_dump(&text).expect("doctor parses the post-mortem");
    assert!(dump.reason.contains("watchdog"), "reason names the watchdog: {}", dump.reason);
    assert!(dump.reason.contains(&wedged_request.to_string()), "reason names the request");
    assert_eq!(dump.snapshot, "lanes=test", "dump carries the server snapshot line");
    let study = dump
        .studies
        .iter()
        .find(|s| s.request == wedged_request)
        .expect("wedged study is in the dump");
    assert!(study.total > 0 && study.done < study.total, "dump shows partial progress");
    assert!(
        dump.events.iter().any(|(_, r, kind, _)| *r == wedged_request && kind == "study.start"),
        "ring retains the study's start event"
    );

    // Unwedge: the study completes normally and the stall is never
    // re-dumped (once-per-study flag).
    {
        let (lock, cvar) = &*gate;
        *lock.lock().expect("gate lock") = true;
        cvar.notify_all();
    }
    let (events, outcome) = worker.join().expect("wedged worker joins");
    outcome.expect("study completes after the stall clears");
    assert!(events.iter().any(|l| l.contains("\"event\":\"done\"")));

    std::thread::sleep(Duration::from_millis(600));
    watchdog.stop();
    assert_eq!(dump_files(&dir).len(), 1, "a wedged study is dumped exactly once");
    assert!(
        engine.recorder().take_stalled(Duration::from_millis(0)).is_empty(),
        "no study remains registered after completion"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
