//! A/B measurement isolation for the bench binaries.
//!
//! Two systematic biases haunt naive two-arm comparisons on this
//! pipeline:
//!
//! * **shared warm state** — campaign captures memoise per-flow facts
//!   on first analysis, so whichever arm runs first pays the parse
//!   cost and warms the cache for the second. An A/B over the *same*
//!   capture set therefore flatters the arm that runs later unless
//!   both arms are warmed (or each arm gets fresh state);
//! * **host drift** — on a small shared container a frequency dip or
//!   noisy neighbour can hit one arm's entire measurement window.
//!
//! The helpers here make the protocol explicit: warmup iterations run
//! both arms and are excluded from every statistic, timed reps
//! interleave arm-by-arm so drift lands on both sides, and
//! [`isolated`] gives each arm freshly built state per rep for
//! comparisons where shared warm state would lie.

use std::time::Instant;

/// The A/B protocol knobs: `warmups` untimed iterations per arm, then
/// `reps` timed ones.
#[derive(Debug, Clone, Copy)]
pub struct AbConfig {
    /// Untimed iterations per arm before measurement (cache/branch
    /// warm-up; excluded from all statistics).
    pub warmups: usize,
    /// Timed iterations per arm.
    pub reps: usize,
}

impl AbConfig {
    /// A protocol with `warmups` excluded iterations and `reps` timed.
    pub fn new(warmups: usize, reps: usize) -> AbConfig {
        AbConfig { warmups, reps: reps.max(1) }
    }
}

/// One arm's timed samples (warmups already excluded).
#[derive(Debug, Clone)]
pub struct ArmStats {
    /// Arm label for reports.
    pub label: String,
    /// Per-rep wall-clock seconds, in execution order.
    pub secs: Vec<f64>,
}

impl ArmStats {
    /// An arm from pre-collected samples (e.g. per-request latencies).
    pub fn from_samples(label: &str, secs: Vec<f64>) -> ArmStats {
        ArmStats { label: label.to_string(), secs }
    }

    /// Best (minimum) sample — the low-noise wall-clock estimator.
    pub fn best(&self) -> f64 {
        self.secs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.secs.is_empty() {
            return 0.0;
        }
        self.secs.iter().sum::<f64>() / self.secs.len() as f64
    }

    /// The `p`-th percentile (0..=100, nearest-rank on a sorted copy).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.secs, p)
    }
}

/// Both arms of a comparison.
#[derive(Debug, Clone)]
pub struct AbOutcome {
    /// The first (usually baseline) arm.
    pub a: ArmStats,
    /// The second (usually candidate) arm.
    pub b: ArmStats,
}

impl AbOutcome {
    /// best(a) / best(b): >1 means arm B is faster.
    pub fn speedup_best(&self) -> f64 {
        self.a.best() / self.b.best()
    }
}

/// The `p`-th percentile of `samples` (nearest-rank; sorts a copy, so
/// callers keep their data in arrival order).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Best-of-`reps` wall-clock seconds of `f`, after `warmups` excluded
/// runs.
pub fn best_of<F: FnMut()>(config: AbConfig, mut f: F) -> f64 {
    for _ in 0..config.warmups {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..config.reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// `reps` timed samples of `f` in execution order, after `warmups`
/// excluded runs — the single-arm version of the protocol, for bench
/// sections that report spread rather than a comparison.
pub fn samples<F: FnMut()>(config: AbConfig, mut f: F) -> Vec<f64> {
    for _ in 0..config.warmups {
        f();
    }
    let mut secs = Vec::with_capacity(config.reps);
    for _ in 0..config.reps {
        let start = Instant::now();
        f();
        secs.push(start.elapsed().as_secs_f64());
    }
    secs
}

/// Times two arms over shared state: both arms run `warmups` untimed
/// iterations first (so neither inherits the other's cold-cache
/// penalty — the shared-warm-state bias), then `reps` timed
/// iterations interleaved rep-by-rep (so host drift hits both arms).
pub fn interleaved<FA, FB>(
    config: AbConfig,
    label_a: &str,
    mut a: FA,
    label_b: &str,
    mut b: FB,
) -> AbOutcome
where
    FA: FnMut(),
    FB: FnMut(),
{
    for _ in 0..config.warmups {
        a();
        b();
    }
    let mut secs_a = Vec::with_capacity(config.reps);
    let mut secs_b = Vec::with_capacity(config.reps);
    for _ in 0..config.reps {
        let start = Instant::now();
        a();
        secs_a.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b();
        secs_b.push(start.elapsed().as_secs_f64());
    }
    AbOutcome {
        a: ArmStats { label: label_a.to_string(), secs: secs_a },
        b: ArmStats { label: label_b.to_string(), secs: secs_b },
    }
}

/// Times two arms with *fresh state per arm per rep*: each rep builds
/// arm A's input (untimed), times A, drops it, then does the same for
/// arm B. Use when shared state would let one arm warm caches for the
/// other — e.g. capture fact memos, or a server-side artifact cache.
pub fn isolated<T, U, MA, FA, MB, FB>(
    config: AbConfig,
    label_a: &str,
    mut make_a: MA,
    mut run_a: FA,
    label_b: &str,
    mut make_b: MB,
    mut run_b: FB,
) -> AbOutcome
where
    MA: FnMut() -> T,
    FA: FnMut(T),
    MB: FnMut() -> U,
    FB: FnMut(U),
{
    for _ in 0..config.warmups {
        run_a(make_a());
        run_b(make_b());
    }
    let mut secs_a = Vec::with_capacity(config.reps);
    let mut secs_b = Vec::with_capacity(config.reps);
    for _ in 0..config.reps {
        let input = make_a();
        let start = Instant::now();
        run_a(input);
        secs_a.push(start.elapsed().as_secs_f64());
        let input = make_b();
        let start = Instant::now();
        run_b(input);
        secs_b.push(start.elapsed().as_secs_f64());
    }
    AbOutcome {
        a: ArmStats { label: label_a.to_string(), secs: secs_a },
        b: ArmStats { label: label_b.to_string(), secs: secs_b },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn warmups_are_excluded_from_samples() {
        let calls = AtomicUsize::new(0);
        let outcome = interleaved(
            AbConfig::new(2, 3),
            "a",
            || {
                calls.fetch_add(1, Ordering::SeqCst);
            },
            "b",
            || {
                calls.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(calls.load(Ordering::SeqCst), 10, "2 warmups + 3 reps per arm");
        assert_eq!(outcome.a.secs.len(), 3);
        assert_eq!(outcome.b.secs.len(), 3);
    }

    #[test]
    fn isolated_builds_fresh_state_per_rep() {
        let built = AtomicUsize::new(0);
        let outcome = isolated(
            AbConfig::new(1, 2),
            "a",
            || built.fetch_add(1, Ordering::SeqCst),
            |_| {},
            "b",
            || built.fetch_add(1, Ordering::SeqCst),
            |_| {},
        );
        assert_eq!(built.load(Ordering::SeqCst), 6, "each warmup and rep built anew");
        assert_eq!(outcome.a.secs.len(), 2);
    }

    #[test]
    fn samples_exclude_warmups_and_keep_order() {
        let calls = AtomicUsize::new(0);
        let secs = samples(AbConfig::new(2, 4), || {
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 6, "2 warmups + 4 reps");
        assert_eq!(secs.len(), 4);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 50.0), 3.0);
        assert_eq!(percentile(&samples, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn best_and_mean_summarise_samples() {
        let arm = ArmStats::from_samples("x", vec![2.0, 4.0]);
        assert_eq!(arm.best(), 2.0);
        assert_eq!(arm.mean(), 3.0);
        assert_eq!(arm.percentile(100.0), 4.0);
    }
}
