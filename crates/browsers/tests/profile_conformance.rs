//! Conformance of every browser model to its declared catalogue: the
//! native flows a crawl produces must come precisely from the profile's
//! startup/per-visit host sets (plus the DoH resolver), and PII must
//! appear exactly for the browsers that declare it.

use std::collections::BTreeSet;
use std::sync::Arc;

use panoptes_browsers::browser::{Browser, BrowsingMode, Env};
use panoptes_browsers::registry::all_profiles;
use panoptes_browsers::{BrowserProfile, PiiField};
use panoptes_device::Device;
use panoptes_instrument::tap::TaintInjector;
use panoptes_mitm::{FlowClass, FlowStore, TaintAddon, TransparentProxy, TAINT_HEADER};
use panoptes_simnet::clock::SimClock;
use panoptes_simnet::dns::ResolverKind;
use panoptes_simnet::tls::{CaId, CertificateAuthority};
use panoptes_simnet::Network;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

const TOKEN: &str = "tok";

fn crawl(profile: &BrowserProfile, sites: usize) -> (Arc<FlowStore>, World) {
    let mut device = Device::testbed();
    let net =
        Network::new(CertificateAuthority::new(CaId::public_web_pki()), device.local_ip());
    let world =
        World::build(&GeneratorConfig { popular: sites as u32, sensitive: 2, ..Default::default() });
    world.install(&net);
    let store = Arc::new(FlowStore::new());
    let mut proxy = TransparentProxy::new(store.clone());
    proxy.install_addon(Box::new(TaintAddon::new(TOKEN)));
    net.register_proxy(8080, Arc::new(proxy), TransparentProxy::certificate_authority());

    let uid = device.packages.install(&profile.package);
    net.with_filter(|f| f.install_panoptes_rules(uid, 8080));
    let mut browser = Browser::launch(profile.clone(), uid, 11, BrowsingMode::Normal);
    let mut clock = SimClock::new();
    {
        let mut env = Env {
            net: &net,
            clock: &mut clock,
            props: &device.props,
            data: device.packages.data_mut(&profile.package).unwrap(),
            tap: Some(Arc::new(TaintInjector::new(TAINT_HEADER, TOKEN))),
        };
        browser.startup(&mut env);
        let sites: Vec<_> = world.sites.clone();
        for site in &sites {
            browser.visit(&mut env, site);
        }
    }
    (store, world)
}

/// Every host a profile's crawl-time catalogue (startup + per-visit) can
/// reach, plus the DoH resolver.
fn expected_hosts(profile: &BrowserProfile) -> BTreeSet<String> {
    let mut hosts: BTreeSet<String> = profile
        .startup
        .iter()
        .chain(profile.per_visit.iter())
        .map(|c| c.host.to_string())
        .collect();
    if let ResolverKind::Doh(p) = profile.resolver {
        hosts.insert(p.host().to_string());
    }
    hosts
}

#[test]
fn native_flows_come_only_from_the_declared_catalogue() {
    for profile in all_profiles() {
        let (store, _) = crawl(&profile, 3);
        let expected = expected_hosts(&profile);
        for flow in store.native_flows() {
            assert!(
                expected.contains(flow.host.as_str()),
                "{}: undeclared native destination {}",
                profile.name,
                flow.host
            );
        }
    }
}

#[test]
fn per_visit_reporters_fire_on_every_visit() {
    for profile in all_profiles() {
        if profile.per_visit.is_empty() {
            continue;
        }
        let sites = 4;
        let (store, _) = crawl(&profile, sites);
        let native = store.native_flows();
        for call in profile.per_visit {
            let hits = native.iter().filter(|f| f.host == call.host).count();
            let expected_min = (sites + 2) * call.count as usize; // popular + sensitive visits
            assert!(
                hits >= expected_min,
                "{}: {} fired {hits} times, expected >= {expected_min}",
                profile.name,
                call.host
            );
        }
    }
}

#[test]
fn pii_values_only_in_declaring_browsers() {
    let local_ip = "192.168.1.50";
    let rooted_value = "rooted=true";
    for profile in all_profiles() {
        let (store, _) = crawl(&profile, 2);
        let native = store.native_flows();
        let carries_local_ip = native.iter().any(|f| f.url.contains(local_ip) || f.request_body.contains(local_ip));
        let carries_rooted =
            native.iter().any(|f| f.url.contains(rooted_value) || f.request_body.contains("\"rooted\":true"));
        assert_eq!(
            carries_local_ip,
            profile.leaks(PiiField::LocalIp),
            "{}: local IP presence mismatch",
            profile.name
        );
        assert_eq!(
            carries_rooted,
            profile.leaks(PiiField::RootedStatus),
            "{}: rooted-status presence mismatch",
            profile.name
        );
    }
}

#[test]
fn engine_flows_never_target_vendor_history_endpoints() {
    // The split must be airtight: phone-home endpoints only ever appear
    // in the native database (except UC's deliberate injected-JS case).
    let history_hosts =
        ["sba.yandex.net", "api.browser.yandex.ru", "wup.browser.qq.com", "api.bing.com"];
    for profile in all_profiles() {
        let (store, _) = crawl(&profile, 2);
        for flow in store.by_class(FlowClass::Engine) {
            assert!(
                !history_hosts.contains(&flow.host.as_str()),
                "{}: engine flow to history endpoint {}",
                profile.name,
                flow.host
            );
        }
    }
}

#[test]
fn idle_catalogue_hosts_do_not_leak_history() {
    // Idle chatter never carries visit URLs (there are no visits while
    // idle) — guard against profile-authoring mistakes.
    for profile in all_profiles() {
        for (_, call) in profile.idle.periodic {
            assert!(
                !matches!(
                    call.payload,
                    panoptes_browsers::Payload::FullUrlBase64 { .. }
                        | panoptes_browsers::Payload::FullUrlPlain { .. }
                        | panoptes_browsers::Payload::HostnamePlusId { .. }
                        | panoptes_browsers::Payload::DomainOnly { .. }
                ),
                "{}: idle call to {} declares a visit-dependent payload",
                profile.name,
                call.host
            );
        }
    }
}
