//! Extending Panoptes: audit a browser that is NOT in the paper's
//! Table 1. Defines a hypothetical "Acme Browser" whose vendor quietly
//! reports every visited URL percent-encoded to an analytics endpoint —
//! then shows the pipeline catching it with zero analysis changes.
//!
//! This is the workflow for auditing a new browser release: compose a
//! [`BehaviorModel`] from the same axes the 15 pinned paper browsers
//! use (or, against real hardware, point the harness at the real app),
//! materialize it, and re-run the standard analyses.
//!
//! ```text
//! cargo run --release --example custom_browser
//! ```

use panoptes_suite::analysis::history::{detect_history_leaks, LeakEncoding, LeakGranularity};
use panoptes_suite::analysis::pii::pii_row;
use panoptes_suite::browsers::{BehaviorModel, BrowserProfile, NativeCall, Payload, PiiField};
use panoptes_suite::device::DeviceProperties;
use panoptes_suite::panoptes::campaign::run_crawl;
use panoptes_suite::panoptes::config::CampaignConfig;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

/// The hypothetical vendor's behaviour model: a point in the same
/// parameter space the paper's browsers are pinned in.
fn acme_model() -> BehaviorModel {
    BehaviorModel::new("Acme Browser", "1.0.0", "com.acme.browser")
        .h3()
        .leaks(&[PiiField::Resolution, PiiField::Timezone])
        .persistent_id("acmeDeviceId")
        .startup(vec![NativeCall::ping("api.ucweb.com", "/v1/config")])
        .per_visit(vec![
            // The smoking gun: the full URL, percent-encoded, in a
            // "diagnostics" parameter. (Aimed at an existing world
            // endpoint so this example needs no world changes.)
            NativeCall::ping("track.ucweb.com", "/v1/diag")
                .carrying(Payload::full_url_plain("page")),
            NativeCall::ping("track.ucweb.com", "/v1/stat")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(64),
        ])
}

fn acme_profile() -> BrowserProfile {
    let model = acme_model();
    assert!(model.coherence_errors().is_empty(), "model must be coherent");
    model.materialize()
}

fn main() {
    let world = World::build(&GeneratorConfig { popular: 20, sensitive: 10, ..Default::default() });
    let profile = acme_profile();
    println!("auditing {} {} — a browser the paper never saw", profile.name, profile.version);

    let result = run_crawl(&world, &profile, &world.sites, &CampaignConfig::default());

    let leaks = detect_history_leaks(&result);
    assert!(!leaks.is_empty(), "the pipeline must catch the planted leak");
    println!("\ndetected without any analysis changes:");
    for l in &leaks {
        println!(
            "  {} -> {} [{} / {:?}]{}",
            l.browser,
            l.destination,
            l.granularity.as_str(),
            l.encoding,
            if l.persistent_id.is_some() { "  ** persistent id **" } else { "" }
        );
    }
    let worst = leaks.iter().map(|l| l.granularity).max().unwrap();
    assert_eq!(worst, LeakGranularity::FullUrl);
    assert!(leaks.iter().any(|l| l.encoding == LeakEncoding::Plain));

    let pii = pii_row(&result, &DeviceProperties::testbed_tablet());
    println!("\nPII observed:");
    for (field, dest) in &pii.leaked {
        println!("  {:<22} -> {}", field.label(), dest);
    }
}
