//! The metrics report's headline split, enforced end-to-end: every
//! metric classed [`Deterministic`] is a pure function of the workload,
//! so the deterministic section of the report renders **byte-identical**
//! no matter how the study executes — sequentially, through the fleet
//! at any worker count from 1 to 8, or with capture→analysis overlap.
//! Runtime-class metrics (timings, shard topology, process-lifetime
//! caches) are allowed to differ and are excluded by construction.
//!
//! Metrics are process-global and cumulative, so the whole check lives
//! in one `#[test]` (parallel test threads would interleave counts) and
//! each run is isolated via snapshot deltas.
//!
//! [`Deterministic`]: panoptes_obs::metrics::MetricClass::Deterministic

use panoptes::fleet::FleetOptions;
use panoptes_analysis::engine::{analyze_study, run_full_study_analyzed, AnalysisResources};
use panoptes_analysis::study::{run_full_crawl, run_full_idle};
use panoptes_bench::experiments::Scale;
use panoptes_obs::metrics::snapshot;
use panoptes_obs::report::render_deterministic;
use panoptes_simnet::clock::SimDuration;

const IDLE: SimDuration = SimDuration::from_secs(120);

#[test]
fn deterministic_metrics_identical_across_jobs_and_overlap() {
    let scale = Scale { popular: 8, sensitive: 5, ..Scale::quick() };
    let world = scale.world();
    let config = scale.config();
    let res = AnalysisResources::standard();
    panoptes_obs::enable(panoptes_obs::METRICS);

    let run_sequential = || {
        let crawls = run_full_crawl(&world, &world.sites, &config);
        let idles = run_full_idle(&world, IDLE, &config);
        std::hint::black_box(analyze_study(&crawls, &idles, &res).crawls.len());
    };

    // Warm-up: registers every metric handle and fills the
    // process-lifetime caches (atom interner, cached site plans) so
    // all measured runs see identical cache state.
    run_sequential();

    let deterministic_of = |run: &dyn Fn()| {
        let before = snapshot();
        run();
        render_deterministic(&snapshot().delta(&before))
    };

    let reference = deterministic_of(&run_sequential);
    for must_have in ["mitm.flows.built", "simnet.dns.queries", "blocklist.probes"] {
        assert!(
            reference.contains(must_have),
            "reference deterministic section is missing {must_have}:\n{reference}"
        );
    }

    // The same workload through the overlapped engine at every worker
    // count must tally identically, byte for byte.
    for jobs in 1..=8usize {
        let options = FleetOptions::with_jobs(jobs);
        let overlapped = deterministic_of(&|| {
            let study = run_full_study_analyzed(
                &world,
                &world.sites,
                &config,
                IDLE,
                &options,
                &res,
            )
            .unwrap_or_else(|e| panic!("overlapped study failed at jobs={jobs}: {e}"));
            std::hint::black_box(study.analyses.crawls.len());
        });
        assert_eq!(
            reference, overlapped,
            "deterministic metrics diverged between the sequential path and \
             the overlapped engine at jobs={jobs}"
        );
    }

    panoptes_obs::disable(panoptes_obs::METRICS);
}
