//! Consistency between the browser models and the simulated world: every
//! endpoint a profile can ever contact must exist (DNS + server), or the
//! measurement would silently undercount native traffic.

use std::collections::BTreeSet;

use panoptes_suite::browsers::registry::all_profiles;
use panoptes_suite::geo::GeoDb;
use panoptes_suite::web::generator::GeneratorConfig;
use panoptes_suite::web::World;

/// Every host a profile's catalogues reference.
fn profile_hosts() -> BTreeSet<String> {
    let mut hosts = BTreeSet::new();
    for p in all_profiles() {
        for call in p.startup.iter().chain(p.per_visit.iter()) {
            hosts.insert(call.host.to_string());
        }
        for call in p.idle.burst {
            hosts.insert(call.host.to_string());
        }
        for (_, call) in p.idle.periodic {
            hosts.insert(call.host.to_string());
        }
        if let Some(collector) = p.injects_js_collector {
            hosts.insert(collector.to_string());
        }
        match p.resolver {
            panoptes_suite::simnet::dns::ResolverKind::Doh(provider) => {
                hosts.insert(provider.host().to_string());
            }
            panoptes_suite::simnet::dns::ResolverKind::LocalStub => {}
        }
    }
    hosts
}

#[test]
fn every_profile_host_is_allocated_in_the_world() {
    let world = World::build(&GeneratorConfig { popular: 2, sensitive: 2, ..Default::default() });
    for host in profile_hosts() {
        assert!(world.ip_of(&host).is_some(), "{host} referenced by a profile but unallocated");
    }
}

#[test]
fn every_profile_host_geolocates() {
    let world = World::build(&GeneratorConfig { popular: 2, sensitive: 2, ..Default::default() });
    let geo = GeoDb::standard();
    for host in profile_hosts() {
        let ip = world.ip_of(&host).unwrap();
        assert!(geo.country_of(ip).is_some(), "{host} ({ip}) outside the geo plan");
    }
}

#[test]
fn every_site_resource_host_is_allocated() {
    let world = World::build(&GeneratorConfig { popular: 30, sensitive: 20, ..Default::default() });
    for site in &world.sites {
        assert!(world.ip_of(&site.host).is_some(), "{} landing host", site.domain);
        for r in &site.page.resources {
            assert!(
                world.ip_of(&r.host).is_some(),
                "{} references unallocated {}",
                site.domain,
                r.host
            );
        }
    }
}

#[test]
fn pinned_domains_cover_real_hosts() {
    // A pin on a domain nothing contacts would silently test nothing.
    let world = World::build(&GeneratorConfig { popular: 2, sensitive: 2, ..Default::default() });
    for p in all_profiles() {
        for pinned in p.pinned_domains {
            let covered = profile_hosts().iter().any(|h| {
                panoptes_suite::http::url::registrable_domain(h) == *pinned
            });
            assert!(covered, "{}: pin on {pinned} covers no catalogued host", p.name);
            // The pinned registrable domain itself need not resolve, but
            // at least one covered host must.
            let resolvable = profile_hosts()
                .iter()
                .filter(|h| panoptes_suite::http::url::registrable_domain(h) == *pinned)
                .any(|h| world.ip_of(h).is_some());
            assert!(resolvable, "{}: pinned hosts unresolvable", p.name);
        }
    }
}
