//! Analysis-path benchmarks: the zero-copy refactor's two claims.
//!
//! 1. **Extraction** — a study's ~10 passes re-reading one capture.
//!    The cloning baseline re-materialises the store (`all()` deep
//!    clone) and re-parses every URL/body per pass, exactly what the
//!    analysis crate did before the sealed-snapshot + `FlowFacts`
//!    migration; the snapshot path shares `Arc<Flow>` records and
//!    memoised parse results across passes.
//! 2. **Filterlist** — `should_block` over a ≥1k-rule list: the
//!    indexed engine (anchor suffix set + rare-byte substring buckets)
//!    against the reference linear scan.
//!
//! `src/bin/bench_analysis.rs` records the same comparisons as
//! `BENCH_analysis.json` for the perf trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use panoptes_analysis::facts::capture_facts;
use panoptes_analysis::scan::{decodings, observations};
use panoptes_analysis::study::{run_full_crawl, run_full_idle};
use panoptes_analysis::summary::study_report;
use panoptes_bench::experiments::Scale;
use panoptes_bench::perf;
use panoptes_simnet::clock::SimDuration;

/// Passes a full study makes over each capture (history runs the
/// extraction twice, PII/identifiers/sensitive once each, …).
const PASSES: usize = 10;

fn extraction(c: &mut Criterion) {
    let scale = Scale::quick();
    let world = scale.world();
    let config = scale.config();
    let crawls = run_full_crawl(&world, &world.sites, &config);
    let total_flows: u64 = crawls.iter().map(|r| r.store.len() as u64).sum();

    let mut group = c.benchmark_group("analysis_extraction_quick");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_flows * PASSES as u64));
    group.bench_function("cloning + reparse (pre-refactor baseline)", |b| {
        b.iter(|| {
            let mut sink = 0usize;
            for r in &crawls {
                for _ in 0..PASSES {
                    for flow in r.store.all() {
                        for obs in observations(&flow) {
                            sink += decodings(&obs.value).len();
                        }
                    }
                }
            }
            black_box(sink)
        })
    });
    group.bench_function("snapshot + facts (parse-once)", |b| {
        b.iter(|| {
            let mut sink = 0usize;
            for r in &crawls {
                let snap = r.store.snapshot();
                let facts = capture_facts(&snap);
                for _ in 0..PASSES {
                    for view in facts.views(snap.all()) {
                        for (_, decoded) in view.decoded_observations() {
                            sink += decoded.len();
                        }
                    }
                }
            }
            black_box(sink)
        })
    });
    group.finish();
}

fn full_report(c: &mut Criterion) {
    let scale = Scale::quick();
    let world = scale.world();
    let config = scale.config();
    let crawls = run_full_crawl(&world, &world.sites, &config);
    let idles = run_full_idle(&world, SimDuration::from_secs(120), &config);
    let total_flows: u64 = crawls.iter().map(|r| r.store.len() as u64).sum::<u64>()
        + idles.iter().map(|r| r.store.len() as u64).sum::<u64>();

    let mut group = c.benchmark_group("study_report_quick");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_flows));
    group.bench_function("full study report (snapshot path)", |b| {
        b.iter(|| black_box(study_report(&crawls, &idles).len()))
    });
    group.finish();
}

fn filterlist(c: &mut Criterion) {
    let list = perf::synthetic_filterlist(1200, 300);
    let urls = perf::filterlist_workload(2000);
    assert!(list.len() >= 1000, "bench demands a ≥1k-rule list");

    let mut group = c.benchmark_group("filterlist_1500_rules");
    group.sample_size(10);
    group.throughput(Throughput::Elements(urls.len() as u64));
    group.bench_function("linear scan (reference)", |b| {
        b.iter(|| {
            let hits = urls
                .iter()
                .filter(|(h, u)| list.should_block_linear(h, u))
                .count();
            black_box(hits)
        })
    });
    group.bench_function("indexed (anchor set + rare-byte buckets)", |b| {
        b.iter(|| {
            let hits = urls.iter().filter(|(h, u)| list.should_block(h, u)).count();
            black_box(hits)
        })
    });
    group.finish();

    // The two engines must agree on the whole workload, every run.
    let indexed: Vec<bool> = urls.iter().map(|(h, u)| list.should_block(h, u)).collect();
    let linear: Vec<bool> =
        urls.iter().map(|(h, u)| list.should_block_linear(h, u)).collect();
    assert_eq!(indexed, linear, "engines diverged on the bench workload");
}

criterion_group!(benches, extraction, full_report, filterlist);
criterion_main!(benches);
