//! The taint-splitting addon — the paper's core methodological trick.
//!
//! §2.3: the instrumentation layer (CDP or Frida) piggybacks "an
//! additional custom HTTP header using the 'x-' prefix" on every request
//! the *website* initiates. When requests arrive at the proxy, the addon
//! "intercepts them at runtime, filters the tainted ones (i.e., requests
//! originated from the website) before removing the additional (custom)
//! header and forwarding them to their original destination. If a request
//! is not tainted, it means that the request was generated natively by
//! the browser app."
//!
//! The addon additionally verifies a per-campaign token so that a
//! malicious page (or browser) cannot masquerade native traffic as
//! engine traffic by forging the header — spoofed taints are counted and
//! classified `Native`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::addon::{Addon, InterceptedRequest};
use crate::flow::FlowClass;

/// The custom header name the instrumentation injects.
pub const TAINT_HEADER: &str = "x-panoptes-taint";

/// The taint-splitting addon.
pub struct TaintAddon {
    token: String,
    spoofed: AtomicU64,
    engine_seen: AtomicU64,
    native_seen: AtomicU64,
}

impl TaintAddon {
    /// Builds the addon for a campaign token.
    pub fn new(token: &str) -> TaintAddon {
        TaintAddon {
            token: token.to_string(),
            spoofed: AtomicU64::new(0),
            engine_seen: AtomicU64::new(0),
            native_seen: AtomicU64::new(0),
        }
    }

    /// Number of requests carrying a taint header with a wrong token.
    pub fn spoofed_count(&self) -> u64 {
        self.spoofed.load(Ordering::Relaxed)
    }

    /// Number of requests classified Engine.
    pub fn engine_count(&self) -> u64 {
        self.engine_seen.load(Ordering::Relaxed)
    }

    /// Number of requests classified Native.
    pub fn native_count(&self) -> u64 {
        self.native_seen.load(Ordering::Relaxed)
    }
}

impl Addon for TaintAddon {
    fn name(&self) -> &str {
        "taint-split"
    }

    fn on_request(&self, ir: &mut InterceptedRequest<'_>) {
        // Strip-and-verify in place: no owned copies of the removed
        // values are ever made.
        let (removed, all_match) =
            ir.request.headers.strip_matching(TAINT_HEADER, &self.token);
        if removed > 0 {
            panoptes_obs::count!("mitm.taint.stripped", Deterministic, removed as u64);
        }
        if removed == 0 {
            *ir.class = FlowClass::Native;
            self.native_seen.fetch_add(1, Ordering::Relaxed);
        } else if all_match {
            *ir.class = FlowClass::Engine;
            self.engine_seen.fetch_add(1, Ordering::Relaxed);
        } else {
            // Forged or stale token: keep it Native, count the anomaly.
            *ir.class = FlowClass::Native;
            self.spoofed.fetch_add(1, Ordering::Relaxed);
            self.native_seen.fetch_add(1, Ordering::Relaxed);
            panoptes_obs::count!("mitm.taint.spoofed", Deterministic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_http::netaddr::IpAddr;
    use panoptes_http::request::HttpVersion;
    use panoptes_http::url::Url;
    use panoptes_http::Request;
    use panoptes_simnet::clock::SimInstant;
    use panoptes_simnet::net::FlowContext;

    fn ctx() -> FlowContext {
        FlowContext {
            time: SimInstant::EPOCH,
            uid: 1,
            app_package: "a".into(),
            src_ip: IpAddr::new(10, 0, 0, 1),
            dst_ip: IpAddr::new(10, 0, 0, 2),
            dst_port: 443,
            sni: "x.com".into(),
            version: HttpVersion::H2,
            intercepted: true,
        }
    }

    fn classify(addon: &TaintAddon, req: &mut Request) -> FlowClass {
        let ctx = ctx();
        let mut class = FlowClass::Native;
        let mut verdict = crate::addon::Verdict::Forward;
        addon.on_request(&mut InterceptedRequest {
            ctx: &ctx,
            request: req,
            class: &mut class,
            verdict: &mut verdict,
        });
        class
    }

    #[test]
    fn tainted_request_becomes_engine_and_header_is_stripped() {
        let addon = TaintAddon::new("tok-123");
        let mut req = Request::get(Url::parse("https://x.com/a").unwrap())
            .with_header(TAINT_HEADER, "tok-123")
            .with_header("accept", "*/*");
        assert_eq!(classify(&addon, &mut req), FlowClass::Engine);
        assert!(!req.headers.contains(TAINT_HEADER), "taint must be stripped before upstream");
        assert_eq!(req.headers.get("accept"), Some("*/*"));
        assert_eq!(addon.engine_count(), 1);
    }

    #[test]
    fn untainted_request_is_native() {
        let addon = TaintAddon::new("tok-123");
        let mut req = Request::get(Url::parse("https://x.com/a").unwrap());
        assert_eq!(classify(&addon, &mut req), FlowClass::Native);
        assert_eq!(addon.native_count(), 1);
        assert_eq!(addon.spoofed_count(), 0);
    }

    #[test]
    fn forged_token_stays_native_and_is_counted() {
        let addon = TaintAddon::new("tok-123");
        let mut req = Request::get(Url::parse("https://x.com/a").unwrap())
            .with_header(TAINT_HEADER, "wrong");
        assert_eq!(classify(&addon, &mut req), FlowClass::Native);
        assert_eq!(addon.spoofed_count(), 1);
        assert!(!req.headers.contains(TAINT_HEADER), "forged taint still stripped");
    }

    #[test]
    fn duplicate_valid_taints_are_engine() {
        let addon = TaintAddon::new("t");
        let mut req = Request::get(Url::parse("https://x.com/a").unwrap())
            .with_header(TAINT_HEADER, "t")
            .with_header(TAINT_HEADER, "t");
        assert_eq!(classify(&addon, &mut req), FlowClass::Engine);
    }
}
