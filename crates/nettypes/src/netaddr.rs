//! IPv4 addresses and CIDR blocks.
//!
//! Shared by the network simulator (address allocation, packet filter) and
//! the geolocation database (`panoptes-geo` does longest-prefix matches on
//! [`Cidr`] blocks, reproducing the iplocation.net lookups of §3.4).

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Parses dotted-quad notation.
    pub fn parse(s: &str) -> Option<IpAddr> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in &mut octets {
            let part = parts.next()?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            *octet = part.parse().ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(IpAddr::new(octets[0], octets[1], octets[2], octets[3]))
    }

    /// The four octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl std::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// An IPv4 CIDR block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    /// Network base address (host bits are masked off at construction).
    pub base: IpAddr,
    /// Prefix length in bits, `0..=32`.
    pub prefix: u8,
}

impl Cidr {
    /// Builds a block, masking host bits off `base`.
    pub fn new(base: IpAddr, prefix: u8) -> Cidr {
        assert!(prefix <= 32, "prefix must be <= 32");
        Cidr { base: IpAddr(base.0 & Self::mask(prefix)), prefix }
    }

    /// Parses `a.b.c.d/len` notation.
    pub fn parse(s: &str) -> Option<Cidr> {
        let (addr, len) = s.split_once('/')?;
        let base = IpAddr::parse(addr)?;
        let prefix: u8 = len.parse().ok()?;
        if prefix > 32 {
            return None;
        }
        Some(Cidr::new(base, prefix))
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix as u32)
        }
    }

    /// True when `ip` falls inside this block.
    pub fn contains(self, ip: IpAddr) -> bool {
        (ip.0 & Self::mask(self.prefix)) == self.base.0
    }

    /// Returns the `index`-th host address within the block (no broadcast /
    /// network-address semantics — the simulator allocates linearly).
    pub fn host(self, index: u32) -> IpAddr {
        debug_assert!(self.prefix == 32 || index < (1u32 << (32 - self.prefix as u32)));
        IpAddr(self.base.0 | index)
    }
}

impl std::fmt::Display for Cidr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_ip() {
        let ip = IpAddr::parse("203.0.113.7").unwrap();
        assert_eq!(ip.octets(), [203, 0, 113, 7]);
        assert_eq!(ip.to_string(), "203.0.113.7");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "01x.2.3.4"] {
            assert!(IpAddr::parse(bad).is_none(), "{bad} should fail");
        }
    }

    #[test]
    fn cidr_contains() {
        let block = Cidr::parse("10.1.0.0/16").unwrap();
        assert!(block.contains(IpAddr::new(10, 1, 200, 3)));
        assert!(!block.contains(IpAddr::new(10, 2, 0, 1)));
        let all = Cidr::parse("0.0.0.0/0").unwrap();
        assert!(all.contains(IpAddr::new(255, 255, 255, 255)));
    }

    #[test]
    fn cidr_masks_host_bits() {
        let block = Cidr::new(IpAddr::new(192, 168, 1, 77), 24);
        assert_eq!(block.base, IpAddr::new(192, 168, 1, 0));
        assert_eq!(block.to_string(), "192.168.1.0/24");
    }

    #[test]
    fn host_allocation() {
        let block = Cidr::parse("198.51.100.0/24").unwrap();
        assert_eq!(block.host(7), IpAddr::new(198, 51, 100, 7));
    }

    #[test]
    fn slash32_contains_only_itself() {
        let block = Cidr::parse("8.8.8.8/32").unwrap();
        assert!(block.contains(IpAddr::new(8, 8, 8, 8)));
        assert!(!block.contains(IpAddr::new(8, 8, 8, 9)));
    }
}
