//! §3.2's DNS finding: "8 out of all 15 mobile browsers in our dataset
//! query Cloudflare's or Google's third-party DNS-over-HTTPS services
//! for the visited domains with the rest (7) of them using the device's
//! local DNS stub resolver."

use panoptes::campaign::CampaignResult;
use panoptes_simnet::dns::{DnsLogEntry, DohProvider, ResolverKind};

/// What the wire shows about a browser's resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedResolver {
    /// Plain UDP/53 to the device stub.
    LocalStub,
    /// DoH to the given provider.
    Doh(DohProvider),
    /// No lookups observed at all.
    None,
}

/// One browser's DNS row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRow {
    /// Browser name.
    pub browser: String,
    /// The resolver observed.
    pub resolver: ObservedResolver,
    /// Number of lookups observed.
    pub lookups: usize,
}

/// Mergeable accumulator form of the DNS detector, fed with resolver-log
/// entries instead of flows. `merge` is **ordered** — `other` must cover
/// entries strictly after `self`'s — so "first DoH lookup wins" survives
/// sharding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DnsPartial {
    doh: Option<DohProvider>,
    lookups: usize,
}

impl DnsPartial {
    /// Folds one resolver-log entry into the accumulator.
    pub fn observe(&mut self, entry: &DnsLogEntry) {
        if self.doh.is_none() {
            if let ResolverKind::Doh(p) = entry.resolver {
                self.doh = Some(p);
            }
        }
        self.lookups += 1;
    }

    /// Absorbs a later shard's accumulator (entries after `self`'s).
    pub fn merge(&mut self, other: DnsPartial) {
        if self.doh.is_none() {
            self.doh = other.doh;
        }
        self.lookups += other.lookups;
    }

    /// Finalises the browser's DNS row.
    pub fn finish(self, browser: &str) -> DnsRow {
        let resolver = match (self.doh, self.lookups) {
            (Some(p), _) => ObservedResolver::Doh(p),
            (None, 0) => ObservedResolver::None,
            (None, _) => ObservedResolver::LocalStub,
        };
        DnsRow { browser: browser.to_string(), resolver, lookups: self.lookups }
    }
}

/// Classifies one campaign's DNS behaviour from the capture: DoH flows
/// appear as native HTTPS to the provider; stub queries only show in the
/// resolver log.
pub fn dns_row(result: &CampaignResult) -> DnsRow {
    let mut partial = DnsPartial::default();
    for entry in result.dns_log.iter() {
        partial.observe(entry);
    }
    partial.finish(&result.profile.name)
}

/// The §3.2 split over a full study.
pub fn doh_split(results: &[CampaignResult]) -> (Vec<DnsRow>, usize, usize) {
    let rows: Vec<DnsRow> = results.iter().map(dns_row).collect();
    let doh = rows.iter().filter(|r| matches!(r.resolver, ObservedResolver::Doh(_))).count();
    let stub = rows
        .iter()
        .filter(|r| r.resolver == ObservedResolver::LocalStub)
        .count();
    (rows, doh, stub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes::campaign::run_crawl;
    use panoptes::config::CampaignConfig;
    use panoptes_browsers::registry::all_profiles;
    use panoptes_web::generator::GeneratorConfig;
    use panoptes_web::World;

    #[test]
    fn split_is_8_doh_7_stub() {
        let world =
            World::build(&GeneratorConfig { popular: 4, sensitive: 2, ..Default::default() });
        let config = CampaignConfig::default();
        let results: Vec<_> = all_profiles()
            .iter()
            .map(|p| run_crawl(&world, p, &world.sites, &config))
            .collect();
        let (rows, doh, stub) = doh_split(&results);
        assert_eq!(doh, 8, "{rows:?}");
        assert_eq!(stub, 7);
        let edge = rows.iter().find(|r| r.browser == "Edge").unwrap();
        assert_eq!(edge.resolver, ObservedResolver::Doh(DohProvider::Cloudflare));
        let chrome = rows.iter().find(|r| r.browser == "Chrome").unwrap();
        assert_eq!(chrome.resolver, ObservedResolver::LocalStub);
        assert!(chrome.lookups > 0);
    }
}
