//! An easylist-lite filterlist engine.
//!
//! Supports the rule forms that dominate real easylist usage:
//!
//! * `||domain.com^` — domain anchor: matches the domain and subdomains,
//! * `/substring/` or any bare token — substring match on the full URL,
//! * `@@` prefix — exception rule (overrides blocks),
//! * `!` prefix — comment.
//!
//! This powers the CocCoc model's engine-side ad blocking (§3.1: CocCoc
//! "is an ad-blocking browser that enforces the easylist filterlist in
//! its web engine").

/// One parsed rule.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Pattern {
    /// `||domain^` — matches the URL host (and subdomains).
    DomainAnchor(String),
    /// Bare substring on the serialized URL.
    Substring(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Rule {
    pattern: Pattern,
    exception: bool,
}

/// A parsed filterlist.
#[derive(Debug, Clone, Default)]
pub struct FilterList {
    blocks: Vec<Pattern>,
    exceptions: Vec<Pattern>,
}

impl FilterList {
    /// An empty list (blocks nothing).
    pub fn new() -> FilterList {
        FilterList::default()
    }

    /// Parses filterlist text.
    pub fn parse(text: &str) -> FilterList {
        let mut list = FilterList::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
                continue;
            }
            if let Some(rule) = parse_rule(line) {
                if rule.exception {
                    list.exceptions.push(rule.pattern);
                } else {
                    list.blocks.push(rule.pattern);
                }
            }
        }
        list
    }

    /// True when a request for `url_text` (to `host`) should be blocked.
    pub fn should_block(&self, host: &str, url_text: &str) -> bool {
        let blocked = self.blocks.iter().any(|p| pattern_matches(p, host, url_text));
        if !blocked {
            return false;
        }
        !self.exceptions.iter().any(|p| pattern_matches(p, host, url_text))
    }

    /// Number of blocking rules.
    pub fn len(&self) -> usize {
        self.blocks.len() + self.exceptions.len()
    }

    /// True when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.exceptions.is_empty()
    }
}

fn parse_rule(line: &str) -> Option<Rule> {
    let (exception, body) = match line.strip_prefix("@@") {
        Some(rest) => (true, rest),
        None => (false, line),
    };
    // Strip trailing options (`$third-party` etc.) — matched permissively.
    let body = body.split('$').next().unwrap_or(body);
    if body.is_empty() {
        return None;
    }
    let pattern = if let Some(anchored) = body.strip_prefix("||") {
        let domain = anchored.trim_end_matches('^').trim_end_matches('/');
        if domain.is_empty() {
            return None;
        }
        Pattern::DomainAnchor(domain.to_ascii_lowercase())
    } else {
        Pattern::Substring(body.to_ascii_lowercase())
    };
    Some(Rule { pattern, exception })
}

fn pattern_matches(pattern: &Pattern, host: &str, url_text: &str) -> bool {
    match pattern {
        Pattern::DomainAnchor(domain) => {
            let host = host.to_ascii_lowercase();
            host == *domain
                || (host.ends_with(domain)
                    && host.as_bytes().get(host.len() - domain.len() - 1) == Some(&b'.'))
        }
        Pattern::Substring(s) => url_text.to_ascii_lowercase().contains(s.as_str()),
    }
}

/// A pragmatic easylist excerpt: the generic ad-path rules plus domain
/// anchors for the ad/tracking networks embedded by the simulated web.
pub fn easylist_excerpt() -> FilterList {
    FilterList::parse(
        "! easylist (excerpt)\n\
         ||doubleclick.net^\n\
         ||googlesyndication.com^\n\
         ||google-analytics.com^\n\
         ||adnxs.com^\n\
         ||rubiconproject.com^\n\
         ||pubmatic.com^\n\
         ||openx.net^\n\
         ||criteo.com^\n\
         ||bidswitch.net^\n\
         ||demdex.net^\n\
         ||scorecardresearch.com^\n\
         ||quantserve.com^\n\
         ||taboola.com^\n\
         ||outbrain.com^\n\
         ||zemanta.com^\n\
         ||amazon-adsystem.com^\n\
         ||smartadserver.com^\n\
         ||indexexchange.com^\n\
         ||sovrn.com^\n\
         ||triplelift.com^\n\
         ||googletagmanager.com^\n\
         ||facebook.net^\n\
         /ads/\n\
         /adserver/\n\
         @@||example-ads-allowed.com^\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_anchor_blocks_subdomains() {
        let list = FilterList::parse("||doubleclick.net^");
        assert!(list.should_block("doubleclick.net", "https://doubleclick.net/pixel"));
        assert!(list.should_block("stats.g.doubleclick.net", "https://stats.g.doubleclick.net/x"));
        assert!(!list.should_block("notdoubleclick.net", "https://notdoubleclick.net/"));
    }

    #[test]
    fn substring_rules_match_path() {
        let list = FilterList::parse("/ads/");
        assert!(list.should_block("site.com", "https://site.com/ads/banner.js"));
        assert!(!list.should_block("site.com", "https://site.com/news/article"));
    }

    #[test]
    fn exception_overrides_block() {
        let list = FilterList::parse("||tracker.com^\n@@||tracker.com^$document");
        assert!(!list.should_block("tracker.com", "https://tracker.com/t.gif"));
    }

    #[test]
    fn comments_and_options_ignored() {
        let list = FilterList::parse("! comment\n[Adblock Plus 2.0]\n||x.com^$third-party\n");
        assert_eq!(list.len(), 1);
        assert!(list.should_block("x.com", "https://x.com/"));
    }

    #[test]
    fn excerpt_blocks_paper_networks() {
        let list = easylist_excerpt();
        for host in [
            "doubleclick.net",
            "rubiconproject.com",
            "adnxs.com",
            "openx.net",
            "pubmatic.com",
            "bidswitch.net",
            "demdex.net",
        ] {
            let url = format!("https://{host}/bid");
            assert!(list.should_block(host, &url), "{host} should be blocked");
        }
        assert!(!list.should_block("news.example.com", "https://news.example.com/story"));
    }

    #[test]
    fn empty_list_blocks_nothing() {
        let list = FilterList::new();
        assert!(list.is_empty());
        assert!(!list.should_block("doubleclick.net", "https://doubleclick.net/"));
    }
}
