//! The compiled filterlist matching engine.
//!
//! Two structures replace the per-rule probing of the indexed engine:
//!
//! * [`SubstringAutomaton`] — all substring rules compiled into one
//!   dense Aho–Corasick DFA walked byte-by-byte over the URL (case
//!   folding is compiled into the transition table, so matching never
//!   allocates a lowercased copy), behind a memchr-style rare-byte
//!   prefilter: the union of every pattern's rarest byte is intersected
//!   with the URL's byte set in four word ops, and the DFA only runs
//!   when a pattern *could* be present.
//! * [`AnchorSet`] — `||domain^` rules interned as [`Atom`]s in a hash
//!   set probed once per host label suffix, under an FNV hasher (the
//!   keys are short, attacker-free hostnames; SipHash costs more than
//!   the probe) and a 64-bit length mask that skips suffixes no anchor
//!   length can match.
//!
//! Both are pure functions of the parsed rule set; compilation happens
//! once in `FilterList::parse` and matching takes `&self`.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::hash::{BuildHasherDefault, Hasher};

use panoptes_http::Atom;

/// FNV-1a, as a [`Hasher`]. Deterministic across processes (unlike the
/// default SipHash with its random keys) and several times cheaper on
/// the short hostname keys the anchor set stores.
#[derive(Default)]
pub struct Fnv1a(u64);

/// `BuildHasher` for [`Fnv1a`]-keyed sets.
pub type FnvBuild = BuildHasherDefault<Fnv1a>;

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = hash;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// 256-bit presence bitmap of the bytes occurring in a string.
#[derive(Debug, Clone)]
pub(crate) struct ByteSet(pub(crate) [u64; 4]);

impl ByteSet {
    /// The byte set of `text`, case-sensitive.
    pub(crate) fn of(text: &str) -> ByteSet {
        let mut set = [0u64; 4];
        for &b in text.as_bytes() {
            set[(b >> 6) as usize] |= 1 << (b & 63);
        }
        ByteSet(set)
    }

    pub(crate) fn contains(&self, b: u8) -> bool {
        self.0[(b >> 6) as usize] & (1 << (b & 63)) != 0
    }

    fn insert(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1 << (b & 63);
    }

    fn intersects(&self, other: &ByteSet) -> bool {
        (self.0[0] & other.0[0])
            | (self.0[1] & other.0[1])
            | (self.0[2] & other.0[2])
            | (self.0[3] & other.0[3])
            != 0
    }
}

/// How rare a byte is in serialized URL text; higher is rarer. Used to
/// pick each substring rule's prefilter byte so the rare-byte gate
/// rejects as many URLs as possible before the DFA runs. The ranking
/// follows byte frequency in real URL corpora: scheme/host plumbing and
/// the most common letters first, then digits and query punctuation
/// (ubiquitous in ids and parameters), then mid-frequency letters, with
/// the genuinely rare letters (`j k q x z`) on top. Any choice is
/// *sound* — a pattern match requires its chosen byte to be present —
/// so the table only tunes how often the DFA can be skipped.
pub(crate) fn rarity(b: u8) -> u8 {
    match b {
        b'/' | b'.' | b':' | b'e' | b'a' | b't' | b'o' | b'i' | b'n' | b's' | b'r' | b'c' => 0,
        b'0'..=b'9' | b'=' | b'&' | b'?' | b'%' | b'-' | b'_' => 1,
        b'j' | b'k' | b'q' | b'x' | b'z' => 4,
        b'b' | b'f' | b'v' | b'w' | b'y' => 3,
        b'a'..=b'z' => 2,
        _ => 5,
    }
}

/// The rarest byte of a (non-empty, already lowercased) pattern.
pub(crate) fn bucket_byte(pattern: &str) -> u8 {
    pattern
        .bytes()
        .max_by_key(|&b| rarity(b))
        .expect("zero-length substring patterns are rejected at parse")
}

/// The rarity table the PR-2 indexed engine shipped with, frozen. The
/// indexed engine is kept as a *measured baseline*, so its bucket
/// choices must not drift when the compiled engine's prefilter is
/// retuned — otherwise the bench compares the automaton against a
/// moving target instead of against PR 2.
pub(crate) fn rarity_pr2(b: u8) -> u8 {
    match b {
        b'/' | b'.' | b':' | b'e' | b'a' | b't' | b'o' | b'i' | b'n' | b's' | b'r' | b'c' => 0,
        b'a'..=b'z' => 1,
        b'0'..=b'9' => 2,
        b'-' | b'_' | b'=' | b'&' | b'?' | b'%' => 3,
        _ => 4,
    }
}

/// [`bucket_byte`] under the frozen PR-2 table.
pub(crate) fn bucket_byte_pr2(pattern: &str) -> u8 {
    pattern
        .bytes()
        .max_by_key(|&b| rarity_pr2(b))
        .expect("zero-length substring patterns are rejected at parse")
}

/// All substring rules of one rule set, compiled into a dense
/// Aho–Corasick DFA: `dfa[state << 8 | byte]` is the next-state entry,
/// with bit 31 set when that state completes some pattern (the BFS
/// construction folds fail-chain outputs in, so one flag per state
/// suffices). Case folding is compiled into the table — each state's
/// `A..Z` entries alias its `a..z` entries — and the match flag rides
/// in the entry word itself, so the scan loop is a single dependent
/// load per byte: no lowercase fixup, no second flag lookup. The DFA
/// built from lowercased patterns therefore decides exactly like
/// `url.to_ascii_lowercase().contains(pattern)` — without the copy.
#[derive(Clone)]
pub(crate) struct SubstringAutomaton {
    dfa: Vec<u32>,
    /// Union of every pattern's rarest byte (plus its uppercase alias):
    /// a URL whose byte set misses all of them cannot match any pattern.
    rare: ByteSet,
    patterns: usize,
}

/// Bit 31 of a DFA entry: the transition target completes a pattern.
const MATCH_BIT: u32 = 1 << 31;

impl Default for SubstringAutomaton {
    fn default() -> SubstringAutomaton {
        SubstringAutomaton::compile(std::iter::empty())
    }
}

impl std::fmt::Debug for SubstringAutomaton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubstringAutomaton")
            .field("patterns", &self.patterns)
            .field("states", &(self.dfa.len() / 256))
            .finish()
    }
}

impl SubstringAutomaton {
    /// Compiles `patterns` (already lowercased, all non-empty).
    pub(crate) fn compile<'a, I>(patterns: I) -> SubstringAutomaton
    where
        I: IntoIterator<Item = &'a str>,
    {
        const VACANT: u32 = u32::MAX;
        // Trie phase: dense rows so the BFS below can fill fail
        // transitions in place and the result IS the DFA.
        let mut rows: Vec<[u32; 256]> = vec![[VACANT; 256]];
        let mut matching = vec![false];
        let mut rare = ByteSet([0; 4]);
        let mut count = 0usize;
        for pattern in patterns {
            debug_assert!(!pattern.is_empty());
            debug_assert!(!pattern.bytes().any(|b| b.is_ascii_uppercase()));
            count += 1;
            let rare_byte = bucket_byte(pattern);
            rare.insert(rare_byte);
            // The prefilter reads the URL's bytes unlowered, so a rare
            // letter must also admit its uppercase form.
            rare.insert(rare_byte.to_ascii_uppercase());
            let mut state = 0usize;
            for &b in pattern.as_bytes() {
                let slot = rows[state][b as usize];
                state = if slot == VACANT {
                    rows.push([VACANT; 256]);
                    matching.push(false);
                    let next = (rows.len() - 1) as u32;
                    rows[state][b as usize] = next;
                    next as usize
                } else {
                    slot as usize
                };
            }
            matching[state] = true;
        }

        // BFS phase: compute fail links and flatten them into the rows
        // (processing in BFS order guarantees a parent's row is already
        // dense when its children borrow from it).
        let mut fail = vec![0u32; rows.len()];
        let mut queue = VecDeque::new();
        for slot in rows[0].iter_mut() {
            match *slot {
                VACANT => *slot = 0,
                child => {
                    fail[child as usize] = 0;
                    queue.push_back(child);
                }
            }
        }
        while let Some(state) = queue.pop_front() {
            let s = state as usize;
            if matching[fail[s] as usize] {
                matching[s] = true;
            }
            let fail_row = rows[fail[s] as usize];
            for (b, slot) in rows[s].iter_mut().enumerate() {
                let via_fail = fail_row[b];
                match *slot {
                    VACANT => *slot = via_fail,
                    child => {
                        fail[child as usize] = via_fail;
                        queue.push_back(child);
                    }
                }
            }
        }

        // Flatten: fold the match flag into each entry and alias the
        // uppercase rows onto the lowercase transitions. Patterns are
        // lowercased at parse, so no trie edge ever leaves on `A..Z`;
        // aliasing reproduces per-byte `to_ascii_lowercase` exactly.
        let mut dfa = Vec::with_capacity(rows.len() * 256);
        for row in &rows {
            let base = dfa.len();
            for &next in row.iter() {
                let flag = if matching[next as usize] { MATCH_BIT } else { 0 };
                dfa.push(next | flag);
            }
            for b in b'A'..=b'Z' {
                dfa[base + b as usize] = dfa[base + (b + 32) as usize];
            }
        }
        SubstringAutomaton { dfa, rare, patterns: count }
    }

    /// True when some pattern occurs in `text` lowercased. Never
    /// allocates: case folding is baked into the transition table.
    pub(crate) fn matches_anycase(&self, text: &str) -> bool {
        if self.patterns == 0 {
            return false;
        }
        if !ByteSet::of(text).intersects(&self.rare) {
            // Four word ops proved no pattern's rarest byte occurs.
            panoptes_obs::count!("blocklist.automaton.prefilter_rejects", Deterministic);
            return false;
        }
        panoptes_obs::count!("blocklist.automaton.scans", Deterministic);
        let mut state = 0usize;
        for &b in text.as_bytes() {
            let entry = self.dfa[(state << 8) | b as usize];
            if entry & MATCH_BIT != 0 {
                return true;
            }
            state = entry as usize;
        }
        false
    }
}

/// `||domain^` rules as interned [`Atom`]s, probed per host label
/// suffix. The 64-bit length mask (bit *l* set when an anchor of byte
/// length *l* exists, lengths ≥ 63 sharing the top bit) skips the hash
/// probe for suffixes whose length no anchor has — on clean traffic
/// that is nearly all of them.
#[derive(Debug, Clone, Default)]
pub(crate) struct AnchorSet {
    set: HashSet<Atom, FnvBuild>,
    len_mask: u64,
}

impl AnchorSet {
    /// Interns and inserts one (already lowercased) anchor domain.
    pub(crate) fn insert(&mut self, domain: &Atom) {
        self.len_mask |= 1 << domain.len().min(63);
        self.set.insert(domain.clone());
    }

    fn may_have_len(&self, len: usize) -> bool {
        self.len_mask & (1 << len.min(63)) != 0
    }

    /// True when the host or any of its dot-suffixes is an anchor —
    /// `||d^` semantics. The host must already be lowercased.
    pub(crate) fn matches_host(&self, host_lower: &str) -> bool {
        if self.set.is_empty() {
            return false;
        }
        if self.may_have_len(host_lower.len()) && self.set.contains(host_lower) {
            return true;
        }
        let n = host_lower.len();
        for (i, b) in host_lower.bytes().enumerate() {
            if b == b'.'
                && self.may_have_len(n - i - 1)
                && self.set.contains(&host_lower[i + 1..])
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panoptes_http::atom::Atom;

    fn compiled(patterns: &[&str]) -> SubstringAutomaton {
        SubstringAutomaton::compile(patterns.iter().copied())
    }

    #[test]
    fn finds_patterns_anywhere() {
        let a = compiled(&["/ads/", "sdk07ping"]);
        assert!(a.matches_anycase("https://x.com/a/ads/banner.js"));
        assert!(a.matches_anycase("https://x.com/sdk07ping?y"));
        assert!(!a.matches_anycase("https://x.com/news/story"));
        assert_eq!(a.patterns, 2);
    }

    #[test]
    fn lowercases_on_the_fly() {
        let a = compiled(&["/ads/"]);
        assert!(a.matches_anycase("https://x.com/ADS/banner"));
        assert!(a.matches_anycase("HTTPS://X.COM/Ads/"));
    }

    #[test]
    fn overlapping_patterns_all_match() {
        let a = compiled(&["abcd", "bc", "cde"]);
        assert!(a.matches_anycase("xxabcdexx"));
        assert!(a.matches_anycase("xbcx"));
        assert!(a.matches_anycase("xcdex"));
        assert!(!a.matches_anycase("xacbdx"));
    }

    #[test]
    fn prefix_and_suffix_patterns() {
        let a = compiled(&["aaa"]);
        assert!(a.matches_anycase("aaa"));
        assert!(!a.matches_anycase("aa"));
        assert!(a.matches_anycase("baaab"));
        assert!(a.matches_anycase("aaaa"));
    }

    #[test]
    fn empty_automaton_matches_nothing() {
        let a = compiled(&[]);
        assert!(!a.matches_anycase("anything"));
        assert_eq!(a.patterns, 0);
    }

    #[test]
    fn utf8_patterns_behave_like_contains() {
        let a = compiled(&["é-ads"]);
        assert!(a.matches_anycase("https://x.com/é-ads/y"));
        assert!(!a.matches_anycase("https://x.com/e-ads/y"));
    }

    #[test]
    fn anchor_set_walks_label_suffixes() {
        let mut anchors = AnchorSet::default();
        anchors.insert(&Atom::from("doubleclick.net"));
        assert!(anchors.matches_host("doubleclick.net"));
        assert!(anchors.matches_host("stats.g.doubleclick.net"));
        assert!(!anchors.matches_host("notdoubleclick.net"));
        assert!(!anchors.matches_host("doubleclick.net.evil.com"));
    }

    #[test]
    fn anchor_length_mask_is_conservative() {
        let mut anchors = AnchorSet::default();
        let long = format!("{}.com", "a".repeat(80));
        anchors.insert(&Atom::from(long.as_str()));
        assert!(anchors.matches_host(&long));
        assert!(anchors.matches_host(&format!("www.{long}")));
        assert!(!anchors.matches_host("short.com"));
    }
}
