//! One benchmark per paper artefact: each target regenerates the
//! corresponding table or figure end-to-end (crawl → capture → analysis)
//! at a reduced-but-representative scale, so `cargo bench` both times
//! the pipeline and re-validates every result's shape.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use panoptes::campaign::{run_crawl, CampaignResult};
use panoptes::config::CampaignConfig;
use panoptes::idle::run_idle;
use panoptes_analysis::addomains::figure3;
use panoptes_analysis::dns::doh_split;
use panoptes_analysis::history::detect_history_leaks;
use panoptes_analysis::idle::{destination_shares, timeline};
use panoptes_analysis::incognito::compare;
use panoptes_analysis::pii::table2;
use panoptes_analysis::sensitive::sensitive_row;
use panoptes_analysis::transfers::transfers;
use panoptes_analysis::volume::figure2;
use panoptes_browsers::registry::{all_profiles, profile_by_name};
use panoptes_device::DeviceProperties;
use panoptes_geo::GeoDb;
use panoptes_simnet::clock::SimDuration;
use panoptes_web::generator::GeneratorConfig;
use panoptes_web::World;

fn bench_world() -> World {
    World::build(&GeneratorConfig { popular: 12, sensitive: 8, ..Default::default() })
}

/// Crawls all 15 browsers once; reused by the analysis benches.
fn crawl_everyone(world: &World) -> Vec<CampaignResult> {
    let config = CampaignConfig::default();
    all_profiles()
        .iter()
        .map(|p| run_crawl(world, p, &world.sites, &config))
        .collect()
}

fn table1_registry(c: &mut Criterion) {
    c.bench_function("table1_registry", |b| {
        b.iter(|| {
            let profiles = all_profiles();
            assert_eq!(profiles.len(), 15);
            profiles
        })
    });
}

fn fig2_native_ratio(c: &mut Criterion) {
    let world = bench_world();
    let config = CampaignConfig::default();
    c.bench_function("fig2_native_ratio", |b| {
        b.iter(|| {
            let yandex = run_crawl(
                &world,
                &profile_by_name("Yandex").unwrap(),
                &world.sites,
                &config,
            );
            let rows = figure2(std::slice::from_ref(&yandex));
            assert!(rows[0].request_ratio > 0.25);
            rows
        })
    });
}

fn fig3_ad_domains(c: &mut Criterion) {
    let world = bench_world();
    let config = CampaignConfig::default();
    let kiwi = run_crawl(&world, &profile_by_name("Kiwi").unwrap(), &world.sites, &config);
    c.bench_function("fig3_ad_domains", |b| {
        b.iter(|| {
            let rows = figure3(std::slice::from_ref(&kiwi));
            assert!(rows[0].ad_percent > 30.0);
            rows
        })
    });
}

fn fig4_volume(c: &mut Criterion) {
    let world = bench_world();
    let config = CampaignConfig::default();
    let qq = run_crawl(&world, &profile_by_name("QQ").unwrap(), &world.sites, &config);
    c.bench_function("fig4_volume", |b| {
        b.iter(|| {
            let rows = figure2(std::slice::from_ref(&qq));
            assert!(rows[0].volume_ratio > 0.3);
            rows
        })
    });
}

fn table2_pii(c: &mut Criterion) {
    let world = bench_world();
    let results = crawl_everyone(&world);
    let props = DeviceProperties::testbed_tablet();
    c.bench_function("table2_pii", |b| {
        b.iter(|| {
            let rows = table2(&results, &props);
            assert_eq!(rows.len(), 15);
            rows
        })
    });
}

fn fig5_idle(c: &mut Criterion) {
    let world = bench_world();
    let config = CampaignConfig::default();
    c.bench_function("fig5_idle", |b| {
        b.iter(|| {
            let opera = run_idle(
                &world,
                &profile_by_name("Opera").unwrap(),
                SimDuration::from_secs(600),
                &config,
            );
            let tl = timeline(&opera, SimDuration::from_secs(10));
            assert!(tl.total() > 50);
            let shares = destination_shares(&opera);
            assert!(!shares.is_empty());
            (tl, shares)
        })
    });
}

fn sec32_history_leaks(c: &mut Criterion) {
    let world = bench_world();
    let config = CampaignConfig::default();
    let yandex = run_crawl(&world, &profile_by_name("Yandex").unwrap(), &world.sites, &config);
    c.bench_function("sec32_history_leaks", |b| {
        b.iter(|| {
            let leaks = detect_history_leaks(&yandex);
            assert!(leaks.iter().any(|l| l.persistent_id.is_some()));
            leaks
        })
    });
}

fn sec32_dns_split(c: &mut Criterion) {
    let world = bench_world();
    let results = crawl_everyone(&world);
    c.bench_function("sec32_dns_split", |b| {
        b.iter(|| {
            let (rows, doh, stub) = doh_split(&results);
            assert_eq!((doh, stub), (8, 7));
            rows
        })
    });
}

fn sec32_incognito(c: &mut Criterion) {
    let world = bench_world();
    let p = profile_by_name("Edge").unwrap();
    let normal = run_crawl(&world, &p, &world.sites, &CampaignConfig::default());
    let incog = run_crawl(&world, &p, &world.sites, &CampaignConfig::default().incognito());
    c.bench_function("sec32_incognito", |b| {
        b.iter(|| {
            let row = compare(&normal, &incog);
            assert!(row.still_leaks);
            row
        })
    });
}

fn sec32_sensitive(c: &mut Criterion) {
    let world = bench_world();
    let qq = run_crawl(
        &world,
        &profile_by_name("QQ").unwrap(),
        &world.sites,
        &CampaignConfig::default(),
    );
    c.bench_function("sec32_sensitive", |b| {
        b.iter(|| {
            let row = sensitive_row(&qq);
            assert!(row.sensitive_urls_leaked > 0);
            row
        })
    });
}

fn sec34_transfers(c: &mut Criterion) {
    let world = bench_world();
    let results = crawl_everyone(&world);
    let geo = GeoDb::standard();
    c.bench_function("sec34_transfers", |b| {
        b.iter(|| {
            let rows = transfers(&results, &geo);
            assert!(rows.iter().any(|r| r.browser == "Yandex" && r.leaves_eu));
            rows
        })
    });
}

fn full_campaign_crawl(c: &mut Criterion) {
    let world = bench_world();
    let config = CampaignConfig::default();
    let profile = profile_by_name("Edge").unwrap();
    c.bench_function("full_campaign_crawl_20_sites", |b| {
        b.iter_batched(
            || (),
            |_| run_crawl(&world, &profile, &world.sites, &config),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        table1_registry,
        fig2_native_ratio,
        fig3_ad_domains,
        fig4_volume,
        table2_pii,
        fig5_idle,
        sec32_history_leaks,
        sec32_dns_split,
        sec32_incognito,
        sec32_sensitive,
        sec34_transfers,
        full_campaign_crawl,
}
criterion_main!(figures);
