//! # panoptes-analysis
//!
//! The measurement analyses of the paper's §3, run against captured flow
//! databases. Each module regenerates one artefact:
//!
//! * [`facts`] — the parse-once layer every pass shares: memoised
//!   per-flow URLs, observations and decodings over the sealed
//!   [`panoptes_mitm::FlowSnapshot`],
//! * [`volume`] — Figure 2 (request counts + native/engine ratio) and
//!   Figure 4 (outgoing traffic volume),
//! * [`addomains`] — Figure 3 (% of distinct native-contact domains that
//!   are third-party/ad-related, per the Steven Black list),
//! * [`history`] — §3.2: browsing-history leak detection at three
//!   granularities (full URL — plain, percent- or Base64-encoded —
//!   hostname, registrable domain), persistent-identifier detection,
//!   and the JS-injection channel,
//! * [`pii`] — Table 2: PII / device-information extraction from query
//!   parameters and JSON bodies via keyword + value heuristics,
//! * [`dns`] — §3.2's DoH-vs-stub split,
//! * [`transfers`] — §3.4: international transfers of history leaks,
//! * [`incognito`] — §3.2's incognito comparison,
//! * [`sensitive`] — §3.2's sensitive-category leak check,
//! * [`idle`] — Figure 5 timelines and §3.5 destination shares,
//! * [`engine`] — the fused single-pass study engine: every detector's
//!   mergeable `Partial` folded in one iteration over the capture,
//!   sharded across the fleet pool, with a capture→analysis overlap
//!   driver,
//! * [`study`] — the full 15-browser study orchestration,
//! * [`summary`] — a machine-readable JSON document of every result,
//! * [`compare`] — per-browser deltas between two studies (longitudinal
//!   / A-B workflows),
//! * [`identifiers`] — stable device/user identifiers across native
//!   destinations (Listing 1's `operaId` pattern),
//! * [`cost`] — §3.1's user-borne costs: data-plan bytes and radio
//!   energy attributable to native tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addomains;
pub mod compare;
pub mod cost;
pub mod dns;
pub mod engine;
pub mod facts;
pub mod history;
pub mod identifiers;
pub mod idle;
pub mod incognito;
pub mod pii;
pub mod scan;
pub mod sensitive;
pub mod study;
pub mod summary;
pub mod transfers;
pub mod volume;
