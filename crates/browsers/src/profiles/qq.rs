//! QQ 13.7.6.6042 (Tencent) — sends the entire visited URL in the clear
//! to its vendor servers in China (§3.2, §3.4), has no incognito mode
//! (footnote 5), leaks device info to an ad server rather than its
//! vendor (§3.3), and pads its telemetry so heavily that native traffic
//! adds 42% extra outgoing volume (Figure 4).

use panoptes_instrument::tap::Instrumentation;
use panoptes_simnet::dns::DohProvider;

use crate::model::BehaviorModel;
use crate::profile::{NativeCall, Payload, PiiField};

/// The QQ pinned point.
pub fn model() -> BehaviorModel {
    BehaviorModel::new("QQ", "13.7.6.6042", "com.tencent.mtt")
        .instrument(Instrumentation::FridaWebView)
        .no_incognito()
        .doh(DohProvider::Cloudflare)
        .leaks(&[PiiField::DeviceType, PiiField::DeviceManufacturer, PiiField::Resolution])
        .startup(vec![
            NativeCall::ping("cloud.browser.qq.com", "/config"),
            NativeCall::ping("pms.mb.qq.com", "/v1/params"),
            NativeCall::ping("cdn.browser.qq.com", "/assets"),
            NativeCall::ping("news.browser.qq.com", "/v1/feed"),
            NativeCall::ping("push.browser.qq.com", "/v1/register"),
        ])
        .per_visit(vec![
            // §3.2: the full URL — path and query parameters — in the clear.
            NativeCall::ping("wup.browser.qq.com", "/report/visit")
                .carrying(Payload::full_url_plain("url")),
            // The padded telemetry that drives the 42% volume figure.
            NativeCall::ping("mtt.browser.qq.com", "/stat/batch")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(1600),
            // §3.3: device info to an ad server, not the vendor.
            NativeCall::ping("gdt-adnet.com", "/bid/sdk")
                .via_post()
                .carrying(Payload::AdSdkJson),
        ])
        .idle_burst(vec![
            NativeCall::ping("news.browser.qq.com", "/v1/feed"),
            NativeCall::ping("cdn.browser.qq.com", "/assets"),
            NativeCall::ping("cloud.browser.qq.com", "/config"),
            NativeCall::ping("news.browser.qq.com", "/v1/hotlist"),
        ])
        .idle_periodic(vec![
            (60, NativeCall::ping("mtt.browser.qq.com", "/stat/batch")
                .via_post()
                .carrying(Payload::Telemetry)
                .padded(1600)),
            (120, NativeCall::ping("news.browser.qq.com", "/v1/feed")),
            (180, NativeCall::ping("push.browser.qq.com", "/v1/poll")),
        ])
}
